//! # grid-gathering
//!
//! Facade crate for the reproduction of *"Asymptotically Optimal
//! Gathering on a Grid"* (Cord-Landwehr, Fischer, Jung, Meyer auf der
//! Heide; SPAA 2016, arXiv:1602.03303).
//!
//! The workspace implements the paper's full system:
//!
//! * [`engine`] — the FSYNC look-compute-move substrate: grid world,
//!   local views without compass, simultaneous moves with merge
//!   semantics, connectivity tracking.
//! * [`core`] — the paper's O(n) gathering algorithm: boundary merges
//!   (Fig. 2/3), runner reshapement (Fig. 7/8/9, Table 1), and the
//!   per-round controller (Fig. 11).
//! * [`baselines`] — comparators: a grid adaptation of the local O(n²)
//!   Euclidean strategy [DKL+11] and a sequential fair-scheduler greedy.
//! * [`workloads`] — deterministic swarm generators used by the paper's
//!   experiments (lines, blocks, hollow shapes, staircases, random
//!   blobs).
//! * [`viz`] — ASCII and SVG rendering of swarm traces.
//! * [`analysis`] — scaling fits and table emission for EXPERIMENTS.md.
//! * [`campaign`] — the parallel scenario-campaign engine: declarative
//!   sweeps over (family × size × seed × controller × scheduler),
//!   streamed JSONL results with resume, scaling-table aggregation,
//!   and trace record/replay/diff (see the `campaign` CLI binary).
//! * [`trace`] — compact versioned binary round traces: streaming
//!   record via the engine's observer hook, digest-verified playback,
//!   bit-exact replay, regression diffing.
//!
//! ## Quickstart
//!
//! ```
//! use grid_gathering::prelude::*;
//!
//! // A worst-case swarm: a 1×64 line (diameter = n).
//! let swarm = workloads::line(64);
//! let mut engine = Engine::from_positions(
//!     &swarm,
//!     OrientationMode::Scrambled(7),
//!     GatherController::paper(),
//!     EngineConfig::default(),
//! );
//! let outcome = engine.run_until_gathered(100 * 64).expect("gathers in O(n)");
//! assert!(engine.swarm.is_gathered());
//! println!("gathered {} robots in {} rounds", outcome.initial_robots, outcome.rounds);
//! ```

pub use gather_analysis as analysis;
pub use gather_baselines as baselines;
pub use gather_campaign as campaign;
pub use gather_core as core;
pub use gather_trace as trace;
pub use gather_viz as viz;
pub use gather_workloads as workloads;
pub use grid_engine as engine;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use gather_baselines::{AsyncGreedy, GoToCenter};
    pub use gather_core::{GatherConfig, GatherController};
    pub use gather_workloads as workloads;
    pub use grid_engine::{
        Action, Bounds, ConnectivityCheck, Controller, Engine, EngineConfig, EngineError,
        OrientationMode, Point, RoundCtx, RunOutcome, Swarm, View, V2,
    };
}
