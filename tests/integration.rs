//! Cross-crate integration tests: the full pipeline from workload
//! generation through the FSYNC engine to analysis.

use grid_gathering::prelude::*;
use grid_gathering::{analysis, engine::connectivity, viz};

#[test]
fn every_family_gathers_with_connectivity_checked() {
    for f in workloads::all_families() {
        let pts = workloads::family(f, 100, 11);
        let n = pts.len() as u64;
        let mut e = Engine::from_positions(
            &pts,
            OrientationMode::Scrambled(11),
            GatherController::paper(),
            EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
        );
        let out =
            e.run_until_gathered(500 * n + 10_000).unwrap_or_else(|e| panic!("{}: {e}", f.name()));
        assert!(e.swarm.is_gathered(), "{}", f.name());
        assert!(out.final_robots <= 4);
    }
}

#[test]
fn rounds_grow_linearly_not_quadratically_on_lines() {
    let mut pts = Vec::new();
    for n in [64usize, 128, 256, 512] {
        let mut e = Engine::from_positions(
            &workloads::line(n),
            OrientationMode::Scrambled(1),
            GatherController::paper(),
            EngineConfig::default(),
        );
        let out = e.run_until_gathered(10_000).expect("gathers");
        pts.push((n as f64, out.rounds as f64));
    }
    let slope = analysis::loglog_slope(&pts);
    assert!((0.85..=1.15).contains(&slope), "scaling exponent {slope}");
    let lin = analysis::linear_fit(&pts);
    assert!(lin.r2 > 0.999, "linear fit r² = {}", lin.r2);
}

#[test]
fn deterministic_replay_and_thread_independence() {
    let pts = workloads::random_blob(300, 5);
    let run = |threads: usize| -> (u64, Vec<grid_gathering::engine::Point>) {
        let mut e = Engine::from_positions(
            &pts,
            OrientationMode::Scrambled(5),
            GatherController::paper(),
            EngineConfig { threads, ..Default::default() },
        );
        for _ in 0..100 {
            if e.swarm.is_gathered() {
                break;
            }
            e.step().expect("steps");
        }
        let mut ps: Vec<_> = e.swarm.positions().to_vec();
        ps.sort();
        (e.round(), ps)
    };
    let a = run(1);
    let b = run(4);
    let c = run(0);
    assert_eq!(a, b, "thread count changed the trace");
    assert_eq!(a, c);
}

#[test]
fn equivariance_under_global_symmetry() {
    // Transform the world by g and pre-compose every robot frame with
    // g: the trace must be exactly the g-image of the original trace.
    // This is the no-compass property of the distributed algorithm.
    use grid_gathering::engine::{Point, Swarm, D4, V2};
    let pts = workloads::random_blob(120, 9);
    let g = D4 { rot: 1, flip: true };
    let center = Point::new(0, 0);
    let gp = |p: Point| center + g.apply(p - center);

    let mk = |points: &[Point], post: Option<D4>| {
        let mut swarm: Swarm<grid_gathering::core::GatherState> =
            Swarm::new(points, OrientationMode::Scrambled(9));
        if let Some(g) = post {
            for orient in swarm.orients_mut() {
                *orient = orient.then(g);
            }
        }
        Engine::new(swarm, GatherController::paper(), EngineConfig::default())
    };

    let mut plain = mk(&pts, None);
    let tpts: Vec<Point> = pts.iter().map(|&p| gp(p)).collect();
    // Scrambled(9) assigns orientations by index, so the transformed
    // swarm must keep the same per-index orientations composed with g.
    let mut transformed = mk(&tpts, Some(g));

    for round in 0..60 {
        let mut a: Vec<Point> = plain.swarm.positions().iter().map(|&p| gp(p)).collect();
        let mut b: Vec<Point> = transformed.swarm.positions().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "diverged at round {round}");
        if plain.swarm.is_gathered() {
            break;
        }
        plain.step().expect("plain");
        transformed.step().expect("transformed");
    }
    let _ = V2::ZERO;
}

#[test]
fn baselines_behave_as_documented() {
    let pts = workloads::random_blob(80, 2);
    // The greedy reference always gathers (sequential scheduler).
    AsyncGreedy::new(&pts).run(1_000).expect("greedy gathers");
    // GoToCenter is the paper's foil: a naive grid port of the plane
    // strategy either gathers, stalls, or — as E8 documents — breaks
    // connectivity, which the paper's algorithm never does. We only
    // require the run to terminate one way or another.
    let mut e = Engine::from_positions(
        &pts,
        OrientationMode::Scrambled(2),
        GoToCenter::paper_radius(),
        EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
    );
    match e.run_until_gathered(20_000) {
        Ok(out) => assert!(out.final_robots <= 4),
        Err(err) => {
            assert!(matches!(
                err,
                grid_gathering::engine::EngineError::Disconnected { .. }
                    | grid_gathering::engine::EngineError::Stalled { .. }
                    | grid_gathering::engine::EngineError::RoundBudgetExhausted { .. }
            ));
        }
    }
}

#[test]
fn robots_never_leave_inflated_bounding_box() {
    let pts = workloads::table(40, 9);
    let start_bounds = grid_gathering::engine::Bounds::of(pts.iter().copied()).unwrap().inflated(4);
    let mut e = Engine::from_positions(
        &pts,
        OrientationMode::Aligned,
        GatherController::paper(),
        EngineConfig::default(),
    );
    for _ in 0..2_000 {
        if e.swarm.is_gathered() {
            break;
        }
        e.step().expect("steps");
        for &p in e.swarm.positions() {
            assert!(start_bounds.contains(p), "{p:?} escaped");
        }
    }
}

#[test]
fn viz_renders_any_stage() {
    let pts = workloads::diamond(5);
    let mut e = Engine::from_positions(
        &pts,
        OrientationMode::Aligned,
        GatherController::paper(),
        EngineConfig::default(),
    );
    e.step().expect("steps");
    let art = viz::ascii_runs(&e.swarm, 1);
    assert_eq!(
        art.matches('o').count() + art.matches('R').count() + art.matches('D').count(),
        e.swarm.len()
    );
    let doc = viz::svg(&e.swarm, 4);
    assert!(doc.contains("<svg"));
    assert!(connectivity::is_connected(&e.swarm));
}
