//! Property-based tests (proptest) on the core invariants from
//! DESIGN.md §7.

use grid_gathering::engine::connectivity::is_connected;
use grid_gathering::prelude::*;
use proptest::prelude::*;

/// Random connected swarm: a seeded blob or tree of arbitrary size.
fn arb_swarm() -> impl Strategy<Value = Vec<grid_gathering::engine::Point>> {
    (8usize..120, any::<u64>(), prop::bool::ANY).prop_map(|(n, seed, tree)| {
        if tree {
            workloads::random_tree(n, seed)
        } else {
            workloads::random_blob(n, seed)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Invariants 1, 2, 4: connectivity holds every round, population
    /// never grows, and gathering finishes within c·n rounds.
    #[test]
    fn gathers_connected_and_monotone(pts in arb_swarm(), seed in any::<u64>()) {
        let n = pts.len();
        let mut e = Engine::from_positions(
            &pts,
            OrientationMode::Scrambled(seed),
            GatherController::paper(),
            EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
        );
        let mut prev = n;
        let budget = 500 * n as u64 + 10_000;
        while !e.swarm.is_gathered() {
            prop_assert!(e.round() < budget, "budget exhausted (n = {n})");
            let stats = e.step().map_err(|err| TestCaseError::fail(err.to_string()))?;
            prop_assert!(stats.population <= prev, "population grew");
            prev = stats.population;
        }
        prop_assert!(is_connected(&e.swarm));
        prop_assert!(e.swarm.len() <= 4);
    }

    /// Invariant 7: the same seed gives the identical trace.
    #[test]
    fn determinism(pts in arb_swarm(), seed in any::<u64>()) {
        let run = || {
            let mut e = Engine::from_positions(
                &pts,
                OrientationMode::Scrambled(seed),
                GatherController::paper(),
                EngineConfig::default(),
            );
            for _ in 0..40 {
                if e.swarm.is_gathered() { break; }
                e.step().unwrap();
            }
            let mut v: Vec<_> = e.swarm.positions().to_vec();
            v.sort();
            v
        };
        prop_assert_eq!(run(), run());
    }

    /// A merge-free round never moves a robot that holds no run state
    /// (invariant 6: only merges and runners move robots).
    #[test]
    fn only_mergers_and_runners_move(pts in arb_swarm(), seed in any::<u64>()) {
        let mut e = Engine::from_positions(
            &pts,
            OrientationMode::Scrambled(seed),
            GatherController::paper(),
            EngineConfig { keep_history: true, ..Default::default() },
        );
        // Advance a few rounds, then compare movement against state.
        for _ in 0..8 {
            if e.swarm.is_gathered() { break; }
            let holders: usize = e.swarm.states().iter().filter(|s| s.has_runs()).count();
            let stats = e.step().unwrap();
            // Movers are merge-run members (bounded by merges * k_max,
            // loosely) plus at most the runner holders.
            let merge_movers_bound = stats.merged * 32 + holders + 16;
            prop_assert!(stats.moved <= merge_movers_bound + stats.merged * 8,
                "moved {} with merged {} holders {}", stats.moved, stats.merged, holders);
        }
    }
}
