//! AsyncGreedy: the paper's introduction observes that under a fair
//! sequential scheduler (ASYNC, one robot active at a time, a round
//! ends when every robot has been activated once) "a simple strategy
//! could achieve the same O(n) rounds". This module implements that
//! strawman as a reference point: the active robot, if it can leave the
//! swarm without disconnecting it, hops onto an adjacent robot and
//! merges. Removability is checked in a local window first and falls
//! back to a global connectivity test — the sequential strawman is
//! deliberately *stronger* than the distributed model (the paper's
//! remark is about the scheduler, not about vision), which only makes
//! the comparison against the FSYNC algorithm more conservative.
//!
//! Because activations are sequential there are no simultaneity
//! hazards, which is precisely why the strategy is trivial — and why
//! the FSYNC result is interesting.

use grid_engine::connectivity::is_connected;
use grid_engine::{OrientationMode, Point, Swarm};

/// Outcome of a sequential greedy run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreedyOutcome {
    /// Scheduler rounds (passes of n activations) until gathered.
    pub rounds: u64,
    /// Total robots removed by merges.
    pub merged: usize,
    /// Total robot activations (each pass activates every robot alive
    /// at its start) — the work measure comparable across schedulers.
    pub activations: u64,
}

pub struct AsyncGreedy {
    swarm: Swarm<()>,
    rounds: u64,
    merged: usize,
    activations: u64,
}

impl AsyncGreedy {
    pub fn new(positions: &[Point]) -> Self {
        AsyncGreedy {
            swarm: Swarm::new(positions, OrientationMode::Aligned),
            rounds: 0,
            merged: 0,
            activations: 0,
        }
    }

    pub fn swarm(&self) -> &Swarm<()> {
        &self.swarm
    }

    /// Passes completed so far — meaningful after a failed [`Self::run`]
    /// too, so harnesses can report the real progress of a dead run.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Merges so far (see [`Self::rounds`]).
    pub fn merged(&self) -> usize {
        self.merged
    }

    /// Activations so far (see [`Self::rounds`]).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Is the robot at `pos` removable: do its 4-neighbours stay
    /// connected when it hops onto `dst`? Fast path: a 5×5 window
    /// check; slow path (ring-like shapes where everyone is a local
    /// cut vertex): a global connectivity test.
    fn removable(&self, pos: Point, dst: Point) -> bool {
        self.removable_window(pos, dst) || self.removable_global(pos)
    }

    fn removable_global(&self, pos: Point) -> bool {
        let remaining: Vec<Point> =
            self.swarm.positions().iter().copied().filter(|&p| p != pos).collect();
        grid_engine::connectivity::points_connected(&remaining)
    }

    fn removable_window(&self, pos: Point, dst: Point) -> bool {
        const R: i32 = 2;
        let occ = |p: Point| p != pos && self.swarm.occupied(p);
        let inside = |p: Point| (p.x - pos.x).abs() <= R && (p.y - pos.y).abs() <= R;
        // BFS from dst over occupied window cells.
        let mut seen = vec![dst];
        let mut stack = vec![dst];
        while let Some(p) = stack.pop() {
            for q in p.neighbors4() {
                if inside(q) && occ(q) && !seen.contains(&q) {
                    seen.push(q);
                    stack.push(q);
                }
            }
        }
        pos.neighbors4().into_iter().all(|nb| !inside(nb) || !occ(nb) || seen.contains(&nb))
    }

    /// Run until gathered. One round = one activation pass over the
    /// robots alive at the start of the pass. On failure the counters
    /// ([`Self::rounds`], [`Self::merged`], [`Self::activations`]) and
    /// the swarm keep the state the run actually reached.
    pub fn run(&mut self, max_rounds: u64) -> Result<GreedyOutcome, String> {
        while !self.swarm.is_gathered() {
            if self.rounds >= max_rounds {
                return Err(format!("round budget exhausted at {}", self.rounds));
            }
            let before = self.swarm.len();
            // Activate robots one at a time in deterministic order of
            // their current positions (a fair scheduler).
            let mut order: Vec<Point> = self.swarm.positions().to_vec();
            order.sort();
            for pos in order {
                self.activations += 1;
                let Some(i) = self.swarm.robot_at(pos) else { continue };
                // Hop onto an adjacent robot if that cannot disconnect.
                let Some(dst) = pos
                    .neighbors4()
                    .into_iter()
                    .find(|&nb| self.swarm.occupied(nb) && self.removable(pos, nb))
                else {
                    continue;
                };
                let n = self.swarm.len();
                let mut actions: Vec<grid_engine::Action<()>> =
                    (0..n).map(|_| grid_engine::Action::stay(())).collect();
                actions[i].step = dst - pos;
                let out = self.swarm.apply(actions);
                self.merged += out.merged;
                debug_assert!(is_connected(&self.swarm));
                if self.swarm.is_gathered() {
                    break;
                }
            }
            self.rounds += 1;
            if self.swarm.len() == before && !self.swarm.is_gathered() {
                return Err(format!("no progress in pass {}", self.rounds));
            }
        }
        Ok(GreedyOutcome {
            rounds: self.rounds,
            merged: self.merged,
            activations: self.activations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_gathers_in_constant_passes() {
        let pts: Vec<Point> = (0..50).map(|x| Point::new(x, 0)).collect();
        let out = AsyncGreedy::new(&pts).run(100).expect("gathers");
        // Each pass removes many robots (every removable leaf in turn);
        // the pass count is far below n.
        assert!(out.rounds <= 10, "rounds = {}", out.rounds);
        assert_eq!(out.merged, 48);
    }

    #[test]
    fn blob_gathers() {
        let pts = gather_workloads::random_blob(150, 7);
        let out = AsyncGreedy::new(&pts).run(200).expect("gathers");
        assert!(out.rounds > 0);
    }

    #[test]
    fn hollow_gathers() {
        let pts = gather_workloads::hollow_rectangle(10, 10, 1);
        AsyncGreedy::new(&pts).run(500).expect("gathers");
    }

    #[test]
    fn failed_run_preserves_real_progress_counters() {
        // Pin a workload that needs at least two passes, then rerun it
        // with a budget one pass short: the failed run must keep the
        // rounds/merges/activations it actually achieved, not zeros.
        let pts = gather_workloads::random_blob(150, 7);
        let mut full = AsyncGreedy::new(&pts);
        let total = full.run(1000).expect("gathers").rounds;
        assert!(total >= 2, "workload gathers in one pass; pick a harder one");
        let mut g = AsyncGreedy::new(&pts);
        assert!(g.run(total - 1).is_err());
        assert_eq!(g.rounds(), total - 1);
        assert!(g.merged() > 0, "interrupted run lost its merge count");
        assert!(g.activations() >= pts.len() as u64, "first pass activates everyone");
        assert!(g.swarm().len() < pts.len(), "swarm did shrink before the budget died");
    }
}
