//! GoToCenter: grid adaptation of the local O(n²) strategy of
//! [DKL+11] ("A tight runtime bound for synchronous gathering of
//! autonomous robots with limited visibility", SPAA 2011).
//!
//! Every robot simultaneously computes the centre of the robots inside
//! its viewing range and takes one king-step toward it. The original
//! strategy's connectivity proof relies on continuous moves toward the
//! centre of the *smallest enclosing circle*; on the grid we guard each
//! step with the same local window certificate the runner hops use —
//! a robot only moves if, within a 5×5 window, its departure provably
//! keeps its neighbours connected to its destination. The guard keeps
//! the comparison fair (no disconnections) at the cost of liveness on
//! some shapes, which is part of what experiment E8 measures.

use grid_engine::{Action, Controller, RoundCtx, View, V2};

#[derive(Clone, Debug)]
pub struct GoToCenter {
    radius: i32,
}

impl GoToCenter {
    pub fn new(radius: i32) -> Self {
        assert!(radius >= 2);
        GoToCenter { radius }
    }

    /// Same viewing radius as the paper's algorithm (20), for an
    /// apples-to-apples comparison.
    pub fn paper_radius() -> Self {
        GoToCenter::new(20)
    }
}

/// 5×5-window connectivity certificate for a single step (solo version
/// of the gather-core certificate; the baseline has no run states to
/// coordinate with, so simultaneous-mover worlds are approximated by
/// refusing steps whose window is ambiguous — robots adjacent to the
/// mover on the target side are treated as anchors).
fn step_safe(view: &View<'_, ()>, step: V2) -> bool {
    const R: i32 = 2;
    const W: usize = 5;
    let idx = |v: V2| -> Option<usize> {
        let dx = v.x + R;
        let dy = v.y + R;
        (dx >= 0 && dy >= 0 && dx <= 2 * R && dy <= 2 * R).then(|| (dy as usize) * W + dx as usize)
    };
    let mut occ = [false; W * W];
    for dy in -R..=R {
        for dx in -R..=R {
            let v = V2::new(dx, dy);
            occ[idx(v).expect("in window")] = v != V2::ZERO && view.occupied(v);
        }
    }
    let ti = idx(step).expect("king step");
    occ[ti] = true;
    let mut seen = [false; W * W];
    let mut stack = vec![step];
    seen[ti] = true;
    while let Some(p) = stack.pop() {
        for d in V2::axis_units() {
            let q = p + d;
            if let Some(i) = idx(q) {
                if occ[i] && !seen[i] {
                    seen[i] = true;
                    stack.push(q);
                }
            }
        }
    }
    V2::axis_units().into_iter().all(|d| match idx(d) {
        Some(i) => !occ[i] || seen[i],
        None => true,
    })
}

impl Controller for GoToCenter {
    type State = ();

    fn radius(&self) -> i32 {
        self.radius
    }

    fn decide(&self, view: &View<'_, ()>, _ctx: RoundCtx) -> Action<()> {
        let others = view.robots_within(self.radius);
        if others.is_empty() {
            return Action::stay(());
        }
        let sum = others.iter().fold(V2::ZERO, |a, &b| a + b);
        let n = others.len() as i32;
        // King-step toward the centroid: the sign of each component of
        // the (rational) centre, with a dead zone of half a cell so a
        // robot at the centre stays put.
        let sx = if 2 * sum.x > n {
            1
        } else if 2 * sum.x < -n {
            -1
        } else {
            0
        };
        let sy = if 2 * sum.y > n {
            1
        } else if 2 * sum.y < -n {
            -1
        } else {
            0
        };
        let mut step = V2::new(sx, sy);
        if step == V2::ZERO {
            return Action::stay(());
        }
        // Try the diagonal first, then its axis projections.
        for cand in [step, V2::new(step.x, 0), V2::new(0, step.y)] {
            if cand != V2::ZERO && step_safe(view, cand) {
                step = cand;
                return Action { step, state: () };
            }
        }
        Action::stay(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::{ConnectivityCheck, Engine, EngineConfig, OrientationMode, Point};

    #[test]
    fn line_contracts_and_gathers() {
        let pts: Vec<Point> = (0..24).map(|x| Point::new(x, 0)).collect();
        let mut e = Engine::from_positions(
            &pts,
            OrientationMode::Scrambled(1),
            GoToCenter::paper_radius(),
            EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
        );
        let out = e.run_until_gathered(2000).expect("gathers");
        assert!(out.rounds > 0);
    }

    #[test]
    fn block_gathers() {
        let pts = gather_workloads::square(6);
        let mut e = Engine::from_positions(
            &pts,
            OrientationMode::Scrambled(2),
            GoToCenter::paper_radius(),
            EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
        );
        e.run_until_gathered(2000).expect("gathers");
    }

    #[test]
    fn isolated_robot_stays() {
        let mut e = Engine::from_positions(
            &[Point::new(0, 0)],
            OrientationMode::Aligned,
            GoToCenter::paper_radius(),
            EngineConfig::default(),
        );
        let stats = e.step().unwrap();
        assert_eq!(stats.moved, 0);
    }
}
