//! # gather-baselines
//!
//! Comparator strategies for experiment E8:
//!
//! * [`GoToCenter`] — a grid adaptation of the local O(n²) Euclidean
//!   strategy of Degener et al. [DKL+11] (every robot moves toward the
//!   centre of the robots it can see, guarded so the swarm cannot
//!   disconnect). The paper beats this bound; the benchmark reproduces
//!   the quadratic-vs-linear separation in round counts.
//! * [`AsyncGreedy`] — the strategy the paper's introduction sketches
//!   for a fair sequential scheduler ("a simple strategy could achieve
//!   the same O(n) rounds" in ASYNC): robots are activated one at a
//!   time and greedily shorten the swarm. One *round* is one pass of n
//!   activations, making numbers comparable with FSYNC strategies.

mod center;
mod greedy;

pub use center::GoToCenter;
pub use greedy::{AsyncGreedy, GreedyOutcome};
