//! Minimal, dependency-free stand-in for the subset of the `proptest`
//! 1.x API this workspace's property tests use. The build runs with no
//! network and no registry cache, so the real crate cannot be fetched.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-case seed (so every CI run exercises the same
//! cases), and failing cases are reported but *not shrunk*. The
//! `Strategy` combinators (`prop_map`, `prop_flat_map`), range / tuple /
//! collection strategies, and the `proptest!` / `prop_assert*` macros
//! keep their real signatures so the test files compile unchanged.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (xoshiro256++ seeded via SplitMix64).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_case(case: u32) -> Self {
        let mut state = 0xA076_1D64_78BD_642Fu64 ^ ((case as u64) << 17);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}

/// Runner configuration; only `cases` is interpreted by the stub.
/// `max_shrink_iters` exists for signature compatibility (the stub does
/// not shrink).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Error type produced by `prop_assert*` and usable with `?` in bodies.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// `prop::bool::ANY`.
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod bool {
    pub const ANY: super::BoolAny = super::BoolAny;
}

/// Element-count specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below target, like real proptest;
            // the attempt cap keeps small element domains terminating.
            for _ in 0..target.saturating_mul(20).max(32) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!("proptest case {case}/{} failed: {err}", config.cases);
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let t = crate::Strategy::generate(&(0i32..4, -1i8..=1), &mut rng);
            assert!((0..4).contains(&t.0) && (-1..=1).contains(&t.1));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::for_case(1);
        let v = crate::Strategy::generate(&crate::collection::vec(0u8..3, 5..=5), &mut rng);
        assert_eq!(v.len(), 5);
        let s = crate::Strategy::generate(
            &crate::collection::btree_set((0i32..12, 0i32..12), 1..40),
            &mut rng,
        );
        assert!(!s.is_empty() && s.len() < 40);
    }

    #[test]
    fn combinators_compose() {
        let strat = (4usize..8).prop_map(|n| n * 2).prop_flat_map(|n| (Just(n), 0usize..n));
        let mut rng = crate::TestRng::for_case(2);
        for _ in 0..100 {
            let (n, k) = crate::Strategy::generate(&strat, &mut rng);
            assert!(n % 2 == 0 && k < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(n in 1usize..50, flip in prop::bool::ANY) {
            prop_assert!(n >= 1, "n was {n}");
            prop_assert_eq!(usize::from(flip) <= 1, true);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn macro_reports_failures() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]

            #[allow(unused)]
            fn always_fails(n in 0usize..2) {
                prop_assert!(n > 100, "n too small: {n}");
            }
        }
        always_fails();
    }
}
