//! # gather-workloads
//!
//! Deterministic, seeded swarm generators for every configuration family
//! used by the paper's discussion and by our experiment suite
//! (EXPERIMENTS.md): worst-case diameter chains, quasi-line plateaus
//! (Fig. 4), hollow shapes with inner boundaries (Fig. 1), stairways
//! (Fig. 16), and random connected blobs.
//!
//! All generators return a duplicate-free, 4-connected `Vec<Point>` and
//! are pure functions of their parameters (random families take an
//! explicit seed), so every experiment is reproducible.

use grid_engine::fxhash::FxHashSet;
use grid_engine::{Point, V2};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

mod named;
pub use named::{all_families, family, Family};

/// A horizontal 1×n line — the Ω(n)-diameter worst case from §5.
pub fn line(n: usize) -> Vec<Point> {
    (0..n as i32).map(|x| Point::new(x, 0)).collect()
}

/// A vertical n×1 line.
pub fn vertical_line(n: usize) -> Vec<Point> {
    (0..n as i32).map(|y| Point::new(0, y)).collect()
}

/// A filled w×h rectangle.
pub fn rectangle(w: usize, h: usize) -> Vec<Point> {
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            out.push(Point::new(x, y));
        }
    }
    out
}

/// A filled square with the given side length.
pub fn square(side: usize) -> Vec<Point> {
    rectangle(side, side)
}

/// A rectangular ring: w×h outline of the given wall thickness. The
/// hole's rim is an *inner boundary* in the paper's sense (Fig. 1).
///
/// # Panics
/// Panics unless both dimensions exceed `2 * thickness` (so a hole
/// exists) and `thickness >= 1`.
pub fn hollow_rectangle(w: usize, h: usize, thickness: usize) -> Vec<Point> {
    assert!(thickness >= 1);
    assert!(w > 2 * thickness && h > 2 * thickness, "no hole: {w}x{h} walls {thickness}");
    let (w, h, t) = (w as i32, h as i32, thickness as i32);
    let mut out = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let inside = x >= t && x < w - t && y >= t && y < h - t;
            if !inside {
                out.push(Point::new(x, y));
            }
        }
    }
    out
}

/// A filled diamond `{|x| + |y| <= r}` — boundary made entirely of
/// stairways.
pub fn diamond(r: usize) -> Vec<Point> {
    let r = r as i32;
    let mut out = Vec::new();
    for y in -r..=r {
        let w = r - y.abs();
        for x in -w..=w {
            out.push(Point::new(x, y));
        }
    }
    out
}

/// A single-cell-wide staircase of `steps` steps, each `run` cells long:
/// the degenerate stairway shape of Fig. 16.
pub fn staircase(steps: usize, run: usize) -> Vec<Point> {
    assert!(run >= 1);
    let mut out = Vec::new();
    let mut cursor = Point::new(0, 0);
    out.push(cursor);
    for _ in 0..steps {
        for _ in 0..run {
            cursor = Point::new(cursor.x + 1, cursor.y);
            out.push(cursor);
        }
        cursor = Point::new(cursor.x, cursor.y + 1);
        out.push(cursor);
    }
    out
}

/// The plateau of Fig. 4: a long horizontal top row supported by one
/// descending leg at each end. Mergeless whenever `width` exceeds the
/// largest local merge, so gathering *requires* runner reshapement.
pub fn table(width: usize, leg_height: usize) -> Vec<Point> {
    assert!(width >= 2);
    let mut out: Vec<Point> = (0..width as i32).map(|x| Point::new(x, 0)).collect();
    for y in 1..=leg_height as i32 {
        out.push(Point::new(0, -y));
        out.push(Point::new(width as i32 - 1, -y));
    }
    out
}

/// A plus/cross: four arms of the given length and width around a centre
/// block.
pub fn plus(arm: usize, width: usize) -> Vec<Point> {
    assert!(width >= 1);
    let (a, w) = (arm as i32, width as i32);
    let mut set = FxHashSet::default();
    for x in -(a + w / 2)..=(a + w / 2) {
        for y in -(w - 1) / 2..=w / 2 {
            set.insert(Point::new(x, y));
            set.insert(Point::new(y, x));
        }
    }
    let mut out: Vec<Point> = set.into_iter().collect();
    out.sort();
    out
}

/// A comb: a spine along y = 0 with upward teeth — many parallel quasi
/// lines close together, stressing run independence.
pub fn comb(teeth: usize, tooth_len: usize, pitch: usize) -> Vec<Point> {
    assert!(pitch >= 2, "teeth must not touch");
    let mut out = Vec::new();
    let spine_len = (teeth.saturating_sub(1)) * pitch + 1;
    for x in 0..spine_len as i32 {
        out.push(Point::new(x, 0));
    }
    for t in 0..teeth {
        let x = (t * pitch) as i32;
        for y in 1..=tooth_len as i32 {
            out.push(Point::new(x, y));
        }
    }
    out
}

/// A rectangular spiral of the given total length, one cell wide with a
/// one-cell gap between windings.
pub fn spiral(len: usize) -> Vec<Point> {
    let mut out = Vec::with_capacity(len);
    let mut p = Point::new(0, 0);
    let mut dir = 0usize; // E, N, W, S
    let deltas = [(1, 0), (0, 1), (-1, 0), (0, -1)];
    let mut leg = 1usize;
    let mut placed = 0usize;
    'outer: loop {
        for _ in 0..2 {
            for _ in 0..leg {
                if placed >= len {
                    break 'outer;
                }
                out.push(p);
                placed += 1;
                let (dx, dy) = deltas[dir % 4];
                p = Point::new(p.x + dx * 2, p.y + dy * 2);
                // Step twice so windings keep a one-cell air gap, and
                // fill the intermediate cell to stay connected.
                if placed < len {
                    out.push(Point::new(p.x - dx, p.y - dy));
                    placed += 1;
                }
            }
            dir += 1;
        }
        leg += 1;
    }
    out.truncate(len);
    // The truncation can only remove trailing cells, which keeps the
    // prefix connected by construction.
    out
}

/// Sparse multi-cluster swarm: `k` Eden-style blobs strung along a
/// north-east staircase chain, one cell wide. The chain spends ~4/5 of
/// the cell budget, so the bounding box grows *quadratically* in `n`
/// (span ≈ 2n/5 per axis) while the swarm stays 4-connected — at
/// n = 10⁵ the box exceeds 10⁹ cells, which a dense O(area) occupancy
/// index cannot allocate but the tiled index backs with O(n/4096)
/// tiles. This is the scale workload for the sparse-occupancy path.
pub fn clusters(n: usize, k: usize, seed: u64) -> Vec<Point> {
    assert!(k >= 1, "need at least one cluster");
    assert!(n >= 8 * k, "need >= 8 cells per cluster (asked {n} for {k})");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: FxHashSet<Point> = FxHashSet::default();
    let mut out: Vec<Point> = Vec::with_capacity(n);
    let add = |p: Point, set: &mut FxHashSet<Point>, out: &mut Vec<Point>| -> bool {
        let fresh = set.insert(p);
        if fresh {
            out.push(p);
        }
        fresh
    };
    let chain_total = if k > 1 { n * 4 / 5 } else { 0 };
    let blob_each = (n - chain_total) / k;
    let link = chain_total / k.saturating_sub(1).max(1);
    let mut cursor = Point::new(0, 0);
    add(cursor, &mut set, &mut out);
    for ci in 0..k {
        // Grow an Eden blob around the chain tip. A candidate adjacent
        // to any existing cell keeps the swarm connected; duplicates are
        // skipped by the global set.
        let goal = if ci + 1 == k { n } else { out.len() + blob_each };
        let mut frontier: Vec<Point> = cursor.neighbors4().to_vec();
        while out.len() < goal {
            let i = rng.random_range(0..frontier.len());
            let p = frontier.swap_remove(i);
            if add(p, &mut set, &mut out) {
                frontier.extend(p.neighbors4().iter().filter(|q| !set.contains(q)));
            }
            // Rare: the blob grew into a pocket of older cells. Reseed
            // from random existing cells until one has a free neighbour
            // (the swarm is finite, so some boundary cell always does —
            // but a single draw can land on an interior cell, so keep
            // sampling; an empty frontier would panic in random_range).
            while frontier.is_empty() {
                let &base = out.choose(&mut rng).expect("non-empty");
                frontier.extend(base.neighbors4().iter().filter(|q| !set.contains(q)));
            }
        }
        if ci + 1 < k {
            // March the staircase chain north-east. Consecutive walk
            // cells are 4-adjacent and the walk starts inside the blob,
            // so connectivity holds even where the walk crosses cells
            // that already exist.
            let mut placed = 0usize;
            let mut east = true;
            while placed < link {
                cursor += if east { V2::E } else { V2::N };
                east = !east;
                if add(cursor, &mut set, &mut out) {
                    placed += 1;
                }
            }
        }
    }
    debug_assert_eq!(out.len(), n, "stage budgets must sum to n");
    out
}

/// Random connected blob grown by seeded random attachment (an Eden /
/// DLA-style cluster): dense, irregular boundary, occasional holes.
pub fn random_blob(n: usize, seed: u64) -> Vec<Point> {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cells: Vec<Point> = vec![Point::new(0, 0)];
    let mut set: FxHashSet<Point> = cells.iter().copied().collect();
    let mut frontier: Vec<Point> = Point::new(0, 0).neighbors4().to_vec();
    while cells.len() < n {
        let i = rng.random_range(0..frontier.len());
        let p = frontier.swap_remove(i);
        if set.insert(p) {
            cells.push(p);
            for q in p.neighbors4() {
                if !set.contains(&q) {
                    frontier.push(q);
                }
            }
        }
    }
    cells
}

/// Random connected *tree*: like [`random_blob`] but biased toward
/// sparse, tentacled shapes (a new cell must touch exactly one existing
/// cell), producing long pendant chains and many boundary robots.
pub fn random_tree(n: usize, seed: u64) -> Vec<Point> {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cells: Vec<Point> = vec![Point::new(0, 0)];
    let mut set: FxHashSet<Point> = cells.iter().copied().collect();
    let mut guard = 0usize;
    while cells.len() < n {
        guard += 1;
        assert!(guard < n.saturating_mul(10_000), "tree growth stalled");
        let &base = cells.choose(&mut rng).expect("non-empty");
        let nbrs = base.neighbors4();
        let &cand = nbrs.choose(&mut rng).expect("non-empty");
        if set.contains(&cand) {
            continue;
        }
        let contacts = cand.neighbors4().iter().filter(|q| set.contains(q)).count();
        if contacts == 1 {
            set.insert(cand);
            cells.push(cand);
        }
    }
    cells
}

/// A random x-monotone "skyline": columns of random height over a common
/// baseline — plateaus of all widths, many quasi-line endpoints.
pub fn skyline(columns: usize, max_height: usize, seed: u64) -> Vec<Point> {
    assert!(columns >= 1 && max_height >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for x in 0..columns as i32 {
        let h = rng.random_range(1..=max_height as i32);
        for y in 0..h {
            out.push(Point::new(x, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::connectivity::points_connected;
    use grid_engine::fxhash::FxHashSet;

    fn check(name: &str, pts: &[Point]) {
        let set: FxHashSet<Point> = pts.iter().copied().collect();
        assert_eq!(set.len(), pts.len(), "{name}: duplicate cells");
        assert!(points_connected(pts), "{name}: not 4-connected");
    }

    #[test]
    fn all_shapes_connected_and_duplicate_free() {
        check("line", &line(40));
        check("vline", &vertical_line(17));
        check("rect", &rectangle(9, 5));
        check("square", &square(8));
        check("hollow", &hollow_rectangle(12, 9, 2));
        check("diamond", &diamond(6));
        check("staircase", &staircase(10, 3));
        check("table", &table(30, 4));
        check("plus", &plus(10, 3));
        check("comb", &comb(5, 6, 3));
        check("spiral", &spiral(120));
        for seed in 0..5 {
            check("blob", &random_blob(300, seed));
            check("tree", &random_tree(120, seed));
            check("skyline", &skyline(25, 9, seed));
            check("clusters", &clusters(400, 4, seed));
            check("clusters-k1", &clusters(64, 1, seed));
        }
    }

    #[test]
    fn clusters_bounding_box_grows_quadratically() {
        use grid_engine::Bounds;
        let pts = clusters(4096, 4, 7);
        assert_eq!(pts.len(), 4096);
        let b = Bounds::of(pts.iter().copied()).unwrap();
        let area = b.width() as u64 * b.height() as u64;
        // The chain budget is ~4n/5 cells at 2 cells per NE step, so the
        // span is ~2n/5 per axis and the box ~4n²/25 cells — far beyond
        // anything an O(area) index should allocate. (At n = 10⁵ this
        // same shape exceeds 10⁹ cells; asserted at 4096 to keep the
        // debug-build test fast.)
        assert!(area >= (pts.len() as u64).pow(2) / 25, "box only {area} cells");
        // And exactly n cells, every time, per seed.
        assert_eq!(clusters(4096, 4, 7), pts, "not deterministic");
    }

    #[test]
    fn sizes_are_exact_where_specified() {
        assert_eq!(line(10).len(), 10);
        assert_eq!(rectangle(4, 6).len(), 24);
        assert_eq!(diamond(3).len(), 25); // 2r(r+1)+1
        assert_eq!(random_blob(250, 1).len(), 250);
        assert_eq!(random_tree(77, 2).len(), 77);
        assert_eq!(spiral(99).len(), 99);
        assert_eq!(table(20, 3).len(), 26);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_blob(200, 42), random_blob(200, 42));
        assert_eq!(random_tree(90, 42), random_tree(90, 42));
        assert_ne!(random_blob(200, 1), random_blob(200, 2));
    }

    #[test]
    fn hollow_rectangle_has_a_hole() {
        let pts = hollow_rectangle(8, 8, 1);
        let set: FxHashSet<Point> = pts.iter().copied().collect();
        assert!(!set.contains(&Point::new(4, 4)));
        assert_eq!(pts.len(), 8 * 8 - 6 * 6);
    }

    #[test]
    #[should_panic(expected = "no hole")]
    fn hollow_rectangle_rejects_solid() {
        hollow_rectangle(4, 4, 2);
    }

    #[test]
    fn table_is_mergeless_shape() {
        // The Fig. 4 plateau: top row plus two legs; exact population.
        let pts = table(10, 2);
        assert_eq!(pts.len(), 10 + 4);
    }
}
