//! Named workload families with a common `(n, seed) -> swarm` interface,
//! so sweeps and benches can iterate "all families" uniformly.

use grid_engine::Point;

/// A named family of swarms parameterised by target robot count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// 1×n line (worst-case diameter).
    Line,
    /// Filled square, side ≈ √n.
    Square,
    /// Filled diamond (stairway boundary), radius chosen for ≈ n cells.
    Diamond,
    /// Hollow square ring of wall thickness 2 (inner boundary).
    HollowSquare,
    /// Fig. 4 plateau: wide top row with short legs.
    Table,
    /// Random Eden-cluster blob.
    RandomBlob,
    /// Random sparse tree.
    RandomTree,
    /// Random skyline of columns.
    Skyline,
    /// Comb with long teeth.
    Comb,
    /// One-cell-wide rectangular spiral.
    Spiral,
    /// Sparse multi-cluster swarm: blobs strung along a long staircase
    /// chain, bounding box quadratic in n (the tiled-occupancy scale
    /// workload — a dense O(area) index cannot even allocate it at
    /// n ≈ 10⁵).
    Clusters,
}

impl Family {
    /// Look a family up by its registry name (the inverse of [`name`]).
    ///
    /// [`name`]: Family::name
    pub fn parse(s: &str) -> Option<Family> {
        all_families().into_iter().find(|f| f.name() == s)
    }

    pub fn name(self) -> &'static str {
        match self {
            Family::Line => "line",
            Family::Square => "square",
            Family::Diamond => "diamond",
            Family::HollowSquare => "hollow-square",
            Family::Table => "table",
            Family::RandomBlob => "random-blob",
            Family::RandomTree => "random-tree",
            Family::Skyline => "skyline",
            Family::Comb => "comb",
            Family::Spiral => "spiral",
            Family::Clusters => "clusters",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every named family, in a stable report order.
pub fn all_families() -> [Family; 11] {
    [
        Family::Line,
        Family::Square,
        Family::Diamond,
        Family::HollowSquare,
        Family::Table,
        Family::RandomBlob,
        Family::RandomTree,
        Family::Skyline,
        Family::Comb,
        Family::Spiral,
        Family::Clusters,
    ]
}

/// Instantiate a family with *approximately* `n` robots (exact for the
/// random families and the line). Deterministic in `(family, n, seed)`.
pub fn family(f: Family, n: usize, seed: u64) -> Vec<Point> {
    let n = n.max(4);
    match f {
        Family::Line => crate::line(n),
        Family::Square => {
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            crate::square(side)
        }
        Family::Diamond => {
            // 2r(r+1)+1 cells.
            let r = (((n as f64) / 2.0).sqrt() - 0.5).round().max(1.0) as usize;
            crate::diamond(r)
        }
        Family::HollowSquare => {
            // side^2 - (side-2t)^2 cells with t = 2 => 8(side-2) - 16.
            let side = (n / 8 + 4).max(6);
            crate::hollow_rectangle(side, side, 2)
        }
        Family::Table => {
            let legs = 4usize.min(n / 4);
            crate::table(n.saturating_sub(2 * legs).max(2), legs)
        }
        Family::RandomBlob => crate::random_blob(n, seed),
        Family::RandomTree => crate::random_tree(n, seed),
        Family::Skyline => {
            let max_h = (n as f64).sqrt().ceil().max(2.0) as usize;
            let cols = (n / max_h.div_ceil(2)).max(2);
            crate::skyline(cols, max_h, seed)
        }
        Family::Comb => {
            // spine + teeth; pick teeth count ~ sqrt(n).
            let teeth = ((n as f64).sqrt() / 1.5).ceil().max(2.0) as usize;
            let pitch = 3;
            let spine = (teeth - 1) * pitch + 1;
            let tooth_len = (n.saturating_sub(spine) / teeth).max(1);
            crate::comb(teeth, tooth_len, pitch)
        }
        Family::Spiral => crate::spiral(n),
        Family::Clusters => {
            // 4 clusters once the swarm can afford them (>= 8 cells per
            // cluster), fewer for tiny sweep sizes.
            let k = (n / 8).clamp(1, 4);
            crate::clusters(n, k, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::connectivity::points_connected;

    #[test]
    fn families_hit_approximate_sizes() {
        for f in all_families() {
            for n in [32usize, 128, 512] {
                let pts = family(f, n, 7);
                assert!(points_connected(&pts), "{} n={n}", f.name());
                let got = pts.len();
                assert!(
                    got as f64 >= n as f64 * 0.4 && got as f64 <= n as f64 * 2.5,
                    "{}: asked {n}, got {got}",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = all_families().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), all_families().len());
    }

    #[test]
    fn registry_round_trips_names() {
        for f in all_families() {
            assert_eq!(Family::parse(f.name()), Some(f));
            assert_eq!(f.to_string(), f.name());
        }
        assert_eq!(Family::parse("no-such-family"), None);
    }
}
