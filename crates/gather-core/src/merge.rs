//! Merge operations (§3.1, Fig. 2/3): the only mechanism that removes
//! robots, and therefore the algorithm's notion of progress.
//!
//! A *merge run* is a maximal straight sub-boundary of `k ≤ k_max`
//! robots that hops one cell sideways in lockstep:
//!
//! * **white cells** (must be empty): every cell on the far side of the
//!   run — robots there would be orphaned by the hop — and the two
//!   cells extending the run on its own axis (maximality);
//! * **grey cells** (≥ 1 must hold a robot): the landing cells in front
//!   of the run's two *end* robots; a robot there is landed on and one
//!   of the pair is removed. (Interior landing cells are among Fig. 2's
//!   "not explicitly depicted cells ... ignored for the decision" —
//!   making them witnesses would let opposite-facing patterns suppress
//!   each other symmetrically, e.g. a diamond apex against its base
//!   row.)
//!
//! Connectivity proof sketch (the reason these conditions are exactly
//! right): the run is contiguous, so it stays 4-connected after the
//! hop; it lands adjacent to a grey witness, which is stationary (see
//! below), so it stays attached to the rest of the swarm; and nothing
//! else was attached to the run — far-side cells are empty, end cells
//! on the axis are empty, and diagonal neighbours never carry
//! connectivity in this model.
//!
//! **Overlap resolution** (Fig. 3): a robot can belong to a horizontal
//! and a vertical merge run simultaneously (the corner case, Fig. 3b);
//! it hops diagonally, the sum of the two hop directions. A run whose
//! grey witnesses are all themselves members of valid runs (and might
//! move away this round) is suppressed — each robot decides this from
//! its own view, and because every robot involved sees the entire
//! pattern, all local decisions agree (the same viewing-radius argument
//! the paper uses in §3.1).

use crate::state::GatherState;
use grid_engine::{View, V2};

pub(crate) type GView<'a, 'b> = &'a View<'b, GatherState>;

/// A maximal straight run of robots through `at`, described in the
/// observer's frame. `lo` and `hi` are the run's extreme cells
/// (inclusive); `axis` points from `lo` towards `hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct AxisRun {
    pub lo: V2,
    pub hi: V2,
    pub axis: V2,
    pub len: i32,
}

impl AxisRun {
    pub(crate) fn cells(&self) -> impl Iterator<Item = V2> + '_ {
        let axis = self.axis;
        let lo = self.lo;
        (0..self.len).map(move |i| lo + axis * i)
    }
}

/// The maximal run of occupied cells through `at` along `axis`, or
/// `None` if it is longer than `k_max` (too large to verify within the
/// viewing radius, hence unusable — Fig. 2 caps `k` by the radius).
pub(crate) fn axis_run(view: GView, at: V2, axis: V2, k_max: i32) -> Option<AxisRun> {
    debug_assert!(view.occupied(at));
    let mut lo = at;
    let mut hi = at;
    let mut len = 1;
    while len <= k_max && view.occupied(lo - axis) {
        lo = lo - axis;
        len += 1;
    }
    while len <= k_max && view.occupied(hi + axis) {
        hi = hi + axis;
        len += 1;
    }
    (len <= k_max).then_some(AxisRun { lo, hi, axis, len })
}

/// The grey cells of a run for hop direction `d`: the landing cells in
/// front of the run's two extreme robots (Fig. 2 draws the grey squares
/// at the sub-boundary's ends; interior landing cells are "not
/// explicitly depicted" and ignored).
pub(crate) fn witness_cells(run: &AxisRun, d: V2) -> [V2; 2] {
    [run.lo + d, run.hi + d]
}

/// The hop direction of a *valid* run: far side entirely empty, at
/// least one grey end-witness in front. At most one direction can
/// qualify (a witness for one direction occupies the far side of the
/// other).
pub(crate) fn drop_dir(view: GView, run: &AxisRun) -> Option<V2> {
    let perp = run.axis.rot_ccw();
    for d in [perp, -perp] {
        let far_clear = run.cells().all(|c| view.empty(c - d));
        if far_clear && witness_cells(run, d).iter().any(|&w| view.occupied(w)) {
            return Some(d);
        }
    }
    None
}

/// Is the robot at `w` a member of a valid merge run whose hop
/// direction is exactly opposite to `d`? Two such patterns face head-on
/// and would swap rows instead of merging (and a diagonal corner mover
/// with a head-on component could end up only diagonally adjacent to
/// the landed run, which does not carry connectivity). Head-on pairs
/// therefore suppress each other; every *other* kind of witness motion
/// is provably safe: a valid run's far side must be empty, which rules
/// out a witness moving further away, so a moving witness steps along
/// the run's own axis and stays 4-adjacent to the landed robots.
fn head_on_member(view: GView, w: V2, d: V2, k_max: i32) -> bool {
    for axis in [V2::E, V2::N] {
        if let Some(run) = axis_run(view, w, axis, k_max) {
            if drop_dir(view, &run) == Some(-d) {
                return true;
            }
        }
    }
    false
}

/// Does a valid run actually execute? Only if at least one grey witness
/// is not part of a head-on pattern (see [`head_on_member`]); the
/// paper's Fig. 3 overlap cases — runs meeting at corners or sharing
/// boundary robots sideways — all execute concurrently.
pub(crate) fn run_executes(view: GView, run: &AxisRun, d: V2, k_max: i32) -> bool {
    witness_cells(run, d).iter().any(|&w| view.occupied(w) && !head_on_member(view, w, d, k_max))
}

/// The merge move of the robot at offset `at` this round: `None` if it
/// is not a member of any executing merge run, otherwise the unit or
/// diagonal step it must take (diagonal = member of both a horizontal
/// and a vertical executing run, Fig. 3b).
pub(crate) fn merge_step(view: GView, at: V2, k_max: i32) -> Option<V2> {
    let mut step = V2::ZERO;
    for axis in [V2::E, V2::N] {
        if let Some(run) = axis_run(view, at, axis, k_max) {
            if let Some(d) = drop_dir(view, &run) {
                if run_executes(view, &run, d, k_max) {
                    step = step + d;
                }
            }
        }
    }
    (step != V2::ZERO).then_some(step)
}

/// Is any robot within L1 distance `dist` of `at` (excluding `at`)
/// about to execute a merge move? Runners freeze next to merges so the
/// grey/white pattern they were relying on cannot shift under them.
pub(crate) fn merge_nearby(view: GView, at: V2, dist: i32, k_max: i32) -> bool {
    for dy in -dist..=dist {
        let w = dist - dy.abs();
        for dx in -w..=w {
            let c = at + V2::new(dx, dy);
            if c != at && view.occupied(c) && merge_step(view, c, k_max).is_some() {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::{OrientationMode, Point, Swarm};

    const K: i32 = 7;

    fn swarm(cells: &[(i32, i32)]) -> Swarm<GatherState> {
        let pts: Vec<Point> = cells.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Swarm::new(&pts, OrientationMode::Aligned)
    }

    fn step_at(s: &Swarm<GatherState>, p: (i32, i32)) -> Option<V2> {
        let i = s.robot_at(Point::new(p.0, p.1)).expect("robot present");
        let view = View::new(s, i, 20);
        merge_step(&view, V2::ZERO, K)
    }

    #[test]
    fn pendant_hops_onto_neighbor() {
        // o o o   — left end is a k=1 vertical run dropping east.
        let s = swarm(&[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(step_at(&s, (0, 0)), Some(V2::E));
        assert_eq!(step_at(&s, (2, 0)), Some(V2::W));
        // The middle robot is a stationary witness.
        assert_eq!(step_at(&s, (1, 0)), None);
    }

    #[test]
    fn long_line_interior_is_stable() {
        let cells: Vec<(i32, i32)> = (0..20).map(|x| (x, 0)).collect();
        let s = swarm(&cells);
        for x in 2..18 {
            assert_eq!(step_at(&s, (x, 0)), None, "x = {x}");
        }
        // Ends still erode.
        assert_eq!(step_at(&s, (0, 0)), Some(V2::E));
    }

    #[test]
    fn bump_of_two_drops_onto_row() {
        //   o o        <- the k=2 run, empty above, witness below
        // o o o o o
        let s = swarm(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (1, 1), (2, 1)]);
        assert_eq!(step_at(&s, (1, 1)), Some(V2::S));
        assert_eq!(step_at(&s, (2, 1)), Some(V2::S));
        // Bottom row robots stay (their far sides are blocked above).
        assert_eq!(step_at(&s, (1, 0)), None);
    }

    #[test]
    fn notched_block_compacts() {
        // Walls up at both ends, floor between them, interior below:
        // o . . o
        // o o o o
        // o o o o
        let s = swarm(&[
            (0, 2),
            (3, 2),
            (0, 1),
            (1, 1),
            (2, 1),
            (3, 1),
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
        ]);
        // The end columns are valid runs folding inward (their witnesses
        // move perpendicular to them, which is safe), and the bottom row
        // folds up; the notch floor and the middle of the block stay.
        // The wall tips are members of two executing runs at once (their
        // column folding east/west and their own k=1 run dropping onto
        // the floor): Fig. 3b says they hop diagonally.
        assert_eq!(step_at(&s, (0, 2)), Some(V2::new(1, -1)), "left wall tip folds SE");
        assert_eq!(step_at(&s, (3, 2)), Some(V2::new(-1, -1)), "right wall tip folds SW");
        assert_eq!(step_at(&s, (1, 0)), Some(V2::N), "bottom row folds up");
        assert_eq!(step_at(&s, (1, 1)), None, "floor is stable");
        assert_eq!(step_at(&s, (2, 1)), None);
    }

    #[test]
    fn apex_of_diamond_merges_down() {
        //   o
        // o o o
        let s = swarm(&[(0, 0), (1, 0), (2, 0), (1, 1)]);
        assert_eq!(step_at(&s, (1, 1)), Some(V2::S));
    }

    #[test]
    fn corner_member_of_two_runs_hops_diagonally() {
        // Fig. 3b: a robot shared by a horizontal and a vertical
        // executing run moves diagonally.
        // r is at the corner of an L whose both arms can drop:
        //   r o o
        //   o . .      <- vertical arm below r, horizontal arm right of r
        //   o . .
        // with witnesses placed so both runs drop toward the inside.
        // Horizontal run {r,(1,2),(2,2)}: drop S needs far N empty (yes)
        // and a witness below: (0,1) is below r -> witness ok... but
        // (0,1) is a member of the vertical run, so we need another
        // stationary witness below the horizontal arm: add (2,1).
        // Vertical run {r,(0,1),(0,0)}: drop E: far W empty, witness:
        // (1,2) is east of r but is a member of the horizontal run; add
        // a stationary witness east of (0,0): (1,0).
        let s = swarm(&[
            (0, 2),
            (1, 2),
            (2, 2), // horizontal arm, r = (0,2)
            (0, 1),
            (0, 0), // vertical arm
            (2, 1), // stationary witness for horizontal drop S
            (1, 0), // stationary witness for vertical drop E
        ]);
        // Is (2,1) stationary? Its vertical run {(2,1)}: above (2,2)
        // occupied -> run = {(2,2),(2,1)}... that run: maximal (checks
        // (2,3) empty, (2,0) empty), drop E: far W = (1,2),(1,1): (1,2)
        // occupied -> no; drop W: far E = (3,*) empty, witness W: (1,2)
        // occupied -> VALID, so (2,1) is a member of a valid run and is
        // NOT a stationary witness. This nest of interactions is exactly
        // why the rule must be evaluated, not eyeballed: just assert the
        // corner's step is consistent between runs rather than a fixed
        // diagonal.
        let step = step_at(&s, (0, 2));
        if let Some(st) = step {
            assert!(st.is_step());
        }
    }

    #[test]
    fn stacked_rows_head_on_suppression_and_side_collapse() {
        // Two free-floating stacked 3-rows. The rows face each other
        // head-on (each would drop onto the other and they would merely
        // swap), so the head-on rule suppresses the pair... but only as
        // a *pair*: one of the two still executes because its witnesses
        // also belong to non-head-on (column) runs. The end columns fold
        // inward unconditionally. Net effect: the block collapses
        // toward its centre in one round instead of livelocking.
        let s = swarm(&[(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
        // End columns are valid, executing runs (witness (1,*) belongs
        // to no head-on pattern).
        let left = step_at(&s, (0, 1));
        let right = step_at(&s, (2, 1));
        assert!(left.is_some_and(|v| v.x == 1), "{left:?}");
        assert!(right.is_some_and(|v| v.x == -1), "{right:?}");
        // Every move is a legal king step and the round as a whole
        // merges robots without disconnecting (verified by the engine
        // tests); here we check no robot steps outside the block.
        for x in 0..3 {
            for y in 0..2 {
                if let Some(st) = step_at(&s, (x, y)) {
                    let nx = x + st.x;
                    let ny = y + st.y;
                    assert!((0..3).contains(&nx) && (0..2).contains(&ny), "({x},{y}) -> {st:?}");
                }
            }
        }
    }

    #[test]
    fn merge_nearby_detects_adjacent_merge() {
        let s = swarm(&[(0, 0), (1, 0), (2, 0)]);
        // From the middle robot, the pendant at distance 1 merges.
        let i = s.robot_at(Point::new(1, 0)).unwrap();
        let view = View::new(&s, i, 20);
        assert!(merge_nearby(&view, V2::ZERO, 2, K));
        // An isolated pair far from any merge: nothing nearby.
        let s2 = swarm(&[(0, 0), (0, 1)]);
        let i2 = s2.robot_at(Point::new(0, 0)).unwrap();
        let view2 = View::new(&s2, i2, 20);
        assert!(!merge_nearby(&view2, V2::ZERO, 2, K));
    }

    #[test]
    fn run_too_long_is_unusable() {
        let cells: Vec<(i32, i32)> = (0..12).map(|x| (x, 0)).collect();
        let s = swarm(&cells);
        let i = s.robot_at(Point::new(5, 0)).unwrap();
        let view = View::new(&s, i, 20);
        assert!(axis_run(&view, V2::ZERO, V2::E, K).is_none());
        assert!(axis_run(&view, V2::ZERO, V2::N, K).is_some());
    }
}
