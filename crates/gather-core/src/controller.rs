//! The complete per-robot algorithm (Fig. 11): merge first, then runner
//! operations, then run starts every L-th round.

use crate::config::GatherConfig;
use crate::merge::merge_step;
use crate::runner;
use crate::state::{GatherState, Run};
use grid_engine::{Action, Controller, RoundCtx, View, V2};

/// The paper's gathering strategy as a [`Controller`] for the FSYNC
/// engine. Stateless apart from its constants; all per-robot memory
/// lives in [`GatherState`].
#[derive(Clone, Debug)]
pub struct GatherController {
    cfg: GatherConfig,
}

impl GatherController {
    /// Strategy with the paper's unoptimised constants (radius 20,
    /// L = 22).
    pub fn paper() -> Self {
        Self::with_config(GatherConfig::paper()).expect("paper constants are valid")
    }

    pub fn with_config(cfg: GatherConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(GatherController { cfg })
    }

    pub fn config(&self) -> &GatherConfig {
        &self.cfg
    }
}

impl Controller for GatherController {
    type State = GatherState;

    fn radius(&self) -> i32 {
        self.cfg.radius
    }

    fn decide(&self, view: &View<'_, GatherState>, ctx: RoundCtx) -> Action<GatherState> {
        let k_max = self.cfg.k_max();

        // 1. Merge (Fig. 11 step 1): members of executing merge runs
        //    hop; their runs terminate (Table 1, cond. 3).
        if let Some(step) = merge_step(view, V2::ZERO, k_max) {
            return Action { step, state: GatherState::default() };
        }

        // 2./3. Run operations (Fig. 11 steps 2 and 3): resolve my own
        //    runs, including any started this round (OP-C acts in the
        //    start round itself).
        let starting = ctx.round.is_multiple_of(self.cfg.period);
        let my_plan = runner::plan(view, V2::ZERO, starting, &self.cfg);
        if my_plan.hop != V2::ZERO && view.occupied(my_plan.hop) {
            // OP-A onto an occupied cell: merge; every run I hold or
            // would adopt this round dies with me (cond. 6 + 3).
            return Action { step: my_plan.hop, state: GatherState::default() };
        }
        let mut next: Vec<Run> = my_plan.kept;

        // ...and adopt runs my boundary neighbours hand to me. The
        //    recipient of a pass is always within Chebyshev distance 1
        //    of the holder, so scanning the 8 neighbours is complete.
        for dy in -1..=1 {
            for dx in -1..=1 {
                let d = V2::new(dx, dy);
                if d == V2::ZERO || view.empty(d) {
                    continue;
                }
                let their = runner::plan(view, d, starting, &self.cfg);
                for (to, run) in their.passes {
                    // Pass targets are expressed in the observer's own
                    // frame already; the run is ours if it lands here.
                    if to == V2::ZERO {
                        next.push(run);
                    }
                }
            }
        }

        Action { step: my_plan.hop, state: GatherState::from_runs(next) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::{
        ConnectivityCheck, Engine, EngineConfig, EngineError, OrientationMode, Point, Swarm,
    };

    fn engine_for(cells: &[(i32, i32)]) -> Engine<GatherController> {
        let pts: Vec<Point> = cells.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Engine::new(
            Swarm::new(&pts, OrientationMode::Aligned),
            GatherController::paper(),
            EngineConfig { connectivity: ConnectivityCheck::Always, ..EngineConfig::default() },
        )
    }

    fn gathers(cells: &[(i32, i32)], budget: u64) -> u64 {
        let mut e = engine_for(cells);
        match e.run_until_gathered(budget) {
            Ok(out) => out.rounds,
            Err(EngineError::Disconnected { round }) => {
                panic!("disconnected at round {round}")
            }
            Err(err) => panic!("did not gather: {err}"),
        }
    }

    #[test]
    fn tiny_swarms_gather_immediately_or_fast() {
        assert_eq!(gathers(&[(0, 0)], 10), 0);
        assert_eq!(gathers(&[(0, 0), (1, 0)], 10), 0);
        assert_eq!(gathers(&[(0, 0), (1, 0), (0, 1), (1, 1)], 10), 0);
        // A 1×3 line is not within a 2×2 box; both tips hop in.
        assert!(gathers(&[(0, 0), (1, 0), (2, 0)], 10) <= 2);
    }

    #[test]
    fn line_gathers_linearly() {
        let cells: Vec<(i32, i32)> = (0..40).map(|x| (x, 0)).collect();
        let rounds = gathers(&cells, 400);
        // Tips erode by one from each side per round: ~n/2 rounds.
        assert!(rounds <= 40, "took {rounds} rounds");
    }

    #[test]
    fn small_square_gathers() {
        let mut cells = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                cells.push((x, y));
            }
        }
        let rounds = gathers(&cells, 2000);
        assert!(rounds > 0);
    }

    #[test]
    fn plateau_gathers_via_runners() {
        // Mergeless Fig. 4 shape: requires run reshapement.
        let mut cells: Vec<(i32, i32)> = (0..20).map(|x| (x, 0)).collect();
        for y in 1..=9 {
            cells.push((0, -y));
            cells.push((19, -y));
        }
        let rounds = gathers(&cells, 10_000);
        assert!(rounds > 0);
    }
}
