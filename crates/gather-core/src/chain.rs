//! Local boundary-chain traversal: the "vector chain along the outer
//! boundary" of the paper's Lemma 1 proof (Fig. 18), computed from a
//! robot's local view.
//!
//! A chain cursor is `(at, travel, side)`: a robot cell `at`, the walk
//! direction `travel`, and the exterior side `side` (the empty side the
//! chain keeps on its hand). One step inspects two cells:
//!
//! * the diagonal `at + travel + side` — occupied means the boundary
//!   turns *into* the walker (concave corner);
//! * the cell ahead `at + travel` — occupied means the boundary runs
//!   straight; empty means the boundary wraps around the current robot
//!   (convex corner: same robot, rotated directions).
//!
//! The traversal visits each robot once per empty side, which is why a
//! one-cell-wide line appears twice on its own chain and why a robot
//! can carry two independent run states.

use crate::state::GatherState;
use grid_engine::{View, V2};

/// One cursor of a boundary-chain walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cursor {
    pub at: V2,
    pub travel: V2,
    pub side: V2,
}

/// The kind of step a cursor just took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Turn {
    Straight,
    /// Boundary turned into the walk (new robot at the diagonal).
    Concave,
    /// Boundary wrapped around the current robot (cursor stays, rotates).
    Convex,
}

/// Advance the cursor one step along the boundary.
///
/// Precondition (checked in debug): `at` occupied, `at + side` empty.
pub fn chain_next(view: &View<'_, GatherState>, c: Cursor) -> (Cursor, Turn) {
    debug_assert!(view.occupied(c.at), "cursor not on a robot");
    debug_assert!(view.empty(c.at + c.side), "side is not exterior");
    let diag = c.at + c.travel + c.side;
    let ahead = c.at + c.travel;
    if view.occupied(diag) {
        (Cursor { at: diag, travel: c.side, side: -c.travel }, Turn::Concave)
    } else if view.occupied(ahead) {
        (Cursor { at: ahead, ..c }, Turn::Straight)
    } else {
        (Cursor { at: c.at, travel: -c.side, side: c.travel }, Turn::Convex)
    }
}

/// Walk up to `depth` steps from `start`, yielding each new cursor and
/// the turn that produced it. Stops early if the walk's preconditions
/// break (possible mid-round while other robots are about to move).
pub fn walk(view: &View<'_, GatherState>, start: Cursor, depth: i32) -> Vec<(Cursor, Turn)> {
    let mut out = Vec::with_capacity(depth as usize);
    let mut cur = start;
    for _ in 0..depth {
        if view.empty(cur.at) || view.occupied(cur.at + cur.side) {
            break;
        }
        let (next, turn) = chain_next(view, cur);
        out.push((next, turn));
        cur = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::{OrientationMode, Point, Swarm};

    fn swarm(cells: &[(i32, i32)]) -> Swarm<GatherState> {
        let pts: Vec<Point> = cells.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Swarm::new(&pts, OrientationMode::Aligned)
    }

    fn view_at(s: &Swarm<GatherState>, p: (i32, i32)) -> View<'_, GatherState> {
        View::new(s, s.robot_at(Point::new(p.0, p.1)).unwrap(), 20)
    }

    #[test]
    fn straight_segment() {
        let s = swarm(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let v = view_at(&s, (0, 0));
        let (c, t) = chain_next(&v, Cursor { at: V2::ZERO, travel: V2::E, side: V2::N });
        assert_eq!(t, Turn::Straight);
        assert_eq!(c.at, V2::E);
        assert_eq!(c.travel, V2::E);
        assert_eq!(c.side, V2::N);
    }

    #[test]
    fn convex_wrap_at_line_end() {
        let s = swarm(&[(0, 0), (1, 0), (2, 0)]);
        let v = view_at(&s, (2, 0));
        // Walking east along the north side at the east end: wrap.
        let (c, t) = chain_next(&v, Cursor { at: V2::ZERO, travel: V2::E, side: V2::N });
        assert_eq!(t, Turn::Convex);
        assert_eq!(c.at, V2::ZERO);
        assert_eq!(c.travel, V2::S);
        assert_eq!(c.side, V2::E);
        // Wrap again: now walking west along the south side.
        let (c2, t2) = chain_next(&v, c);
        assert_eq!(t2, Turn::Convex);
        assert_eq!(c2.travel, V2::W);
        assert_eq!(c2.side, V2::S);
    }

    #[test]
    fn concave_turn_into_upper_row() {
        // Row east, then the boundary steps up:
        // . . o o
        // o o o .
        let s = swarm(&[(0, 0), (1, 0), (2, 0), (2, 1), (3, 1)]);
        let v = view_at(&s, (1, 0));
        let (c, t) = chain_next(&v, Cursor { at: V2::ZERO, travel: V2::E, side: V2::N });
        assert_eq!(t, Turn::Concave);
        assert_eq!(c.at, V2::new(1, 1)); // the diagonal robot (2,1)
        assert_eq!(c.travel, V2::N);
        assert_eq!(c.side, V2::W);
    }

    #[test]
    fn walk_circumnavigates_a_line() {
        // A 1×3 line: the full boundary chain from the west end's north
        // side returns to itself after visiting both sides.
        let s = swarm(&[(0, 0), (1, 0), (2, 0)]);
        let v = view_at(&s, (1, 0));
        let start = Cursor { at: V2::W, travel: V2::E, side: V2::N };
        let steps = walk(&v, start, 12);
        assert_eq!(steps.len(), 12);
        // The walk must return to its start cursor within one lap:
        // 2 straight (top), 2 convex (east wrap), 2 straight (bottom),
        // 2 convex (west wrap) = 8 steps per lap.
        assert_eq!(steps[7].0, start);
        let convex = steps.iter().take(8).filter(|(_, t)| *t == Turn::Convex).count();
        assert_eq!(convex, 4);
    }

    #[test]
    fn walk_around_square_block() {
        // 2×2 block: the boundary chain has 4 robots x 2 sides... walk
        // the outer contour: each robot contributes one straight and one
        // convex step => 8 steps per lap.
        let s = swarm(&[(0, 0), (1, 0), (0, 1), (1, 1)]);
        let v = view_at(&s, (0, 0));
        let start = Cursor { at: V2::ZERO, travel: V2::E, side: V2::S };
        let steps = walk(&v, start, 8);
        assert_eq!(steps[7].0, start);
    }

    #[test]
    fn walk_stops_on_broken_precondition() {
        let s = swarm(&[(0, 0), (1, 0)]);
        let v = view_at(&s, (0, 0));
        // side points at an occupied cell: walk refuses to move.
        let bad = Cursor { at: V2::ZERO, travel: V2::N, side: V2::E };
        assert!(walk(&v, bad, 5).is_empty());
    }
}
