//! Runner reshapement (§3.2/§3.3): run-state lifecycle, the OP-A
//! diagonal hop, corner rounding (OP-B/OP-C) and the Table-1 stop
//! conditions, all expressed as a *symmetric* plan function.
//!
//! [`plan`] answers "what does the robot at offset `at` do with its run
//! states this round?" and is evaluated both by the holder itself and
//! by its boundary neighbours (a run *moves* by observation: the
//! recipient sees the holder's state and adopts the run while the
//! holder drops it — both replay the same pure function on overlapping
//! views, so their decisions agree; this implements the paper's "move
//! runstate" without message passing, which the model does not have).
//!
//! Deviations from the paper's presentation (recorded in DESIGN.md §3):
//! the explicit run-passing counters of Fig. 9b are subsumed by a local
//! conflict rule — a holder whose two runs demand different diagonal
//! hops performs none and both runs keep moving, which makes head-on
//! runs glide past each other exactly as in the passing operation.

use crate::chain::{chain_next, Cursor, Turn};
use crate::config::GatherConfig;
use crate::merge::{merge_nearby, merge_step, GView};
use crate::start;
use crate::state::Run;
use grid_engine::V2;

/// A holder's resolved runner behaviour for one round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Plan {
    /// The holder's physical step (zero if it does not hop).
    pub hop: V2,
    /// Runs that stay with the holder (convex-corner rotation).
    pub kept: Vec<Run>,
    /// Runs handed to a boundary neighbour: (recipient offset, run),
    /// both in the observer's frame.
    pub passes: Vec<(V2, Run)>,
}

/// Why a run ended (Table 1), exposed for the white-box tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StopReason {
    /// Cond. 1: a sequent run is visible in front.
    SequentRunAhead,
    /// Cond. 2: the quasi line's endpoint is visible in front.
    EndpointAhead,
    /// Cond. 4/5: the sub-boundary shape no longer supports the run.
    ShapeBroken,
    /// The run exceeded its bounded lifetime (see `Run::age`).
    Expired,
}

/// What a single run does this round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RunStep {
    Stop(StopReason),
    /// Convex corner: the run stays on the holder with rotated frame.
    Hold(Run),
    /// The run moves to the boundary neighbour at the given offset.
    Pass(V2, Run),
}

/// Resolve one run of the holder at `at`. `fresh` marks a run started
/// this very round: per OP-C (Fig. 8c) it performs its first diagonal
/// hop and moves on immediately, exempt from the look-ahead stop
/// conditions — otherwise the perpendicular run its own Start-B twin
/// corner launched would read as "sequent ahead" and no run would ever
/// leave a corner.
pub(crate) fn run_step(view: GView, at: V2, run: Run, fresh: bool, cfg: &GatherConfig) -> RunStep {
    // Expired runs terminate (bounded lifetime; see `Run::age`).
    if run.age >= cfg.ttl() {
        return RunStep::Stop(StopReason::Expired);
    }
    // The run is pinned to a boundary side; if that side is no longer
    // exterior the shape changed under the run (Table 1, cond. 4/5).
    if view.occupied(at + run.side) {
        return RunStep::Stop(StopReason::ShapeBroken);
    }

    // Scan ahead along *this quasi line* for the stop conditions 1 and
    // 2. The scan follows straight stretches and single-step jogs
    // (corner pairs of opposite chirality, Def. 1's ≤2-robot
    // perpendicular sub-chains) and ends where the quasi line does:
    // a double convex turn is the line's free tip (cond. 2 stop),
    // any other corner is a transition to a *different* quasi line —
    // runs there are not sequent to us (the paper's Fig. 19 argument)
    // and must not stop us, or no run would survive on a small ring
    // whose every corner carries runs.
    let sequent_at = |c: &Cursor| -> bool {
        if c.at == at {
            return false;
        }
        match view.state(c.at) {
            Some(state) => state.runs().any(|o| o.travel == c.travel && o.side == c.side),
            None => false,
        }
    };
    let mut cursor = Cursor { at, travel: run.travel, side: run.side };
    let scan = if fresh { 0 } else { cfg.scan_depth() };
    let mut steps = 0;
    while steps < scan {
        let (next, turn) = chain_next(view, cursor);
        steps += 1;
        match turn {
            Turn::Straight => {
                if sequent_at(&next) {
                    return RunStep::Stop(StopReason::SequentRunAhead);
                }
                cursor = next;
            }
            Turn::Concave | Turn::Convex => {
                // Walk preconditions can momentarily break mid-reshape.
                if view.empty(next.at) || view.occupied(next.at + next.side) {
                    break;
                }
                let (next2, turn2) = chain_next(view, next);
                steps += 1;
                let jog = turn != turn2 && turn2 != Turn::Straight;
                if jog {
                    if sequent_at(&next2) {
                        return RunStep::Stop(StopReason::SequentRunAhead);
                    }
                    cursor = next2;
                } else if turn == Turn::Convex && turn2 == Turn::Convex {
                    // The boundary wraps fully around a cell: a free
                    // line tip — the quasi line ends here (cond. 2).
                    return RunStep::Stop(StopReason::EndpointAhead);
                } else {
                    // A genuine corner: the next quasi line begins.
                    break;
                }
            }
        }
        if view.empty(cursor.at) || view.occupied(cursor.at + cursor.side) {
            break;
        }
    }

    // Advance one chain step.
    let (next, turn) = chain_next(view, Cursor { at, travel: run.travel, side: run.side });
    match turn {
        Turn::Convex => RunStep::Hold(run.aged(next.travel, next.side)),
        Turn::Straight | Turn::Concave => RunStep::Pass(next.at, run.aged(next.travel, next.side)),
    }
}

/// Is the OP-A reshapement hop available for this run? Requires the
/// Fig. 8a shape — the holder and the next three robots on a straight
/// line with the exterior side clear — plus the joint connectivity
/// certificate below.
fn hop_candidate(view: GView, at: V2, run: Run, starting: bool, cfg: &GatherConfig) -> Option<V2> {
    let t = run.travel;
    let s = run.side;
    let straight = view.occupied(at + t)
        && view.occupied(at + t * 2)
        && view.occupied(at + t * 3)
        && view.empty(at + s)
        && view.empty(at + t + s);
    if !straight {
        return None;
    }
    let target = at + run.hop_step();
    joint_hop_safe(view, at, target, starting, cfg).then_some(target)
}

/// Robots within L1 distance 2 of `at` that may move this round —
/// run holders, and in start rounds also Start-A/B matches — together
/// with every destination their own OP-A hop could take. `None` when
/// more than two such movers crowd the window (too many worlds to
/// certify: treat as the run-passing situation and do not reshape).
fn nearby_movers(
    view: GView,
    at: V2,
    starting: bool,
    cfg: &GatherConfig,
) -> Option<Vec<(V2, Vec<V2>)>> {
    let mut movers = Vec::new();
    for dy in -2..=2i32 {
        let w = 2 - dy.abs();
        for dx in -w..=w {
            let c = at + V2::new(dx, dy);
            if c == at {
                continue;
            }
            let Some(state) = view.state(c) else { continue };
            let mut runs: Vec<Run> = state.runs().collect();
            if starting {
                for r in start::starts(view, c, cfg) {
                    if !runs.iter().any(|q| q.same_direction(&r)) {
                        runs.push(r);
                    }
                }
            }
            if runs.is_empty() {
                continue;
            }
            let dests: Vec<V2> = runs.iter().map(|r| c + r.hop_step()).collect();
            movers.push((c, dests));
            if movers.len() > 2 {
                return None;
            }
        }
    }
    Some(movers)
}

/// The joint connectivity certificate for a reshapement hop
/// `at -> target`.
///
/// Simultaneity is the crux of FSYNC safety: a hop that is safe on its
/// own can combine with a neighbouring runner's hop into a cut (two
/// vacated cells whose bridging path ran through both — the "zigzag"
/// failure). The certificate therefore enumerates every *world*: each
/// nearby mover either stays or performs one of its own possible hops.
/// In every world, inside a 7×7 window, after removing the vacated
/// cells and adding the landed ones, every remaining robot adjacent to
/// a vacated cell must reach `target`. Window-local paths imply global
/// paths, so if all worlds pass, no combination of simultaneous
/// decisions can disconnect the swarm here; refusing costs liveness
/// only (the next start wave retries).
pub(crate) fn joint_hop_safe(
    view: GView,
    at: V2,
    target: V2,
    starting: bool,
    cfg: &GatherConfig,
) -> bool {
    let Some(movers) = nearby_movers(view, at, starting, cfg) else {
        return false;
    };
    // Enumerate mover choices: index 0 = stays, i>0 = hop to dests[i-1].
    let mut choice = vec![0usize; movers.len()];
    loop {
        let mut removed = vec![at];
        let mut added = vec![target];
        for (i, &(c, ref dests)) in movers.iter().enumerate() {
            if choice[i] > 0 {
                removed.push(c);
                added.push(dests[choice[i] - 1]);
            }
        }
        if !world_ok(view, at, target, &removed, &added) {
            return false;
        }
        // Next world (mixed-radix counter).
        let mut i = 0;
        loop {
            if i == movers.len() {
                return true;
            }
            choice[i] += 1;
            if choice[i] <= movers[i].1.len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// One world of the joint certificate: BFS inside the window.
fn world_ok(view: GView, at: V2, target: V2, removed: &[V2], added: &[V2]) -> bool {
    const R: i32 = 3;
    const W: usize = (2 * R as usize) + 1;
    let idx = |v: V2| -> Option<usize> {
        let dx = v.x - at.x + R;
        let dy = v.y - at.y + R;
        (dx >= 0 && dy >= 0 && dx <= 2 * R && dy <= 2 * R).then(|| (dy as usize) * W + dx as usize)
    };
    let mut occ = [false; W * W];
    for dy in -R..=R {
        for dx in -R..=R {
            let v = at + V2::new(dx, dy);
            occ[idx(v).expect("in window")] = view.occupied(v);
        }
    }
    for &r in removed {
        if let Some(i) = idx(r) {
            occ[i] = false;
        }
    }
    for &a in added {
        if let Some(i) = idx(a) {
            occ[i] = true;
        }
    }
    let Some(ti) = idx(target) else { return false };

    let mut seen = [false; W * W];
    let mut stack = vec![target];
    seen[ti] = true;
    while let Some(p) = stack.pop() {
        for d in V2::axis_units() {
            let q = p + d;
            if let Some(i) = idx(q) {
                if occ[i] && !seen[i] {
                    seen[i] = true;
                    stack.push(q);
                }
            }
        }
    }
    // Every robot (in this world) adjacent to a vacated cell must
    // reach the target.
    removed.iter().all(|&r| {
        V2::axis_units().into_iter().all(|d| {
            let nb = r + d;
            match idx(nb) {
                Some(i) => !occ[i] || seen[i],
                None => true,
            }
        })
    })
}

/// The holder's complete runner behaviour this round, in the observer's
/// frame. Must be called with `at` either zero (self) or the offset of
/// an occupied cell within Chebyshev distance 1. `starting` is true in
/// run-start rounds (the synchronous L-clock): the holder's Start-A/
/// Start-B matches act immediately (OP-C's first hop) in that round.
pub(crate) fn plan(view: GView, at: V2, starting: bool, cfg: &GatherConfig) -> Plan {
    let stored = if at == V2::ZERO {
        *view.self_state()
    } else {
        match view.state(at) {
            Some(s) => s,
            None => return Plan::default(),
        }
    };
    let mut runs: Vec<(Run, bool)> = stored.runs().map(|r| (r, false)).collect();
    if starting {
        for r in start::starts(view, at, cfg) {
            if !runs.iter().any(|&(q, _)| q.same_direction(&r)) {
                runs.push((r, true));
            }
        }
    }
    if runs.is_empty() {
        return Plan::default();
    }
    let k_max = cfg.k_max();

    // Table 1, cond. 3: a holder participating in a merge operation
    // stops all its runs (the merge move itself is decided elsewhere).
    if merge_step(view, at, k_max).is_some() {
        return Plan::default();
    }
    // Freeze next to an executing merge: the shapes a runner relies on
    // (and the grey witnesses a merge relies on) must not shift in the
    // same round. Costs a constant delay, never progress.
    if merge_nearby(view, at, 2, k_max) {
        return Plan {
            hop: V2::ZERO,
            kept: runs.iter().map(|&(r, _)| r).collect(),
            passes: Vec::new(),
        };
    }

    let mut kept = Vec::new();
    let mut passes = Vec::new();
    let mut hop_options: Vec<V2> = Vec::new();
    for (run, fresh) in runs {
        match run_step(view, at, run, fresh, cfg) {
            RunStep::Stop(_) => {}
            RunStep::Hold(rotated) => kept.push(rotated),
            RunStep::Pass(to, moved) => {
                // OP-A hops only happen while the run advances straight
                // along a quasi line (Fig. 8a); corner rounding is the
                // hop-less OP-B/OP-C, and nearby runs force passing.
                if to == at + run.travel {
                    if let Some(target) = hop_candidate(view, at, run, starting, cfg) {
                        hop_options.push(target);
                    }
                }
                passes.push((to, moved));
            }
        }
    }

    hop_options.sort();
    hop_options.dedup();
    let hop = match hop_options.len() {
        1 => hop_options[0] - at,
        // Two runs demanding different diagonals: the run-passing
        // situation — nobody hops, both runs keep moving (Fig. 9b).
        _ => V2::ZERO,
    };

    if hop != V2::ZERO && view.occupied(at + hop) {
        // OP-A onto an occupied cell: a merge; the run (and any other
        // run of this holder) terminates (Table 1, cond. 6 and 3).
        return Plan { hop, kept: Vec::new(), passes: Vec::new() };
    }

    Plan { hop, kept, passes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GatherState;
    use grid_engine::{OrientationMode, Point, Swarm, View};

    fn cfg() -> GatherConfig {
        GatherConfig::paper()
    }

    fn swarm(cells: &[(i32, i32)]) -> Swarm<GatherState> {
        let pts: Vec<Point> = cells.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Swarm::new(&pts, OrientationMode::Aligned)
    }

    fn give_run(s: &mut Swarm<GatherState>, p: (i32, i32), run: Run) {
        let i = s.robot_at(Point::new(p.0, p.1)).unwrap();
        let existing: Vec<Run> = s.states()[i].runs().collect();
        s.states_mut()[i] = GatherState::from_runs(existing.into_iter().chain([run]));
    }

    fn view_at(s: &Swarm<GatherState>, p: (i32, i32)) -> View<'_, GatherState> {
        View::new(s, s.robot_at(Point::new(p.0, p.1)).unwrap(), 20)
    }

    /// The Fig. 4 plateau: top row 0..len-1 at y=0 with legs at the
    /// ends. Legs are taller than `k_max` so the end columns are not
    /// themselves merge runs and the shape is genuinely mergeless.
    fn plateau(len: i32) -> Swarm<GatherState> {
        let mut cells: Vec<(i32, i32)> = (0..len).map(|x| (x, 0)).collect();
        for y in 1..=9 {
            cells.push((0, -y));
            cells.push((len - 1, -y));
        }
        swarm(&cells)
    }

    #[test]
    fn op_a_hops_and_passes_on_long_line() {
        let mut s = plateau(14);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (0, 0), run);
        let v = view_at(&s, (0, 0));
        let p = plan(&v, V2::ZERO, false, &cfg());
        // OP-A: diagonal hop forward-down, run moves to the next robot.
        assert_eq!(p.hop, V2::new(1, -1));
        assert_eq!(p.passes, vec![(V2::E, run.aged(V2::E, V2::N))]);
        assert!(p.kept.is_empty());
    }

    #[test]
    fn neighbors_replay_the_same_plan() {
        let mut s = plateau(14);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (0, 0), run);
        // The recipient (1,0) evaluates the holder's plan at offset W.
        let v = view_at(&s, (1, 0));
        let p = plan(&v, V2::W, false, &cfg());
        assert_eq!(p.hop, V2::new(1, -1));
        assert_eq!(p.passes, vec![(V2::ZERO, run.aged(V2::E, V2::N))]);
    }

    #[test]
    fn hop_onto_occupied_is_a_merge_and_kills_runs() {
        // Mid-fold geometry: the runner's predecessor has already folded
        // (so OP-A applies) and the hop target lies on a long stable row
        // below — the landing is occupied, the hop is the cond-6 merge.
        let mut cells: Vec<(i32, i32)> = (2..14).map(|x| (x, 0)).collect();
        cells.extend((0..14).map(|x| (x, -1)));
        let mut s = swarm(&cells);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (2, 0), run);
        let v = view_at(&s, (2, 0));
        let p = plan(&v, V2::ZERO, false, &cfg());
        assert_eq!(p.hop, V2::new(1, -1), "OP-A fires into the occupied cell");
        assert!(p.passes.is_empty(), "cond. 6: run dies on occupied landing");
        assert!(p.kept.is_empty());
    }

    #[test]
    fn corner_rounds_without_hop() {
        // OP-B: the line turns 2 ahead of the runner into a long column,
        // so the straightness condition fails — the run passes on
        // without a diagonal hop. Both arms are longer than k_max so no
        // merge interferes.
        let mut cells: Vec<(i32, i32)> = (0..10).map(|x| (x, 0)).collect();
        cells.extend((1..=19).map(|y| (9, y)));
        let mut s = swarm(&cells);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (7, 0), run);
        let v = view_at(&s, (7, 0));
        let p = plan(&v, V2::ZERO, false, &cfg());
        // (8,0),(9,0) occupied but (10,0) empty: no OP-A; run passes.
        assert_eq!(p.hop, V2::ZERO);
        assert_eq!(p.passes.len(), 1);
        assert_eq!(p.passes[0].0, V2::E);
    }

    #[test]
    fn convex_corner_rotates_and_holds() {
        //  Run at the east tip of a plateau top row, travelling east:
        //  the boundary wraps; the run stays and rotates clockwise. The
        //  leg must be deeper than the scan depth, otherwise the run
        //  correctly stops instead (cond. 2: it can see the leg's free
        //  end, the quasi line's endpoint).
        let mut cells: Vec<(i32, i32)> = (0..10).map(|x| (x, 0)).collect();
        for y in 1..=20 {
            cells.push((0, -y));
            cells.push((9, -y));
        }
        let mut s = swarm(&cells);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (9, 0), run);
        let v = view_at(&s, (9, 0));
        let p = plan(&v, V2::ZERO, false, &cfg());
        assert!(p.passes.is_empty());
        assert_eq!(p.kept, vec![run.aged(V2::S, V2::E)]);
    }

    #[test]
    fn corner_to_next_wall_is_not_an_endpoint() {
        // Same corner, shallow leg: the wrap into the perpendicular leg
        // is a transition to a *different* quasi line — the scan ends
        // there (Fig. 19: runs beyond it are not sequent) and the run
        // simply rounds the corner.
        let mut s = plateau(10);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (9, 0), run);
        let v = view_at(&s, (9, 0));
        assert_eq!(
            run_step(&v, V2::ZERO, run, false, &cfg()),
            RunStep::Hold(run.aged(V2::S, V2::E))
        );
    }

    #[test]
    fn sequent_run_ahead_stops() {
        let mut s = plateau(16);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (2, 0), run);
        give_run(&mut s, (8, 0), run); // sequent run 6 ahead, same chain
        let v = view_at(&s, (2, 0));
        let step = run_step(&v, V2::ZERO, run, false, &cfg());
        assert_eq!(step, RunStep::Stop(StopReason::SequentRunAhead));
        // The front run does not see the one behind it and continues.
        let v8 = view_at(&s, (8, 0));
        assert!(matches!(run_step(&v8, V2::ZERO, run, false, &cfg()), RunStep::Pass(..)));
    }

    #[test]
    fn oncoming_run_does_not_stop_us() {
        let mut s = plateau(16);
        give_run(&mut s, (2, 0), Run::new(V2::E, V2::N));
        give_run(&mut s, (8, 0), Run::new(V2::W, V2::N)); // head-on partner
        let v = view_at(&s, (2, 0));
        assert!(matches!(
            run_step(&v, V2::ZERO, Run::new(V2::E, V2::N), false, &cfg()),
            RunStep::Pass(..)
        ));
    }

    #[test]
    fn endpoint_ahead_stops() {
        // A free line end (double convex wrap) within scanning range.
        let cells: Vec<(i32, i32)> = (0..8).map(|x| (x, 0)).collect();
        let mut s = swarm(&cells);
        let run = Run::new(V2::E, V2::N);
        give_run(&mut s, (4, 0), run);
        let v = view_at(&s, (4, 0));
        assert_eq!(
            run_step(&v, V2::ZERO, run, false, &cfg()),
            RunStep::Stop(StopReason::EndpointAhead)
        );
    }

    #[test]
    fn two_conflicting_runs_pass_without_hopping() {
        // One robot holding both a north-side-east run and a south-side-
        // west run (the thin-line passing situation): hops disagree.
        let mut s = plateau(16);
        // Put the runs mid-line where both directions have 3 straight.
        give_run(&mut s, (7, 0), Run::new(V2::E, V2::N));
        give_run(&mut s, (7, 0), Run::new(V2::W, V2::S));
        let v = view_at(&s, (7, 0));
        let p = plan(&v, V2::ZERO, false, &cfg());
        assert_eq!(p.hop, V2::ZERO, "conflicting hops cancel (run passing)");
        assert_eq!(p.passes.len(), 2);
        let tos: Vec<V2> = p.passes.iter().map(|(t, _)| *t).collect();
        assert!(tos.contains(&V2::E) && tos.contains(&V2::W));
    }

    #[test]
    fn shape_broken_stops() {
        // Side S must point *into* the swarm for the shape check to
        // fire, so use an interior-side run on a filled 10x2 block
        // (on a bare plateau (5,-1) is empty and side S is fine).
        let mut cells: Vec<(i32, i32)> = (0..10).map(|x| (x, 0)).collect();
        cells.extend((0..10).map(|x| (x, -1)));
        let mut s2 = swarm(&cells);
        give_run(&mut s2, (5, 0), Run::new(V2::E, V2::S));
        let v2 = view_at(&s2, (5, 0));
        assert_eq!(
            run_step(&v2, V2::ZERO, Run::new(V2::E, V2::S), false, &cfg()),
            RunStep::Stop(StopReason::ShapeBroken)
        );
    }

    #[test]
    fn window_safety_refuses_disconnecting_hop() {
        // Mid-line robot with both neighbours present: hopping away
        // would cut the line.
        let s = swarm(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]);
        let v = view_at(&s, (2, 0));
        assert!(!joint_hop_safe(&v, V2::ZERO, V2::new(1, -1), false, &cfg()));
        // End robot: the hop target keeps it attached.
        let v0 = view_at(&s, (0, 0));
        assert!(joint_hop_safe(&v0, V2::ZERO, V2::new(1, -1), false, &cfg()));
    }

    #[test]
    fn window_safety_allows_leg_corner_fold() {
        // The table corner: leg below, row to the east; hopping SE keeps
        // the leg connected through the hop target.
        let s = swarm(&[(0, 0), (1, 0), (2, 0), (0, -1), (0, -2)]);
        let v = view_at(&s, (0, 0));
        assert!(joint_hop_safe(&v, V2::ZERO, V2::new(1, -1), false, &cfg()));
    }
}
