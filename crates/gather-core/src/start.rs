//! Run starting sub-boundaries (§3.2, Fig. 7).
//!
//! A run starts at an *anchored* endpoint of a quasi line: the robot is
//! the end of a straight segment of ≥ 3 robots whose exterior side is
//! clear, and the swarm continues *behind/below* it (the `r - side`
//! anchor). The anchor is what Fig. 7 draws as the grey exterior
//! context: it fixes the reshapement side unambiguously (no symmetric
//! Fig. 5 double-start can break connectivity) and it is exactly the
//! transition shape that Lemma 1's proof finds at the ends of the
//! upper-envelope quasi line — an L-corner into a perpendicular quasi
//! line (Start-B) or into a stairway (Start-A).
//!
//! A corner robot can match two `(travel, side)` pairs at once and then
//! starts two runs moving in both directions along the boundary —
//! Fig. 7(ii).

use crate::config::GatherConfig;
use crate::merge::GView;
use crate::state::Run;
use grid_engine::V2;

/// Does the Start-A/Start-B pattern for `(travel, side)` match at the
/// robot at offset `at`? (Evaluated off-centre by boundary neighbours
/// replaying a starter's behaviour.)
pub(crate) fn start_matches(view: GView, at: V2, travel: V2, side: V2) -> bool {
    let t = travel;
    let s = side;
    // Quasi-line side clear along me and the next two robots…
    view.empty(at + s)
        && view.empty(at + t + s)
        && view.empty(at + t * 2 + s)
        // …a straight segment of at least three robots ahead…
        && view.occupied(at + t)
        && view.occupied(at + t * 2)
        // …I am its endpoint…
        && view.empty(at - t)
        // …and the swarm continues behind my back: the anchor that
        // orients the run and rules out the bare-line symmetric case
        // (which needs no runs — its tips merge by themselves).
        && view.occupied(at - s)
}

/// Length cap for the segment-length comparison below. Probes reach
/// `|at| + cap + 1` cells, which must stay within the viewing radius
/// when evaluated for a neighbour of a neighbour.
const LEN_CAP: i32 = 14;

/// Number of robots on the straight segment starting at `base` in
/// direction `t` (including `base`), capped at [`LEN_CAP`].
fn segment_len(view: GView, base: V2, t: V2) -> i32 {
    let mut len = 1;
    while len < LEN_CAP && view.occupied(base + t * len) {
        len += 1;
    }
    len
}

/// Raw Start-A/Start-B matches at `at`, without conflict resolution.
fn raw_matches(view: GView, at: V2) -> Vec<Run> {
    let mut out = Vec::new();
    for t in V2::axis_units() {
        for s in [t.rot_ccw(), t.rot_cw()] {
            if start_matches(view, at, t, s) {
                out.push(Run::new(t, s));
            }
        }
    }
    out
}

/// All runs the robot at offset `at` starts this round (the caller
/// checks the L-clock). At most two distinct matches can coexist
/// geometrically; the state cap enforces it anyway.
///
/// Conflict resolution (the asymmetric context Fig. 7 encodes with its
/// extra white/grey cells): when two *4-adjacent* robots both match
/// start patterns — the mesa junction where one quasi line's end sits
/// directly on another's — their joint first hops would vacate the
/// two-cell column linking the lines, so both certificates refuse and
/// the swarm would freeze. Exactly one of them must start: the one
/// whose quasi-line segment is longer (a frame-invariant quantity both
/// can compute); a length tie suppresses both, which is always safe.
pub(crate) fn starts(view: GView, at: V2, _cfg: &GatherConfig) -> Vec<Run> {
    let mine = raw_matches(view, at);
    if mine.is_empty() {
        return mine;
    }
    let score = |base: V2, matches: &[Run]| -> i32 {
        matches.iter().map(|r| segment_len(view, base, r.travel)).max().unwrap_or(1)
    };
    let my_score = score(at, &mine);
    for d in V2::axis_units() {
        let c = at + d;
        if view.empty(c) {
            continue;
        }
        let theirs = raw_matches(view, c);
        if theirs.is_empty() {
            continue;
        }
        // Priority: the longer quasi-line segment starts; a tie (a
        // locally symmetric junction, or two segments both longer than
        // the cap) suppresses both, which is always safe. Very large
        // thin rings whose mesa steps all exceed the cap can stay
        // suppressed for a long time — a measured limitation recorded
        // in EXPERIMENTS.md (the paper's Fig. 7 patterns embed the
        // asymmetry in richer start contexts).
        if score(c, &theirs) >= my_score {
            return Vec::new();
        }
    }
    mine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GatherState;
    use grid_engine::{OrientationMode, Point, Swarm, View};

    fn swarm(cells: &[(i32, i32)]) -> Swarm<GatherState> {
        let pts: Vec<Point> = cells.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Swarm::new(&pts, OrientationMode::Aligned)
    }

    fn starts_at(s: &Swarm<GatherState>, p: (i32, i32)) -> Vec<Run> {
        let v = View::new(s, s.robot_at(Point::new(p.0, p.1)).unwrap(), 20);
        starts(&v, grid_engine::V2::ZERO, &GatherConfig::paper())
    }

    #[test]
    fn table_corner_starts_two_runs() {
        // Fig. 7(ii) Start-B: the corner of a horizontal and a vertical
        // line starts a run along each.
        let mut cells: Vec<(i32, i32)> = (0..12).map(|x| (x, 0)).collect();
        cells.extend((1..=9).map(|y| (0, -y)));
        let s = swarm(&cells);
        let got = starts_at(&s, (0, 0));
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.contains(&Run::new(V2::E, V2::N)), "run east on the row");
        assert!(got.contains(&Run::new(V2::S, V2::W)), "run south on the leg");
    }

    #[test]
    fn bare_line_tip_starts_nothing() {
        // Un-anchored tips erode by k=1 merges; no run may start there
        // (the paper's Fig. 5 symmetric hazard).
        let cells: Vec<(i32, i32)> = (0..12).map(|x| (x, 0)).collect();
        let s = swarm(&cells);
        assert!(starts_at(&s, (0, 0)).is_empty());
        assert!(starts_at(&s, (11, 0)).is_empty());
        assert!(starts_at(&s, (5, 0)).is_empty());
    }

    #[test]
    fn stairway_transition_starts_one_run() {
        // Start-A: a quasi line ending in a stairway step.
        //   r o o o o o o o o
        //   o                     <- (0,-1): the stair below the endpoint
        // o o
        let mut cells: Vec<(i32, i32)> = (0..9).map(|x| (x, 0)).collect();
        cells.extend([(0, -1), (-1, -1), (-1, -2), (-2, -2)]);
        let s = swarm(&cells);
        let got = starts_at(&s, (0, 0));
        assert_eq!(got, vec![Run::new(V2::E, V2::N)]);
    }

    #[test]
    fn filled_square_corners_start() {
        let mut cells = Vec::new();
        for y in 0..12 {
            for x in 0..12 {
                cells.push((x, y));
            }
        }
        let s = swarm(&cells);
        // Top-left corner (0,11): east run on the top side, south run on
        // the west side.
        let got = starts_at(&s, (0, 11));
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.contains(&Run::new(V2::E, V2::N)));
        assert!(got.contains(&Run::new(V2::S, V2::W)));
        // Mid-edge robots do not start.
        assert!(starts_at(&s, (5, 11)).is_empty());
        // Interior robots do not start.
        assert!(starts_at(&s, (5, 5)).is_empty());
    }

    #[test]
    fn segment_shorter_than_three_does_not_start() {
        //   r o            <- only two robots in the segment
        //   o o
        let s = swarm(&[(0, 0), (1, 0), (0, -1), (1, -1)]);
        assert!(starts_at(&s, (0, 0)).is_empty());
    }
}
