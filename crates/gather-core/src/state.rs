//! Per-robot constant memory: the *run states* of §3.2.

use grid_engine::{RobotState, D4, V2};

/// One run state (§3.2): a reshapement token travelling along the
/// swarm's boundary.
///
/// * `travel` — the moving direction fixed at start time (§3.2 "its in
///   'start runstate' initially set moving direction always remains
///   unchanged" — unchanged *along the boundary*; it rotates with the
///   boundary chain at corners, exactly like the paper's runs follow
///   the boundary).
/// * `side` — which side of the holder is the exterior the run reshapes
///   along (the paper draws runs attached to the boundary side; a
///   one-cell-wide line carries independent runs on both of its sides,
///   which is why a robot stores up to two runs).
///
/// Both vectors live in the *owner's* frame and are re-expressed by
/// [`GatherState::transform`] when another robot observes them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub struct Run {
    pub travel: V2,
    pub side: V2,
    /// Rounds since the run started. Runs expire after a constant
    /// number of rounds ([`crate::GatherConfig::ttl`]): on a closed
    /// boundary (a ring) an unpaired run would otherwise orbit forever,
    /// and accumulated stale runs suppress each other's reshapement
    /// (run passing) until the swarm deadlocks. A bounded age keeps the
    /// run population proportional to the start rate, which is all the
    /// paper's pipelining argument needs. (Deviation recorded in
    /// DESIGN.md §3.)
    pub age: u16,
}

impl Run {
    pub fn new(travel: V2, side: V2) -> Self {
        debug_assert!(travel.is_axis_unit() && side.is_axis_unit());
        debug_assert!(travel != side && travel != -side, "side must be perpendicular");
        Run { travel, side, age: 0 }
    }

    /// The run one round later (carried by the next holder or rotated
    /// in place at a convex corner).
    pub fn aged(&self, travel: V2, side: V2) -> Run {
        Run { travel, side, age: self.age.saturating_add(1) }
    }

    /// Same travel and side, ignoring age — the identity used for
    /// de-duplication and for the sequent-run test.
    pub fn same_direction(&self, other: &Run) -> bool {
        self.travel == other.travel && self.side == other.side
    }

    /// The diagonal reshapement hop of OP-A (Fig. 8a): forward along the
    /// boundary and away from the exterior side.
    pub fn hop_step(&self) -> V2 {
        self.travel - self.side
    }

    fn transform(&self, m: D4) -> Run {
        Run { travel: m.apply(self.travel), side: m.apply(self.side), age: self.age }
    }
}

/// A robot's full algorithm state: up to two run states (§3.2 "A robot
/// can start and store up to two run states at the same time").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GatherState {
    runs: [Option<Run>; 2],
}

impl GatherState {
    pub const MAX_RUNS: usize = 2;

    pub fn runs(&self) -> impl Iterator<Item = Run> + '_ {
        self.runs.iter().flatten().copied()
    }

    pub fn run_count(&self) -> usize {
        self.runs.iter().flatten().count()
    }

    pub fn has_runs(&self) -> bool {
        self.run_count() > 0
    }

    pub fn contains(&self, run: Run) -> bool {
        self.runs().any(|r| r == run)
    }

    /// Build a state from an arbitrary number of candidate runs:
    /// same-direction duplicates are dropped (keeping the first), then
    /// the canonical smallest two (in the owner's frame) are kept. The
    /// cap is the model's constant-memory constraint; overflow means
    /// colliding runs, and dropping a run is always safe (liveness is
    /// restored by the next start wave).
    pub fn from_runs(candidates: impl IntoIterator<Item = Run>) -> Self {
        let mut list: Vec<Run> = Vec::with_capacity(4);
        for r in candidates {
            if !list.iter().any(|q| q.same_direction(&r)) {
                list.push(r);
            }
        }
        list.sort();
        let mut runs = [None; 2];
        for (slot, run) in runs.iter_mut().zip(list) {
            *slot = Some(run);
        }
        GatherState { runs }
    }
}

impl RobotState for GatherState {
    fn transform(&self, m: D4) -> Self {
        GatherState { runs: self.runs.map(|o| o.map(|r| r.transform(m))) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_step_is_forward_diagonal() {
        let r = Run::new(V2::E, V2::N);
        assert_eq!(r.hop_step(), V2::new(1, -1));
        let r = Run::new(V2::S, V2::E);
        assert_eq!(r.hop_step(), V2::new(-1, -1));
    }

    #[test]
    fn from_runs_dedupes_and_caps() {
        let a = Run::new(V2::E, V2::N);
        let b = Run::new(V2::E, V2::S);
        let c = Run::new(V2::W, V2::N);
        let s = GatherState::from_runs([a, a, b, c]);
        assert_eq!(s.run_count(), 2);
        // Canonical order keeps the two smallest.
        let kept: Vec<Run> = s.runs().collect();
        let mut all = [a, b, c];
        all.sort();
        assert_eq!(kept, all[..2].to_vec());
    }

    #[test]
    fn transform_rotates_both_vectors() {
        let s = GatherState::from_runs([Run::new(V2::E, V2::N)]);
        let g = D4 { rot: 1, flip: false }; // E->N, N->W
        let t = s.transform(g);
        let run: Vec<Run> = t.runs().collect();
        assert_eq!(run, vec![Run::new(V2::N, V2::W)]);
    }

    #[test]
    fn default_is_empty() {
        let s = GatherState::default();
        assert!(!s.has_runs());
        assert_eq!(s.run_count(), 0);
    }
}
