//! Algorithm constants (§3/§5 of the paper) and their derived limits.

/// Tunable constants of the gathering algorithm.
///
/// The paper proves correctness with the *unoptimised* constants
/// `radius = 20` and `L = 22` (§5.3) and notes that `radius = 11` /
/// `L = 13` suffice when all interacting runs live on a single quasi
/// line. Experiment E7 sweeps both constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatherConfig {
    /// L1 viewing radius of every robot.
    pub radius: i32,
    /// Run-start period L: every `period`-th round robots check the
    /// Start-A/Start-B patterns (Fig. 7).
    pub period: u64,
}

impl GatherConfig {
    /// The paper's unoptimised constants (§5.3): radius 20, L = 22.
    pub fn paper() -> Self {
        GatherConfig { radius: 20, period: 22 }
    }

    /// Largest merge sub-boundary (the `k` of Fig. 2) this radius
    /// supports: every member must verify the full white/grey pattern
    /// *and* the witness-stationarity of grey robots; runners evaluate
    /// the same predicate up to four cells off-centre when they check
    /// for nearby merges, which costs `2·k_max + 6` cells of vision in
    /// the worst case.
    pub fn k_max(&self) -> i32 {
        ((self.radius - 6) / 2).max(1)
    }

    /// How far along the boundary chain a runner scans for the Table-1
    /// stop conditions (sequent runs, quasi-line endpoints). Chain scans
    /// are evaluated by boundary neighbours too, which costs one extra
    /// cell, and the walk itself probes two cells past its cursor.
    pub fn scan_depth(&self) -> i32 {
        (self.radius - 4).max(2)
    }

    /// Maximum run lifetime in rounds: two start periods, so at most
    /// two pipelined waves coexist on a chain (Fig. 15) while stale
    /// runs cannot accumulate on closed boundaries and deadlock the
    /// swarm via mutual run-passing suppression.
    pub fn ttl(&self) -> u16 {
        (self.period.saturating_mul(2).saturating_sub(2)).min(u16::MAX as u64) as u16
    }

    /// Sanity-check the constants; called by the controller constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.radius < 6 {
            return Err(format!("radius {} < 6 cannot express any merge pattern", self.radius));
        }
        if self.period == 0 {
            return Err("period L must be positive".into());
        }
        Ok(())
    }
}

impl Default for GatherConfig {
    fn default() -> Self {
        GatherConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = GatherConfig::paper();
        assert_eq!(c.radius, 20);
        assert_eq!(c.period, 22);
        assert_eq!(c.k_max(), 7);
        assert_eq!(c.scan_depth(), 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_tiny_radius() {
        assert!(GatherConfig { radius: 4, period: 22 }.validate().is_err());
        assert!(GatherConfig { radius: 20, period: 0 }.validate().is_err());
    }

    #[test]
    fn k_max_scales_with_radius() {
        assert_eq!(GatherConfig { radius: 11, period: 13 }.k_max(), 2);
        assert_eq!(GatherConfig { radius: 24, period: 22 }.k_max(), 9);
    }
}
