//! Whole-swarm boundary analysis for the Lemma-1 experiments (E6).
//!
//! Lemma 1's proof machinery: trace the vector chain along the swarm's
//! outer boundary (Fig. 18), decompose it into straight *legs* separated
//! by concave/convex turns, and classify the legs. In a *Mergeless
//! Swarm* the outer boundary consists of quasi lines (long legs with
//! single-step jogs of alternating chirality) and stairways (alternating
//! single steps); short legs flanked by two same-chirality *convex*
//! turns are bumps — merge candidates — and should be rare-to-absent in
//! mergeless swarms.
//!
//! These functions are simulator-side instrumentation (global view);
//! the distributed algorithm itself never calls them.

use crate::config::GatherConfig;
use crate::merge_move;
use crate::state::GatherState;
use grid_engine::{Point, Swarm, View, V2};

/// Is the swarm a *Mergeless Swarm* (§3.2): no robot anywhere can
/// perform a merge operation this round?
pub fn is_mergeless(swarm: &Swarm<GatherState>, cfg: &GatherConfig) -> bool {
    (0..swarm.len()).all(|i| {
        let view = View::new(swarm, i, cfg.radius);
        merge_move(&view, cfg).is_none()
    })
}

/// One step of the outer-boundary walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GlobalTurn {
    Straight,
    Concave,
    Convex,
}

fn global_next(
    occ: &impl Fn(Point) -> bool,
    at: Point,
    travel: V2,
    side: V2,
) -> (Point, V2, V2, GlobalTurn) {
    let diag = at + travel + side;
    let ahead = at + travel;
    if occ(diag) {
        (diag, side, -travel, GlobalTurn::Concave)
    } else if occ(ahead) {
        (ahead, travel, side, GlobalTurn::Straight)
    } else {
        (at, -side, travel, GlobalTurn::Convex)
    }
}

/// The robots of the outer boundary, in traversal order (one entry per
/// *visit*: thin parts appear once per exposed side, exactly like the
/// paper's self-overlapping vector chain).
pub fn outer_chain(swarm: &Swarm<GatherState>) -> Vec<Point> {
    let occ = |p: Point| swarm.occupied(p);
    // Bottom-most, then left-most robot: its south side is exterior.
    let start =
        swarm.positions().iter().min_by_key(|p| (p.y, p.x)).copied().expect("non-empty swarm");
    let (mut at, mut travel, mut side) = (start, V2::E, V2::S);
    let start_state = (at, travel, side);
    let mut out = vec![at];
    // A boundary of b robots yields at most 4b cursor states.
    for _ in 0..(4 * swarm.len() + 8) {
        let (nat, nt, ns, _) = global_next(&occ, at, travel, side);
        at = nat;
        travel = nt;
        side = ns;
        if (at, travel, side) == start_state {
            break;
        }
        if out.last() != Some(&at) {
            out.push(at);
        }
    }
    // The walk closes; drop the duplicated start if present.
    if out.len() > 1 && out.last() == Some(&start) {
        out.pop();
    }
    out
}

/// A maximal straight stretch of the outer boundary between two turns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Leg {
    /// Direction of travel along the leg.
    pub dir: V2,
    /// Number of straight steps (robots in the leg = steps + 1, except
    /// degenerate zero-step corner robots).
    pub steps: i32,
    /// Turn entering the leg (`true` = concave). `None` only while the
    /// walk has not yet seen a turn.
    pub enter_concave: Option<bool>,
    /// Turn leaving the leg.
    pub exit_concave: Option<bool>,
}

impl Leg {
    /// A bump: ≤ 2 robots between two convex turns — the shape a merge
    /// operation removes.
    pub fn is_bump(&self) -> bool {
        self.steps <= 1 && self.enter_concave == Some(false) && self.exit_concave == Some(false)
    }

    /// A stairway element: a short leg with alternating turn chirality
    /// (Fig. 16).
    pub fn is_stair(&self) -> bool {
        self.steps <= 1
            && matches!(
                (self.enter_concave, self.exit_concave),
                (Some(a), Some(b)) if a != b
            )
    }

    /// A quasi-line segment: at least 3 aligned robots (Def. 1).
    pub fn is_quasi_segment(&self) -> bool {
        self.steps >= 2
    }
}

/// Decompose the outer boundary into legs.
pub fn legs(swarm: &Swarm<GatherState>) -> Vec<Leg> {
    let occ = |p: Point| swarm.occupied(p);
    let start =
        swarm.positions().iter().min_by_key(|p| (p.y, p.x)).copied().expect("non-empty swarm");
    let (mut at, mut travel, mut side) = (start, V2::E, V2::S);
    let start_state = (at, travel, side);

    let mut out: Vec<Leg> = Vec::new();
    let mut current = Leg { dir: travel, steps: 0, enter_concave: None, exit_concave: None };
    for _ in 0..(4 * swarm.len() + 8) {
        let (nat, nt, ns, turn) = global_next(&occ, at, travel, side);
        match turn {
            GlobalTurn::Straight => current.steps += 1,
            GlobalTurn::Concave | GlobalTurn::Convex => {
                let concave = turn == GlobalTurn::Concave;
                current.exit_concave = Some(concave);
                out.push(current);
                current =
                    Leg { dir: nt, steps: 0, enter_concave: Some(concave), exit_concave: None };
            }
        }
        at = nat;
        travel = nt;
        side = ns;
        if (at, travel, side) == start_state {
            break;
        }
    }
    // Close the cycle: the walk started mid-leg (or at its first
    // corner), so the unfinished stub `current` is the beginning of the
    // first recorded leg — fold its steps and entering turn into it.
    if out.is_empty() {
        // Degenerate: a swarm whose boundary never turns cannot exist
        // (the walk always wraps), but a single robot ends up here.
        out.push(current);
    } else {
        out[0].steps += current.steps;
        out[0].enter_concave = current.enter_concave;
    }
    out
}

/// Aggregate leg statistics for an E6 report row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundaryStats {
    pub legs: usize,
    pub quasi_segments: usize,
    pub stairs: usize,
    pub bumps: usize,
}

pub fn boundary_stats(swarm: &Swarm<GatherState>) -> BoundaryStats {
    let legs = legs(swarm);
    BoundaryStats {
        legs: legs.len(),
        quasi_segments: legs.iter().filter(|l| l.is_quasi_segment()).count(),
        stairs: legs.iter().filter(|l| l.is_stair()).count(),
        bumps: legs.iter().filter(|l| l.is_bump()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::OrientationMode;

    fn swarm(cells: &[(i32, i32)]) -> Swarm<GatherState> {
        let pts: Vec<Point> = cells.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Swarm::new(&pts, OrientationMode::Aligned)
    }

    fn square(side: i32) -> Swarm<GatherState> {
        let mut cells = Vec::new();
        for y in 0..side {
            for x in 0..side {
                cells.push((x, y));
            }
        }
        swarm(&cells)
    }

    #[test]
    fn big_square_is_mergeless_with_four_long_legs() {
        let s = square(12);
        assert!(is_mergeless(&s, &GatherConfig::paper()));
        let stats = boundary_stats(&s);
        assert_eq!(stats.quasi_segments, 4);
        assert_eq!(stats.bumps, 0);
        assert_eq!(stats.stairs, 0);
    }

    #[test]
    fn small_square_is_not_mergeless() {
        // Sides within k_max: whole edges drop.
        let s = square(5);
        assert!(!is_mergeless(&s, &GatherConfig::paper()));
    }

    #[test]
    fn diamond_apexes_are_bumps() {
        let mut cells = Vec::new();
        let r: i32 = 6;
        for y in -r..=r {
            let w = r - y.abs();
            for x in -w..=w {
                cells.push((x, y));
            }
        }
        let s = swarm(&cells);
        // The four apexes are single-robot bumps; the faces are stairs.
        let stats = boundary_stats(&s);
        assert_eq!(stats.bumps, 4, "{stats:?}");
        assert!(stats.stairs >= 4 * (r as usize - 1), "{stats:?}");
        assert!(!is_mergeless(&s, &GatherConfig::paper()));
    }

    #[test]
    fn outer_chain_of_line_covers_both_sides() {
        let cells: Vec<(i32, i32)> = (0..5).map(|x| (x, 0)).collect();
        let s = swarm(&cells);
        let chain = outer_chain(&s);
        // Every robot appears twice (top and bottom side) except the
        // tips, which appear... the visit-dedup merges wrap-around
        // repeats, so expect 2*5 - 2 = 8 entries.
        assert_eq!(chain.len(), 8, "{chain:?}");
    }

    #[test]
    fn plateau_has_quasi_lines_and_no_bumps() {
        // The Fig. 4 plateau. Its leg *tips* still admit k=1 merges
        // (free line ends always erode), but the boundary shape is all
        // quasi lines — no bumps.
        let mut cells: Vec<(i32, i32)> = (0..16).map(|x| (x, 0)).collect();
        for y in 1..=9 {
            cells.push((0, -y));
            cells.push((15, -y));
        }
        let s = swarm(&cells);
        let stats = boundary_stats(&s);
        // The legs' free tips are bumps (they erode by k=1 merges); the
        // top row and the legs are quasi-line segments.
        assert_eq!(stats.bumps, 2, "{stats:?}");
        assert!(stats.quasi_segments >= 3, "{stats:?}");
    }

    #[test]
    fn thick_ring_is_mergeless() {
        // A hollow square with 2-thick walls and long sides: no free
        // tips, no bumps, every wall longer than k_max — the canonical
        // Mergeless Swarm with an inner boundary (Fig. 1).
        let mut cells = Vec::new();
        let (side, t) = (16, 2);
        for y in 0..side {
            for x in 0..side {
                let inside = x >= t && x < side - t && y >= t && y < side - t;
                if !inside {
                    cells.push((x, y));
                }
            }
        }
        let s = swarm(&cells);
        assert!(is_mergeless(&s, &GatherConfig::paper()));
        let stats = boundary_stats(&s);
        assert_eq!(stats.bumps, 0, "{stats:?}");
    }
}
