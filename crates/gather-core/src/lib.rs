//! # gather-core
//!
//! The primary contribution of *"Asymptotically Optimal Gathering on a
//! Grid"* (SPAA 2016): a distributed, fully-local FSYNC strategy that
//! gathers any connected swarm of `n` robots on the grid into a 2×2
//! area in `O(n)` rounds.
//!
//! ## Structure (mirrors the paper)
//!
//! * merges — merge operations (§3.1, Fig. 2/3): maximal straight
//!   sub-boundaries hop sideways onto grey witnesses and remove robots.
//! * [`state`] — the run states (§3.2): up to two reshapement tokens
//!   per robot, each pinned to a boundary side with a fixed travel
//!   direction.
//! * [`chain`] — local boundary-chain traversal (the vector chain of
//!   Lemma 1 / Fig. 18).
//! * runner ops — OP-A/OP-B/OP-C (Fig. 8), run passing (Fig. 9b) and
//!   the Table-1 stop conditions.
//! * starts — the Start-A/Start-B patterns (Fig. 7), checked every
//!   `L = 22` rounds.
//! * [`boundary`] — whole-swarm analysis used by the Lemma-1
//!   experiments: outer-boundary tracing and quasi-line/stairway
//!   decomposition, plus the mergeless-swarm predicate.
//!
//! ## Usage
//!
//! ```
//! use gather_core::GatherController;
//! use grid_engine::{Engine, EngineConfig, OrientationMode, Point};
//!
//! let line: Vec<Point> = (0..32).map(|x| Point::new(x, 0)).collect();
//! let mut engine = Engine::from_positions(
//!     &line,
//!     OrientationMode::Scrambled(1),
//!     GatherController::paper(),
//!     EngineConfig::default(),
//! );
//! let out = engine.run_until_gathered(10 * 32).unwrap();
//! assert!(out.rounds <= 32);
//! ```

pub mod boundary;
pub mod chain;
mod config;
mod controller;
mod merge;
mod runner;
mod start;
pub mod state;

pub use config::GatherConfig;
pub use controller::GatherController;
pub use state::{GatherState, Run};

/// Probe API used by tests, benches and the experiment harness: the
/// merge move a robot would take (Fig. 2/3), `None` if it must stay.
pub fn merge_move(
    view: &grid_engine::View<'_, GatherState>,
    cfg: &GatherConfig,
) -> Option<grid_engine::V2> {
    merge::merge_step(view, grid_engine::V2::ZERO, cfg.k_max())
}
