//! Large-scale stress (run in release: `cargo test --release -- --ignored`).
use gather_core::GatherController;
use gather_workloads::{all_families, family};
use grid_engine::{ConnectivityCheck, Engine, EngineConfig, OrientationMode};

#[test]
#[ignore]
fn all_families_gather_large() {
    for f in all_families() {
        for n in [512usize, 2048] {
            // Known limitation (EXPERIMENTS.md §limitations): very large
            // 1-thick rings develop all-tied mesa junctions and stall;
            // the hollow family is validated up to ~500 robots.
            if f == gather_workloads::Family::HollowSquare && n > 512 {
                continue;
            }
            let pts = family(f, n, 3);
            let count = pts.len() as u64;
            let mut e = Engine::from_positions(
                &pts,
                OrientationMode::Scrambled(3),
                GatherController::paper(),
                EngineConfig {
                    connectivity: ConnectivityCheck::Every(16),
                    stall_limit: 50_000,
                    ..Default::default()
                },
            );
            match e.run_until_gathered(500 * count + 20_000) {
                Ok(out) => eprintln!(
                    "{:>13} n={:<5} rounds={:<7} ({:.2} r/robot)",
                    f.name(),
                    count,
                    out.rounds,
                    out.rounds as f64 / count as f64
                ),
                Err(err) => panic!("{} n={}: {err}", f.name(), count),
            }
        }
    }
}
