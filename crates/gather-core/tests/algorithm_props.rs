//! Property tests on the algorithm's local rules, independent of full
//! gathering runs: every decision is a legal king step, merge rounds
//! strictly reduce the population, and single reshapement hops
//! certified by the window check never disconnect when applied alone.

use gather_core::{GatherConfig, GatherController, GatherState};
use grid_engine::connectivity::is_connected;
use grid_engine::{Action, Controller, OrientationMode, Point, RoundCtx, Swarm, View};
use proptest::prelude::*;

fn arb_swarm() -> impl Strategy<Value = (Vec<Point>, u64)> {
    (10usize..100, any::<u64>())
        .prop_map(|(n, seed)| (gather_workloads::random_blob(n, seed), seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Every decision is a king step, for every robot, every round.
    #[test]
    fn decisions_are_legal_steps((pts, seed) in arb_swarm()) {
        let controller = GatherController::paper();
        let swarm: Swarm<GatherState> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
        for i in 0..swarm.len() {
            let view = View::new(&swarm, i, controller.config().radius);
            let a: Action<GatherState> = controller.decide(&view, RoundCtx { round: 0 });
            prop_assert!(a.step.is_step(), "illegal step {:?}", a.step);
            prop_assert!(a.state.run_count() <= GatherState::MAX_RUNS);
        }
    }

    /// One full synchronous round never disconnects (the core safety
    /// property, on arbitrary random swarms and arbitrary clock phase).
    #[test]
    fn one_round_preserves_connectivity((pts, seed) in arb_swarm(), phase in 0u64..44) {
        let controller = GatherController::paper();
        let mut swarm: Swarm<GatherState> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
        let n = swarm.len();
        let actions: Vec<Action<GatherState>> = (0..n)
            .map(|i| {
                let view = View::new(&swarm, i, controller.config().radius);
                controller.decide(&view, RoundCtx { round: phase })
            })
            .collect();
        swarm.apply(actions);
        prop_assert!(is_connected(&swarm), "round at phase {phase} disconnected the swarm");
    }

    /// The merge probe is consistent with the controller: a robot whose
    /// merge_move is Some always moves by exactly that step.
    #[test]
    fn merge_probe_matches_controller((pts, seed) in arb_swarm()) {
        let controller = GatherController::paper();
        let cfg = GatherConfig::paper();
        let swarm: Swarm<GatherState> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
        for i in 0..swarm.len() {
            let view = View::new(&swarm, i, cfg.radius);
            if let Some(step) = gather_core::merge_move(&view, &cfg) {
                let a = controller.decide(&view, RoundCtx { round: 1 });
                prop_assert_eq!(a.step, step);
                prop_assert_eq!(a.state.run_count(), 0, "cond. 3: runs die on merge");
            }
        }
    }

    /// Boundary analysis smoke: the outer chain touches every extreme
    /// robot of the swarm, and leg statistics are internally coherent.
    #[test]
    fn boundary_walk_covers_extremes((pts, _seed) in arb_swarm()) {
        let swarm: Swarm<GatherState> = Swarm::new(&pts, OrientationMode::Aligned);
        let chain = gather_core::boundary::outer_chain(&swarm);
        let b = swarm.bounds();
        // The bottom-most/left-most robot starts the walk; the chain
        // must also visit some robot on each of the four extreme rows
        // and columns.
        prop_assert!(chain.iter().any(|p| p.y == b.min.y));
        prop_assert!(chain.iter().any(|p| p.y == b.max.y));
        prop_assert!(chain.iter().any(|p| p.x == b.min.x));
        prop_assert!(chain.iter().any(|p| p.x == b.max.x));
        let stats = gather_core::boundary::boundary_stats(&swarm);
        prop_assert!(stats.quasi_segments + stats.stairs + stats.bumps <= stats.legs);
    }
}
