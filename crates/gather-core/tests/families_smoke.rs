//! Cross-family robustness smoke test (debug build, small sizes).
use gather_core::GatherController;
use gather_workloads::{all_families, family};
use grid_engine::{ConnectivityCheck, Engine, EngineConfig, OrientationMode};

#[test]
fn all_families_gather_small() {
    for f in all_families() {
        for n in [24usize, 64, 150] {
            for seed in [1u64, 2] {
                let pts = family(f, n, seed);
                let count = pts.len() as u64;
                let mut e = Engine::from_positions(
                    &pts,
                    OrientationMode::Scrambled(seed),
                    GatherController::paper(),
                    EngineConfig {
                        connectivity: ConnectivityCheck::Always,
                        stall_limit: 40 * 22 + 2000,
                        ..Default::default()
                    },
                );
                match e.run_until_gathered(400 * count + 10_000) {
                    Ok(out) => eprintln!(
                        "{:>13} n={:<4} seed={} rounds={} ({:.2} rounds/robot)",
                        f.name(),
                        count,
                        seed,
                        out.rounds,
                        out.rounds as f64 / count as f64
                    ),
                    Err(err) => panic!("{} n={} seed={}: {err}", f.name(), count, seed),
                }
            }
        }
    }
}
