//! # gather-trace
//!
//! A compact, versioned binary format for per-round simulation traces,
//! plus the streaming machinery to record, replay, and diff them.
//!
//! Campaigns persist end-of-run scalars; a surprising scalar (the
//! paper's algorithm disconnecting a square under SSYNC, say) is only
//! re-examinable if the *per-round action stream* that produced it can
//! be stored and re-executed bit-exactly. This crate owns that stream:
//!
//! * [`TraceHeader`] + [`TraceWriter`] / [`TraceReader`] — the wire
//!   format: a header pinning the scenario (ID, seed, config digest,
//!   initial positions) followed by one [`RoundRecord`] per round,
//!   varint + delta encoded so a round costs a handful of bytes per
//!   *moving* robot, not per robot.
//! * [`Playback`] — re-derives the swarm evolution from a record
//!   stream alone (no controller needed), using the engine's own
//!   [`Swarm`] merge semantics, and verifies every round's population
//!   and position digest.
//! * [`diff_rounds`] / [`first_divergent_robot`] — structural
//!   comparison of two record streams, localising the first divergence
//!   to a round and, where possible, a robot index.
//!
//! ## Wire format (version 2)
//!
//! ```text
//! header:  "GTRC" | version u16 LE | id len+bytes | seed varint |
//!          config_digest u64 LE | n varint | n × (zigzag x, zigzag y)
//! round:   0x01 | round varint | activation | moves | pending |
//!          merged varint | population varint | digest u64 LE
//!   activation: 0x00 (all)  or  0x01 | count | first | gaps…
//!   moves:      count | (robot gap varint, step byte)…   step = (dx+1)·3+(dy+1)
//!   pending:    count | (robot gap varint, step byte, delay varint)…
//! end:     0x00
//! ```
//!
//! Integers are LEB128 varints; signed values are zigzag-mapped first.
//! Index lists are sorted, so they are stored as first value + gaps.
//! The explicit `0x00` terminator makes torn files (a killed recorder)
//! distinguishable from complete ones, and the leading version makes
//! format drift a loud [`TraceError::VersionMismatch`] instead of a
//! silent misparse.
//!
//! The `pending` section is new in version 2: the moves an ASYNC
//! scheduler parked this round (look now, move `delay ≥ 1` rounds
//! later). Its step byte *does* allow the zero step — a robot in
//! flight may have decided to stay — whereas the committed move list
//! still rejects it. Version 1 streams (which predate ASYNC) are still
//! read in full; their rounds decode with empty pending lists, so
//! every committed trace keeps replaying bit-exactly.

pub mod diff;
pub mod format;
pub mod playback;
pub mod stream;
pub mod varint;

pub use diff::{diff_rounds, divergence_between, first_divergent_robot, RoundDivergence};
pub use format::{TraceError, TraceHeader, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION};
pub use playback::{Playback, PlaybackError};
pub use stream::{read_all_rounds, TraceReader, TraceWriter};

// The record types are defined next to the engine that emits them.
pub use grid_engine::{PendingMove, RobotMove, RoundRecord};

/// Digest a byte string into the u64 the header's `config_digest` field
/// carries: a fold over `grid_engine::splitmix64`, the one mixer the
/// whole workspace shares. Callers fold whatever pins their
/// configuration (scenario ID, seed, budget) into the bytes.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0x5851_f42d_4c95_7f2du64 ^ bytes.len() as u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = grid_engine::splitmix64(h ^ u64::from_le_bytes(word));
    }
    grid_engine::splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let a = digest_bytes(b"line/n16/s1/paper|seed=1");
        assert_eq!(a, digest_bytes(b"line/n16/s1/paper|seed=1"));
        assert_ne!(a, digest_bytes(b"line/n16/s1/paper|seed=2"));
        assert_ne!(digest_bytes(b""), digest_bytes(b"\0"));
    }
}
