//! LEB128 varints and the zigzag mapping for signed values — the
//! integer substrate of the trace wire format.

use std::io::{self, Read, Write};

/// Write `value` as an LEB128 varint (1 byte for values < 128, so the
/// small counts and gaps that dominate a trace cost one byte each).
pub fn write_u64(out: &mut impl Write, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// Read one LEB128 varint. Errors on EOF mid-value and on encodings
/// longer than 10 bytes (which cannot come from [`write_u64`]).
pub fn read_u64(input: &mut impl Read) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        input.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zigzag-map a signed value so small magnitudes stay small varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub fn write_i64(out: &mut impl Write, value: i64) -> io::Result<()> {
    write_u64(out, zigzag(value))
}

pub fn read_i64(input: &mut impl Read) -> io::Result<i64> {
    read_u64(input).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX, u64::MAX - 1] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert!(buf.len() <= 10);
            assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn i64_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i32::MAX as i64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v).unwrap();
            assert_eq!(read_i64(&mut buf.as_slice()).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in -1000..1000 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        for cut in 0..buf.len() {
            assert!(read_u64(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes would shift past 64 bits.
        let bad = [0xffu8; 11];
        assert!(read_u64(&mut bad.as_slice()).is_err());
    }
}
