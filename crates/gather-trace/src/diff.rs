//! Structural comparison of two round streams: find the first
//! divergence and localise it to a robot where possible.

use grid_engine::{Activation, RoundRecord};

/// The first point at which two record streams disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundDivergence {
    /// Round number of the first divergent round (the recorded round
    /// counter of whichever stream still has a record there).
    pub round: u64,
    /// First robot index the streams disagree about, when the
    /// divergence is attributable to one (activation or move mismatch);
    /// `None` for aggregate-only divergence (merged count, population,
    /// digest, or one stream ending early).
    pub robot: Option<u32>,
    /// Human-readable description of what differed.
    pub detail: String,
}

/// Compare two records of (nominally) the same round; `None` when they
/// are structurally identical.
pub fn divergence_between(a: &RoundRecord, b: &RoundRecord) -> Option<RoundDivergence> {
    (a != b).then(|| RoundDivergence {
        round: a.round,
        robot: first_divergent_robot(a, b),
        detail: divergence_detail(a, b),
    })
}

/// Compare two equally-indexed streams; `Ok(rounds)` when identical.
/// The streams are compared structurally, record by record — the same
/// notion of equality the bit-exact determinism tests use.
pub fn diff_rounds(a: &[RoundRecord], b: &[RoundRecord]) -> Result<u64, RoundDivergence> {
    for (ra, rb) in a.iter().zip(b) {
        if let Some(d) = divergence_between(ra, rb) {
            return Err(d);
        }
    }
    if a.len() != b.len() {
        let round = a.get(b.len()).or_else(|| b.get(a.len())).map_or(0, |r| r.round);
        return Err(RoundDivergence {
            round,
            robot: None,
            detail: format!("round counts differ ({} vs {})", a.len(), b.len()),
        });
    }
    Ok(a.len() as u64)
}

/// The smallest robot index two records of the same round disagree
/// about: first a robot activated in exactly one of them, then a robot
/// whose committed move differs, then a robot whose pending (in-flight)
/// move differs. `None` when the records differ only in aggregates
/// (merged/population/digest).
pub fn first_divergent_robot(a: &RoundRecord, b: &RoundRecord) -> Option<u32> {
    if let Some(robot) = first_activation_difference(&a.activated, &b.activated) {
        return Some(robot);
    }
    first_sorted_list_difference(
        &a.moves,
        &b.moves,
        |m| m.robot,
        |x, y| (x.dx, x.dy) == (y.dx, y.dy),
    )
    .or_else(|| {
        first_sorted_list_difference(
            &a.pending,
            &b.pending,
            |p| p.robot,
            |x, y| (x.dx, x.dy, x.delay) == (y.dx, y.dy, y.delay),
        )
    })
}

/// Smallest robot index where two robot-sorted lists disagree — either
/// an entry present in only one, or matching robots whose payloads
/// differ under `same`.
fn first_sorted_list_difference<T>(
    a: &[T],
    b: &[T],
    robot: impl Fn(&T) -> u32,
    same: impl Fn(&T, &T) -> bool,
) -> Option<u32> {
    let (mut ia, mut ib) = (a.iter().peekable(), b.iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (None, None) => return None,
            (Some(x), None) => return Some(robot(x)),
            (None, Some(y)) => return Some(robot(y)),
            (Some(x), Some(y)) => {
                if robot(x) != robot(y) {
                    return Some(robot(x).min(robot(y)));
                }
                if !same(x, y) {
                    return Some(robot(x));
                }
                ia.next();
                ib.next();
            }
        }
    }
}

/// Smallest index in the symmetric difference of two activation sets.
/// `All` has no explicit universe, so `All` vs a subset `{0..k-1, …}`
/// pins the first index missing from the subset.
fn first_activation_difference(a: &Activation, b: &Activation) -> Option<u32> {
    match (a, b) {
        (Activation::All, Activation::All) => None,
        (Activation::Subset(s), Activation::All) | (Activation::All, Activation::Subset(s)) => {
            // First index where the subset stops being the identity
            // prefix 0, 1, 2, …
            let first_gap =
                s.iter().enumerate().find(|&(k, &i)| k != i).map_or(s.len(), |(k, _)| k);
            Some(first_gap as u32)
        }
        (Activation::Subset(sa), Activation::Subset(sb)) => {
            let (mut ia, mut ib) = (sa.iter().peekable(), sb.iter().peekable());
            loop {
                match (ia.peek(), ib.peek()) {
                    (None, None) => return None,
                    (Some(&&x), None) | (None, Some(&&x)) => return Some(x as u32),
                    (Some(&&x), Some(&&y)) => {
                        if x != y {
                            return Some(x.min(y) as u32);
                        }
                        ia.next();
                        ib.next();
                    }
                }
            }
        }
    }
}

fn divergence_detail(a: &RoundRecord, b: &RoundRecord) -> String {
    if a.activated != b.activated {
        "activation sets differ".into()
    } else if a.moves != b.moves {
        "moves differ".into()
    } else if a.pending != b.pending {
        "pending (in-flight) moves differ".into()
    } else if a.merged != b.merged {
        format!("merge counts differ ({} vs {})", a.merged, b.merged)
    } else if a.population != b.population {
        format!("populations differ ({} vs {})", a.population, b.population)
    } else if a.digest != b.digest {
        "position digests differ".into()
    } else {
        format!("round numbers differ ({} vs {})", a.round, b.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::RobotMove;

    use grid_engine::PendingMove;

    fn rec(round: u64) -> RoundRecord {
        RoundRecord {
            round,
            activated: Activation::Subset(vec![0, 2, 5]),
            moves: vec![
                RobotMove { robot: 0, dx: 1, dy: 0 },
                RobotMove { robot: 5, dx: 0, dy: -1 },
            ],
            pending: vec![PendingMove { robot: 2, dx: 1, dy: 1, delay: 2 }],
            merged: 0,
            population: 6,
            digest: round * 7,
        }
    }

    #[test]
    fn identical_streams_report_their_length() {
        let a: Vec<RoundRecord> = (0..4).map(rec).collect();
        assert_eq!(diff_rounds(&a, &a.clone()), Ok(4));
        assert_eq!(diff_rounds(&[], &[]), Ok(0));
    }

    #[test]
    fn first_divergent_round_and_robot_are_pinned() {
        let a: Vec<RoundRecord> = (0..4).map(rec).collect();
        let mut b = a.clone();
        b[2].moves[1].dy = 1;
        let d = diff_rounds(&a, &b).unwrap_err();
        assert_eq!(d.round, 2);
        assert_eq!(d.robot, Some(5));
        assert_eq!(d.detail, "moves differ");
    }

    #[test]
    fn activation_differences_localise_the_robot() {
        let all = Activation::All;
        let sub = Activation::Subset(vec![0, 1, 3]);
        assert_eq!(first_activation_difference(&all, &sub), Some(2));
        assert_eq!(first_activation_difference(&sub, &all), Some(2));
        let prefix = Activation::Subset(vec![0, 1, 2]);
        assert_eq!(first_activation_difference(&all, &prefix), Some(3));
        let other = Activation::Subset(vec![0, 2, 3]);
        assert_eq!(first_activation_difference(&sub, &other), Some(1));
        assert_eq!(first_activation_difference(&all, &all), None);
    }

    #[test]
    fn missing_and_extra_moves_name_the_robot() {
        let a = rec(0);
        let mut b = rec(0);
        b.moves.pop();
        assert_eq!(first_divergent_robot(&a, &b), Some(5));
        let mut c = rec(0);
        c.moves.push(RobotMove { robot: 9, dx: 1, dy: 1 });
        assert_eq!(first_divergent_robot(&a, &c), Some(9));
    }

    #[test]
    fn pending_divergence_localises_the_robot() {
        let a = rec(0);
        let mut b = rec(0);
        b.pending[0].delay = 3;
        let d = divergence_between(&a, &b).unwrap();
        assert_eq!(d.robot, Some(2));
        assert_eq!(d.detail, "pending (in-flight) moves differ");
        let mut c = rec(0);
        c.pending.clear();
        assert_eq!(first_divergent_robot(&a, &c), Some(2));
    }

    #[test]
    fn length_mismatch_is_reported() {
        let a: Vec<RoundRecord> = (0..4).map(rec).collect();
        let b: Vec<RoundRecord> = (0..2).map(rec).collect();
        let d = diff_rounds(&a, &b).unwrap_err();
        assert_eq!(d.round, 2, "first round present in only one stream");
        assert!(d.detail.contains("round counts"));
    }

    #[test]
    fn aggregate_divergence_has_no_robot() {
        let a = vec![rec(0)];
        let mut b = vec![rec(0)];
        b[0].digest ^= 1;
        let d = diff_rounds(&a, &b).unwrap_err();
        assert_eq!(d.robot, None);
        assert_eq!(d.detail, "position digests differ");
    }
}
