//! Streaming trace writer/reader over any `Write`/`Read`.

use std::io::{self, Read, Write};

use grid_engine::RoundRecord;

use crate::format::{
    read_header, read_round_body, write_header, write_round, TraceError, TraceHeader, END_MARKER,
    FORMAT_VERSION, MIN_FORMAT_VERSION, ROUND_MARKER,
};

/// Streaming trace writer: header up front, one round at a time, an
/// explicit end marker on [`TraceWriter::finish`]. A file without the
/// end marker reads back as [`TraceError::Corrupt`] — that is how a
/// killed recorder is detected.
pub struct TraceWriter<W: Write> {
    out: W,
    rounds: u64,
    version: u16,
}

impl<W: Write> TraceWriter<W> {
    /// Write the header and return a writer ready for rounds. Always
    /// writes the current [`FORMAT_VERSION`].
    pub fn new(out: W, header: &TraceHeader) -> io::Result<Self> {
        Self::with_version(out, header, FORMAT_VERSION)
    }

    /// Like [`TraceWriter::new`] but emitting an older still-supported
    /// format version — for back-compat tests and for regenerating
    /// fixtures readable by older builds. Writing a round that the
    /// chosen version cannot represent (pending moves in v1) fails.
    ///
    /// # Panics
    /// Panics if `version` is outside
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`].
    pub fn with_version(mut out: W, header: &TraceHeader, version: u16) -> io::Result<Self> {
        assert!(
            (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version),
            "unsupported trace format version {version}"
        );
        write_header(&mut out, header, version)?;
        Ok(TraceWriter { out, rounds: 0, version })
    }

    pub fn write_round(&mut self, rec: &RoundRecord) -> io::Result<()> {
        write_round(&mut self.out, rec, self.version)?;
        self.rounds += 1;
        Ok(())
    }

    /// Rounds written so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Terminate the stream, flush, and hand the sink back.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(&[END_MARKER])?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming trace reader: validates the header eagerly, then yields
/// rounds one at a time.
pub struct TraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    version: u16,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Read and validate the header (magic, version) from `input`.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let (header, version) = read_header(&mut input)?;
        Ok(TraceReader { input, header, version, finished: false })
    }

    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The stream's format version (within
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`], or `new` would
    /// have refused it).
    pub fn format_version(&self) -> u16 {
        self.version
    }

    /// The next round record, or `Ok(None)` at the end marker. A stream
    /// that stops without the marker is corrupt (truncated).
    pub fn next_round(&mut self) -> Result<Option<RoundRecord>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        let mut marker = [0u8; 1];
        self.input.read_exact(&mut marker)?;
        match marker[0] {
            END_MARKER => {
                self.finished = true;
                Ok(None)
            }
            ROUND_MARKER => Ok(Some(read_round_body(&mut self.input, self.version)?)),
            other => Err(TraceError::Corrupt(format!("bad record marker {other:#x}"))),
        }
    }
}

/// Drain a reader into memory — for tests, diffing small traces, and
/// perturbation tooling. Million-robot traces should stay streamed.
pub fn read_all_rounds<R: Read>(
    reader: &mut TraceReader<R>,
) -> Result<Vec<RoundRecord>, TraceError> {
    let mut out = Vec::new();
    while let Some(rec) = reader.next_round()? {
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::{Activation, Point, RobotMove};

    fn header() -> TraceHeader {
        TraceHeader {
            scenario_id: "t".into(),
            seed: 7,
            config_digest: 9,
            initial: vec![Point::new(0, 0), Point::new(1, 0)],
        }
    }

    fn rec(round: u64) -> RoundRecord {
        RoundRecord {
            round,
            activated: Activation::Subset(vec![0]),
            moves: vec![RobotMove { robot: 0, dx: 1, dy: 0 }],
            pending: vec![],
            merged: 0,
            population: 2,
            digest: round.wrapping_mul(31),
        }
    }

    #[test]
    fn stream_round_trips() {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        for r in 0..5 {
            w.write_round(&rec(r)).unwrap();
        }
        assert_eq!(w.rounds(), 5);
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.header(), &header());
        assert_eq!(r.format_version(), crate::format::FORMAT_VERSION);
        let rounds = read_all_rounds(&mut r).unwrap();
        assert_eq!(rounds, (0..5).map(rec).collect::<Vec<_>>());
        // Idempotent after the end marker.
        assert!(r.next_round().unwrap().is_none());
    }

    #[test]
    fn v1_streams_still_read() {
        let mut w = TraceWriter::with_version(Vec::new(), &header(), 1).unwrap();
        for r in 0..3 {
            w.write_round(&rec(r)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.format_version(), 1);
        assert_eq!(read_all_rounds(&mut r).unwrap(), (0..3).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn missing_end_marker_is_corrupt() {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        w.write_round(&rec(0)).unwrap();
        // Simulate a killed recorder: take the bytes without finish().
        let bytes = {
            let TraceWriter { out, .. } = w;
            out
        };
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(r.next_round().unwrap().is_some());
        assert!(matches!(r.next_round(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        for r in 0..3 {
            w.write_round(&rec(r)).unwrap();
        }
        let bytes = w.finish().unwrap();
        for cut in 0..bytes.len() {
            let slice = &bytes[..cut];
            let outcome = TraceReader::new(slice).and_then(|mut r| read_all_rounds(&mut r));
            assert!(outcome.is_err(), "cut at {cut}/{} parsed as complete", bytes.len());
        }
    }
}
