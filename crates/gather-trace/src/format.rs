//! Header and per-round record encoding — the versioned wire format.

use std::fmt;
use std::io::{self, Read, Write};

use grid_engine::{Activation, PendingMove, Point, RobotMove, RoundRecord};

use crate::varint::{read_i64, read_u64, write_i64, write_u64};

/// The four magic bytes every trace file starts with.
pub const MAGIC: [u8; 4] = *b"GTRC";

/// Current format version. Bump on any wire-format change; readers
/// refuse versions outside [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]
/// loudly ([`TraceError::VersionMismatch`]) instead of misparsing.
///
/// Version 2 appends each round's in-flight (pending-move) state — the
/// moves an ASYNC scheduler parked between look and move — after the
/// committed move list. Version 1 streams, which predate ASYNC, are
/// still read (their rounds decode with empty pending lists).
pub const FORMAT_VERSION: u16 = 2;

/// Oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u16 = 1;

/// Everything needed to pin a trace to the run that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Stable scenario ID (`family/n<size>/s<seed>/<controller>[/sched]`
    /// for campaign traces; free-form for ad-hoc recordings).
    pub scenario_id: String,
    /// The run's seed (orientation scrambling + scheduler draws).
    pub seed: u64,
    /// Digest of the full run configuration ([`crate::digest_bytes`]
    /// over whatever the recorder considers config); replay refuses a
    /// trace whose digest does not match the reconstructed scenario.
    pub config_digest: u64,
    /// Initial robot positions, in robot order.
    pub initial: Vec<Point>,
}

/// Why a trace could not be read.
#[derive(Debug)]
pub enum TraceError {
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is outside the readable range
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`].
    VersionMismatch {
        found: u16,
    },
    /// Structurally invalid or truncated content.
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::VersionMismatch { found } => {
                write!(
                    f,
                    "trace format version {found} (this build reads \
                     {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            TraceError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        // EOF mid-structure is truncation, a structural defect.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Corrupt("truncated (unexpected end of file)".into())
        } else {
            TraceError::Io(e)
        }
    }
}

pub(crate) fn write_header(
    out: &mut impl Write,
    header: &TraceHeader,
    version: u16,
) -> io::Result<()> {
    debug_assert!((MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version));
    out.write_all(&MAGIC)?;
    out.write_all(&version.to_le_bytes())?;
    write_u64(out, header.scenario_id.len() as u64)?;
    out.write_all(header.scenario_id.as_bytes())?;
    write_u64(out, header.seed)?;
    out.write_all(&header.config_digest.to_le_bytes())?;
    write_u64(out, header.initial.len() as u64)?;
    for p in &header.initial {
        write_i64(out, i64::from(p.x))?;
        write_i64(out, i64::from(p.y))?;
    }
    Ok(())
}

/// Read the header *and* the stream's format version — round bodies are
/// version-dependent, so the caller must thread the version through to
/// [`read_round_body`].
pub(crate) fn read_header(input: &mut impl Read) -> Result<(TraceHeader, u16), TraceError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let mut version = [0u8; 2];
    input.read_exact(&mut version)?;
    let version = u16::from_le_bytes(version);
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(TraceError::VersionMismatch { found: version });
    }
    let id_len = read_u64(input)? as usize;
    if id_len > 1 << 20 {
        return Err(TraceError::Corrupt(format!("implausible scenario-ID length {id_len}")));
    }
    let mut id = vec![0u8; id_len];
    input.read_exact(&mut id)?;
    let scenario_id = String::from_utf8(id)
        .map_err(|_| TraceError::Corrupt("scenario ID is not UTF-8".into()))?;
    let seed = read_u64(input)?;
    let mut digest = [0u8; 8];
    input.read_exact(&mut digest)?;
    let config_digest = u64::from_le_bytes(digest);
    let n = read_u64(input)? as usize;
    if n == 0 {
        return Err(TraceError::Corrupt("empty swarm (a trace records at least one robot)".into()));
    }
    if n > 1 << 28 {
        return Err(TraceError::Corrupt(format!("implausible swarm size {n}")));
    }
    let mut initial = Vec::with_capacity(prealloc(n));
    for _ in 0..n {
        let x = coord(read_i64(input)?, "initial x")?;
        let y = coord(read_i64(input)?, "initial y")?;
        initial.push(Point::new(x, y));
    }
    // Duplicate start cells violate the swarm model; rejecting them
    // here keeps downstream playback (which builds a real `Swarm`) on
    // its documented panic-free Err path for corrupt files.
    let mut seen = std::collections::BTreeSet::new();
    for p in &initial {
        if !seen.insert(*p) {
            return Err(TraceError::Corrupt(format!("duplicate initial position {p:?}")));
        }
    }
    Ok((TraceHeader { scenario_id, seed, config_digest, initial }, version))
}

/// Pre-allocation cap for length-prefixed lists: a corrupt length field
/// must cost at most a small constant before truncation is detected,
/// not a multi-gigabyte `Vec::with_capacity` — genuine lists grow past
/// the cap organically while being read.
fn prealloc(count: usize) -> usize {
    count.min(4096)
}

fn coord(v: i64, what: &str) -> Result<i32, TraceError> {
    i32::try_from(v).map_err(|_| TraceError::Corrupt(format!("{what} {v} out of i32 range")))
}

/// Marker byte introducing a round record.
pub(crate) const ROUND_MARKER: u8 = 0x01;
/// Marker byte terminating the round stream.
pub(crate) const END_MARKER: u8 = 0x00;

const ACTIVATION_ALL: u8 = 0x00;
const ACTIVATION_SUBSET: u8 = 0x01;

pub(crate) fn write_round(out: &mut impl Write, rec: &RoundRecord, version: u16) -> io::Result<()> {
    if version < 2 && !rec.pending.is_empty() {
        // A v1 stream has nowhere to put in-flight state; dropping it
        // silently would record a trace that replays to different
        // in-flight reconstruction, so refuse loudly.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "round carries pending moves, which format v1 cannot encode",
        ));
    }
    out.write_all(&[ROUND_MARKER])?;
    write_u64(out, rec.round)?;
    match &rec.activated {
        Activation::All => out.write_all(&[ACTIVATION_ALL])?,
        Activation::Subset(idx) => {
            debug_assert!(idx.windows(2).all(|w| w[0] < w[1]), "activation set must be sorted");
            out.write_all(&[ACTIVATION_SUBSET])?;
            write_u64(out, idx.len() as u64)?;
            let mut prev = 0u64;
            for (k, &i) in idx.iter().enumerate() {
                let i = i as u64;
                write_u64(out, if k == 0 { i } else { i - prev })?;
                prev = i;
            }
        }
    }
    debug_assert!(rec.moves.windows(2).all(|w| w[0].robot < w[1].robot), "moves must be sorted");
    write_u64(out, rec.moves.len() as u64)?;
    let mut prev = 0u64;
    for (k, m) in rec.moves.iter().enumerate() {
        let i = u64::from(m.robot);
        write_u64(out, if k == 0 { i } else { i - prev })?;
        prev = i;
        out.write_all(&[step_byte(m.dx, m.dy)])?;
    }
    if version >= 2 {
        debug_assert!(
            rec.pending.windows(2).all(|w| w[0].robot < w[1].robot),
            "pending list must be sorted"
        );
        write_u64(out, rec.pending.len() as u64)?;
        let mut prev = 0u64;
        for (k, p) in rec.pending.iter().enumerate() {
            debug_assert!(p.delay >= 1, "a pending move is due at least one round out");
            let i = u64::from(p.robot);
            write_u64(out, if k == 0 { i } else { i - prev })?;
            prev = i;
            out.write_all(&[pending_step_byte(p.dx, p.dy)])?;
            write_u64(out, u64::from(p.delay))?;
        }
    }
    write_u64(out, u64::from(rec.merged))?;
    write_u64(out, u64::from(rec.population))?;
    out.write_all(&rec.digest.to_le_bytes())
}

/// Read the record that follows an already-consumed [`ROUND_MARKER`],
/// laid out according to `version` (v1 bodies carry no pending section
/// and decode with `pending = []`).
pub(crate) fn read_round_body(
    input: &mut impl Read,
    version: u16,
) -> Result<RoundRecord, TraceError> {
    let round = read_u64(input)?;
    let mut tag = [0u8; 1];
    input.read_exact(&mut tag)?;
    let activated = match tag[0] {
        ACTIVATION_ALL => Activation::All,
        ACTIVATION_SUBSET => {
            let count = checked_len(read_u64(input)?, "activation count")?;
            let mut decoder = SortedIndexDecoder::new("activation set");
            let mut idx = Vec::with_capacity(prealloc(count));
            for _ in 0..count {
                let i = decoder.next(input)?;
                idx.push(usize::try_from(i).map_err(|_| overflow())?);
            }
            Activation::Subset(idx)
        }
        other => return Err(TraceError::Corrupt(format!("bad activation tag {other:#x}"))),
    };
    let count = checked_len(read_u64(input)?, "move count")?;
    let mut decoder = SortedIndexDecoder::new("move list");
    let mut moves = Vec::with_capacity(prealloc(count));
    for _ in 0..count {
        let robot = u32::try_from(decoder.next(input)?).map_err(|_| overflow())?;
        let mut step = [0u8; 1];
        input.read_exact(&mut step)?;
        let (dx, dy) = unstep_byte(step[0])?;
        moves.push(RobotMove { robot, dx, dy });
    }
    let mut pending = Vec::new();
    if version >= 2 {
        let count = checked_len(read_u64(input)?, "pending count")?;
        let mut decoder = SortedIndexDecoder::new("pending list");
        pending.reserve(prealloc(count));
        for _ in 0..count {
            let robot = u32::try_from(decoder.next(input)?).map_err(|_| overflow())?;
            let mut step = [0u8; 1];
            input.read_exact(&mut step)?;
            let (dx, dy) = unpending_step_byte(step[0])?;
            let delay = u32::try_from(read_u64(input)?)
                .map_err(|_| TraceError::Corrupt("pending delay > u32".into()))?;
            if delay == 0 {
                return Err(TraceError::Corrupt(
                    "pending move with zero delay (delay-0 looks commit as moves)".into(),
                ));
            }
            pending.push(PendingMove { robot, dx, dy, delay });
        }
    }
    let merged =
        u32::try_from(read_u64(input)?).map_err(|_| TraceError::Corrupt("merged > u32".into()))?;
    let population = u32::try_from(read_u64(input)?)
        .map_err(|_| TraceError::Corrupt("population > u32".into()))?;
    let mut digest = [0u8; 8];
    input.read_exact(&mut digest)?;
    Ok(RoundRecord {
        round,
        activated,
        moves,
        pending,
        merged,
        population,
        digest: u64::from_le_bytes(digest),
    })
}

/// Decoder for a strictly-sorted index list stored as first value +
/// gaps — the one place the sortedness and overflow rules live for
/// both the activation set and the move list. Call [`Self::next`]
/// exactly once per encoded index, in order.
struct SortedIndexDecoder {
    what: &'static str,
    prev: u64,
    first: bool,
}

impl SortedIndexDecoder {
    fn new(what: &'static str) -> Self {
        SortedIndexDecoder { what, prev: 0, first: true }
    }

    fn next(&mut self, input: &mut impl Read) -> Result<u64, TraceError> {
        let gap = read_u64(input)?;
        let i = if self.first {
            self.first = false;
            gap
        } else {
            if gap == 0 {
                return Err(TraceError::Corrupt(format!("{} not strictly sorted", self.what)));
            }
            self.prev.checked_add(gap).ok_or_else(overflow)?
        };
        self.prev = i;
        Ok(i)
    }
}

fn overflow() -> TraceError {
    TraceError::Corrupt("index overflow".into())
}

fn checked_len(v: u64, what: &str) -> Result<usize, TraceError> {
    if v > 1 << 28 {
        return Err(TraceError::Corrupt(format!("implausible {what} {v}")));
    }
    Ok(v as usize)
}

/// Pack a non-zero king step into one byte: `(dx+1)·3 + (dy+1)`.
fn step_byte(dx: i8, dy: i8) -> u8 {
    debug_assert!((-1..=1).contains(&dx) && (-1..=1).contains(&dy) && (dx, dy) != (0, 0));
    ((dx + 1) * 3 + (dy + 1)) as u8
}

fn unstep_byte(b: u8) -> Result<(i8, i8), TraceError> {
    if b > 8 || b == 4 {
        return Err(TraceError::Corrupt(format!("bad step byte {b:#x}")));
    }
    Ok(((b / 3) as i8 - 1, (b % 3) as i8 - 1))
}

/// Pack a pending king step into one byte — same layout as
/// [`step_byte`], but byte 4 (the zero step) is legal: a robot in
/// flight may well have decided to stay, and stays in flight until its
/// empty move falls due.
fn pending_step_byte(dx: i8, dy: i8) -> u8 {
    debug_assert!((-1..=1).contains(&dx) && (-1..=1).contains(&dy));
    ((dx + 1) * 3 + (dy + 1)) as u8
}

fn unpending_step_byte(b: u8) -> Result<(i8, i8), TraceError> {
    if b > 8 {
        return Err(TraceError::Corrupt(format!("bad pending step byte {b:#x}")));
    }
    Ok(((b / 3) as i8 - 1, (b % 3) as i8 - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            scenario_id: "line/n16/s1/paper".into(),
            seed: u64::MAX - 3,
            config_digest: 0xdead_beef_cafe_f00d,
            initial: vec![Point::new(-5, 3), Point::new(0, 0), Point::new(1_000_000, -7)],
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        for version in [1u16, 2] {
            let mut buf = Vec::new();
            write_header(&mut buf, &h, version).unwrap();
            assert_eq!(read_header(&mut buf.as_slice()).unwrap(), (h.clone(), version));
        }
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_header(&mut buf, &header(), FORMAT_VERSION).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_header(&mut bad.as_slice()), Err(TraceError::BadMagic)));
        let mut bumped = buf.clone();
        bumped[4] = 0x7f; // version low byte
        assert!(matches!(
            read_header(&mut bumped.as_slice()),
            Err(TraceError::VersionMismatch { found: 0x7f })
        ));
        let mut zeroed = buf.clone();
        zeroed[4] = 0x00;
        assert!(
            matches!(
                read_header(&mut zeroed.as_slice()),
                Err(TraceError::VersionMismatch { found: 0 })
            ),
            "version 0 predates the format and must not parse"
        );
    }

    #[test]
    fn header_truncations_are_corrupt() {
        let mut buf = Vec::new();
        write_header(&mut buf, &header(), FORMAT_VERSION).unwrap();
        for cut in [3, 5, 8, buf.len() - 1] {
            match read_header(&mut &buf[..cut]) {
                Err(TraceError::Corrupt(_)) | Err(TraceError::BadMagic) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn round_round_trips() {
        let recs = [
            RoundRecord {
                round: 0,
                activated: Activation::All,
                moves: vec![],
                pending: vec![],
                merged: 0,
                population: 9,
                digest: 1,
            },
            RoundRecord {
                round: 300,
                activated: Activation::Subset(vec![0, 2, 3, 17]),
                moves: vec![
                    RobotMove { robot: 0, dx: -1, dy: -1 },
                    RobotMove { robot: 3, dx: 1, dy: 0 },
                    RobotMove { robot: 17, dx: 0, dy: 1 },
                ],
                // An ASYNC round: robot 2 parked a real step, robot 17
                // also committed a stale move this round while a fresh
                // zero-step look goes in flight.
                pending: vec![
                    PendingMove { robot: 2, dx: 1, dy: 1, delay: 3 },
                    PendingMove { robot: 17, dx: 0, dy: 0, delay: 1 },
                ],
                merged: 2,
                population: 40,
                digest: u64::MAX,
            },
            RoundRecord {
                // Everyone in flight: the empty look set is a legal
                // ASYNC activation and must survive the wire.
                round: 301,
                activated: Activation::Subset(vec![]),
                moves: vec![],
                pending: vec![],
                merged: 0,
                population: 40,
                digest: 17,
            },
        ];
        for rec in &recs {
            let mut buf = Vec::new();
            write_round(&mut buf, rec, FORMAT_VERSION).unwrap();
            assert_eq!(buf[0], ROUND_MARKER);
            let got = read_round_body(&mut &buf[1..], FORMAT_VERSION).unwrap();
            assert_eq!(&got, rec);
        }
    }

    #[test]
    fn v1_rounds_decode_without_pending_and_refuse_to_encode_it() {
        let rec = RoundRecord {
            round: 5,
            activated: Activation::All,
            moves: vec![RobotMove { robot: 1, dx: 1, dy: 0 }],
            pending: vec![],
            merged: 0,
            population: 3,
            digest: 99,
        };
        let mut buf = Vec::new();
        write_round(&mut buf, &rec, 1).unwrap();
        assert_eq!(read_round_body(&mut &buf[1..], 1).unwrap(), rec);
        let mut with_pending = rec.clone();
        with_pending.pending.push(PendingMove { robot: 2, dx: 0, dy: 1, delay: 2 });
        let err = write_round(&mut Vec::new(), &with_pending, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn pending_rejects_zero_delay_and_bad_step() {
        let rec = RoundRecord {
            round: 0,
            activated: Activation::All,
            moves: vec![],
            pending: vec![PendingMove { robot: 0, dx: 0, dy: 0, delay: 1 }],
            merged: 0,
            population: 1,
            digest: 0,
        };
        let mut buf = Vec::new();
        write_round(&mut buf, &rec, FORMAT_VERSION).unwrap();
        // The pending entry is the last three fields before the three
        // aggregate tail fields; corrupt its delay varint (1 → 0).
        let delay_pos = buf.len() - 1 - 8 - 1 - 1; // digest, population, merged varints
        assert_eq!(buf[delay_pos], 1);
        let mut zero_delay = buf.clone();
        zero_delay[delay_pos] = 0;
        assert!(matches!(
            read_round_body(&mut &zero_delay[1..], FORMAT_VERSION),
            Err(TraceError::Corrupt(why)) if why.contains("zero delay")
        ));
        let mut bad_step = buf.clone();
        bad_step[delay_pos - 1] = 9; // step byte just past the king range
        assert!(matches!(
            read_round_body(&mut &bad_step[1..], FORMAT_VERSION),
            Err(TraceError::Corrupt(why)) if why.contains("pending step")
        ));
    }

    #[test]
    fn step_bytes_cover_the_eight_king_moves() {
        let mut seen = std::collections::BTreeSet::new();
        for dx in -1i8..=1 {
            for dy in -1i8..=1 {
                if (dx, dy) == (0, 0) {
                    continue;
                }
                let b = step_byte(dx, dy);
                assert_eq!(unstep_byte(b).unwrap(), (dx, dy));
                seen.insert(b);
            }
        }
        assert_eq!(seen.len(), 8);
        assert!(unstep_byte(4).is_err(), "the zero step is not encodable");
        assert!(unstep_byte(9).is_err());
        assert_eq!(unpending_step_byte(4).unwrap(), (0, 0), "pending steps allow the stay");
        assert_eq!(pending_step_byte(0, 0), 4);
        assert!(unpending_step_byte(9).is_err());
    }
}
