//! Re-derive a swarm's evolution from a record stream alone.
//!
//! A trace stores *moves*, not controller decisions, so playback needs
//! no controller, no views, and no scheduler: it applies each round's
//! moves to a positions-only [`Swarm`] through the engine's own
//! simultaneous-move + merge semantics (the survivor rule lives in one
//! place, [`Swarm::apply_partial`], so playback cannot drift from the
//! engine), then verifies the recorded population and position digest.
//! Pending (in-flight) moves from ASYNC traces are deliberately
//! ignored: they do not touch positions until they commit, at which
//! point they appear in that round's move list like any other move.

use std::fmt;

use grid_engine::{Action, OrientationMode, Point, RoundRecord, Swarm, V2};

/// Where a record stream stopped being replayable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlaybackError {
    /// A move names a robot index the current swarm does not have, or a
    /// zero step (which the recorder never emits).
    BadMove { round: u64, robot: u32 },
    /// Applying the round's moves left a different population than the
    /// record claims.
    Population { round: u64, recorded: u32, derived: u32 },
    /// Positions after the round do not hash to the recorded digest.
    Digest { round: u64 },
}

impl fmt::Display for PlaybackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaybackError::BadMove { round, robot } => {
                write!(f, "round {round}: invalid move for robot {robot}")
            }
            PlaybackError::Population { round, recorded, derived } => write!(
                f,
                "round {round}: population diverged (recorded {recorded}, derived {derived})"
            ),
            PlaybackError::Digest { round } => {
                write!(f, "round {round}: position digest diverged")
            }
        }
    }
}

impl std::error::Error for PlaybackError {}

/// A positions-only swarm stepped forward by [`RoundRecord`]s.
pub struct Playback {
    swarm: Swarm<()>,
    rounds_applied: u64,
}

impl Playback {
    /// Start from the trace header's initial positions.
    ///
    /// # Panics
    /// Panics if `initial` is empty or contains duplicates (like
    /// [`Swarm::new`], whose invariants these are).
    pub fn new(initial: &[Point]) -> Self {
        // Aligned orientations make recorded world-frame steps apply
        // verbatim.
        Playback { swarm: Swarm::new(initial, OrientationMode::Aligned), rounds_applied: 0 }
    }

    pub fn swarm(&self) -> &Swarm<()> {
        &self.swarm
    }

    /// Rounds applied so far.
    pub fn rounds_applied(&self) -> u64 {
        self.rounds_applied
    }

    /// Apply one recorded round and verify its population and digest.
    pub fn apply(&mut self, rec: &RoundRecord) -> Result<(), PlaybackError> {
        let n = self.swarm.len();
        let mut actions: Vec<Option<Action<()>>> = (0..n).map(|_| None).collect();
        for m in &rec.moves {
            let step = V2::new(i32::from(m.dx), i32::from(m.dy));
            let slot = actions
                .get_mut(m.robot as usize)
                .ok_or(PlaybackError::BadMove { round: rec.round, robot: m.robot })?;
            if step == V2::ZERO {
                return Err(PlaybackError::BadMove { round: rec.round, robot: m.robot });
            }
            *slot = Some(Action { step, state: () });
        }
        self.swarm.apply_partial(actions);
        self.rounds_applied += 1;
        let derived = self.swarm.len() as u32;
        if derived != rec.population {
            return Err(PlaybackError::Population {
                round: rec.round,
                recorded: rec.population,
                derived,
            });
        }
        if self.swarm.position_digest() != rec.digest {
            return Err(PlaybackError::Digest { round: rec.round });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::{Activation, RobotMove};

    fn record_of(swarm: &Swarm<()>, round: u64, moves: Vec<RobotMove>, merged: u32) -> RoundRecord {
        RoundRecord {
            round,
            activated: Activation::All,
            moves,
            pending: vec![],
            merged,
            population: swarm.len() as u32,
            digest: swarm.position_digest(),
        }
    }

    #[test]
    fn playback_reproduces_moves_and_merges() {
        // Expected evolution, computed with the same Swarm semantics.
        let pts = [Point::new(0, 0), Point::new(1, 0), Point::new(2, 0)];
        let mut expect: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        expect.apply(vec![Action { step: V2::E, state: () }, Action::stay(()), Action::stay(())]);
        let rec = record_of(&expect, 0, vec![RobotMove { robot: 0, dx: 1, dy: 0 }], 1);

        let mut pb = Playback::new(&pts);
        pb.apply(&rec).unwrap();
        assert_eq!(pb.swarm().len(), 2);
        assert_eq!(pb.swarm().position_digest(), expect.position_digest());
        assert_eq!(pb.rounds_applied(), 1);
    }

    #[test]
    fn playback_flags_digest_divergence() {
        let pts = [Point::new(0, 0), Point::new(1, 0)];
        let mut pb = Playback::new(&pts);
        let bad = RoundRecord {
            round: 3,
            activated: Activation::All,
            moves: vec![],
            pending: vec![],
            merged: 0,
            population: 2,
            digest: 0xbad,
        };
        assert_eq!(pb.apply(&bad), Err(PlaybackError::Digest { round: 3 }));
    }

    #[test]
    fn playback_flags_population_divergence_and_bad_moves() {
        let pts = [Point::new(0, 0), Point::new(1, 0)];
        let mut pb = Playback::new(&pts);
        let rec = RoundRecord {
            round: 0,
            activated: Activation::All,
            moves: vec![],
            pending: vec![],
            merged: 1,
            population: 1, // nothing moved, so nothing merged
            digest: 0,
        };
        assert!(matches!(
            pb.apply(&rec),
            Err(PlaybackError::Population { round: 0, recorded: 1, derived: 2 })
        ));

        let mut pb = Playback::new(&pts);
        let rec = RoundRecord {
            round: 1,
            activated: Activation::All,
            moves: vec![RobotMove { robot: 9, dx: 1, dy: 0 }],
            pending: vec![],
            merged: 0,
            population: 2,
            digest: 0,
        };
        assert_eq!(pb.apply(&rec), Err(PlaybackError::BadMove { round: 1, robot: 9 }));
    }
}
