//! Property tests for the wire format: arbitrary round streams encode
//! to bytes and decode back to identical streams, and truncating the
//! bytes anywhere never yields a silently-complete trace.

use gather_trace::{read_all_rounds, TraceHeader, TraceReader, TraceWriter};
use grid_engine::{Activation, Point, RobotMove, RoundRecord};
use proptest::prelude::*;

/// A strategy for one well-formed round record: sorted strictly
/// increasing index lists, non-zero king steps, arbitrary aggregates.
fn round_strategy() -> impl Strategy<Value = RoundRecord> {
    (
        any::<u64>(),                                            // round
        prop::collection::btree_set(0usize..500, 0..24),         // activation subset
        prop::bool::ANY,                                         // use All instead
        prop::collection::btree_set((0u32..500, 0u8..8), 0..24), // moves (robot, step index)
        any::<u32>(),                                            // merged
        any::<u32>(),                                            // population
        any::<u64>(),                                            // digest
    )
        .prop_map(|(round, subset, all, moves, merged, population, digest)| {
            let activated = if all || subset.is_empty() {
                Activation::All
            } else {
                Activation::Subset(subset.into_iter().collect())
            };
            // BTreeSet keys are (robot, step): dedupe robots, keeping one
            // step each, so the move list is strictly sorted by robot.
            let mut moves: Vec<RobotMove> = moves
                .into_iter()
                .map(|(robot, s)| {
                    let s = if s >= 4 { s + 1 } else { s }; // skip the zero step
                    RobotMove { robot, dx: (s / 3) as i8 - 1, dy: (s % 3) as i8 - 1 }
                })
                .collect();
            moves.dedup_by_key(|m| m.robot);
            RoundRecord { round, activated, moves, merged, population, digest }
        })
}

fn header_strategy() -> impl Strategy<Value = TraceHeader> {
    (
        prop::collection::vec(0u8..128, 0..40),
        any::<u64>(),
        any::<u64>(),
        prop::collection::btree_set((-2000i32..2000, -2000i32..2000), 1..40),
    )
        .prop_map(|(id, seed, config_digest, cells)| TraceHeader {
            scenario_id: String::from_utf8(id).expect("ascii"),
            seed,
            config_digest,
            initial: cells.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_streams_round_trip(
        header in header_strategy(),
        rounds in prop::collection::vec(round_strategy(), 0..20),
    ) {
        let mut w = TraceWriter::new(Vec::new(), &header).expect("write to memory");
        for rec in &rounds {
            w.write_round(rec).expect("write to memory");
        }
        let bytes = w.finish().expect("finish to memory");

        let mut r = TraceReader::new(bytes.as_slice()).expect("read back");
        prop_assert_eq!(r.header(), &header);
        let decoded = read_all_rounds(&mut r).expect("decode");
        prop_assert_eq!(decoded, rounds);
    }

    #[test]
    fn encoding_is_deterministic(
        header in header_strategy(),
        rounds in prop::collection::vec(round_strategy(), 0..12),
    ) {
        let encode = || {
            let mut w = TraceWriter::new(Vec::new(), &header).expect("write");
            for rec in &rounds {
                w.write_round(rec).expect("write");
            }
            w.finish().expect("finish")
        };
        prop_assert_eq!(encode(), encode());
    }

    #[test]
    fn truncation_never_parses_as_complete(
        header in header_strategy(),
        rounds in prop::collection::vec(round_strategy(), 1..6),
        frac in 0u32..1000,
    ) {
        let mut w = TraceWriter::new(Vec::new(), &header).expect("write");
        for rec in &rounds {
            w.write_round(rec).expect("write");
        }
        let bytes = w.finish().expect("finish");
        let cut = (bytes.len() - 1) as u64 * u64::from(frac) / 1000;
        let slice = &bytes[..cut as usize];
        let outcome = TraceReader::new(slice).and_then(|mut r| read_all_rounds(&mut r));
        prop_assert!(outcome.is_err(), "cut at {} of {} parsed", cut, bytes.len());
    }
}
