//! Property tests for the wire format: arbitrary round streams encode
//! to bytes and decode back to identical streams, and truncating the
//! bytes anywhere never yields a silently-complete trace.

use gather_trace::{read_all_rounds, Playback, TraceHeader, TraceReader, TraceWriter};
use grid_engine::{Activation, PendingMove, Point, RobotMove, RoundRecord};
use proptest::prelude::*;

/// A strategy for one well-formed round record: sorted strictly
/// increasing index lists, non-zero king steps for committed moves
/// (zero allowed for pending ones), arbitrary aggregates. With
/// `pending_allowed = false` the record is valid v1 content.
fn round_strategy(pending_allowed: bool) -> impl Strategy<Value = RoundRecord> {
    let pending_len = if pending_allowed { 0..16usize } else { 0..1usize };
    (
        any::<u64>(),                                                           // round
        prop::collection::btree_set(0usize..500, 0..24),                        // activation subset
        prop::bool::ANY,                                                        // use All instead
        prop::collection::btree_set((0u32..500, 0u8..8), 0..24), // moves (robot, step index)
        prop::collection::btree_set((0u32..500, 0u8..9, 1u32..9), pending_len), // pending
        any::<u32>(),                                            // merged
        any::<u32>(),                                            // population
        any::<u64>(),                                            // digest
    )
        .prop_map(|(round, subset, all, moves, pending, merged, population, digest)| {
            // Under ASYNC an empty Subset is a legal activation (every
            // robot in flight), so only the `all` flag picks All.
            let activated = if all {
                Activation::All
            } else {
                Activation::Subset(subset.into_iter().collect())
            };
            // BTreeSet keys are (robot, step): dedupe robots, keeping one
            // step each, so the move list is strictly sorted by robot.
            let mut moves: Vec<RobotMove> = moves
                .into_iter()
                .map(|(robot, s)| {
                    let s = if s >= 4 { s + 1 } else { s }; // skip the zero step
                    RobotMove { robot, dx: (s / 3) as i8 - 1, dy: (s % 3) as i8 - 1 }
                })
                .collect();
            moves.dedup_by_key(|m| m.robot);
            let mut pending: Vec<PendingMove> = pending
                .into_iter()
                .map(|(robot, s, delay)| {
                    // All nine king steps, the zero step included.
                    PendingMove { robot, dx: (s / 3) as i8 - 1, dy: (s % 3) as i8 - 1, delay }
                })
                .collect();
            pending.dedup_by_key(|p| p.robot);
            RoundRecord { round, activated, moves, pending, merged, population, digest }
        })
}

fn header_strategy() -> impl Strategy<Value = TraceHeader> {
    (
        prop::collection::vec(0u8..128, 0..40),
        any::<u64>(),
        any::<u64>(),
        prop::collection::btree_set((-2000i32..2000, -2000i32..2000), 1..40),
    )
        .prop_map(|(id, seed, config_digest, cells)| TraceHeader {
            scenario_id: String::from_utf8(id).expect("ascii"),
            seed,
            config_digest,
            initial: cells.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_streams_round_trip(
        header in header_strategy(),
        rounds in prop::collection::vec(round_strategy(true), 0..20),
    ) {
        let mut w = TraceWriter::new(Vec::new(), &header).expect("write to memory");
        for rec in &rounds {
            w.write_round(rec).expect("write to memory");
        }
        let bytes = w.finish().expect("finish to memory");

        let mut r = TraceReader::new(bytes.as_slice()).expect("read back");
        prop_assert_eq!(r.header(), &header);
        let decoded = read_all_rounds(&mut r).expect("decode");
        prop_assert_eq!(decoded, rounds);
    }

    #[test]
    fn encoding_is_deterministic(
        header in header_strategy(),
        rounds in prop::collection::vec(round_strategy(true), 0..12),
    ) {
        let encode = || {
            let mut w = TraceWriter::new(Vec::new(), &header).expect("write");
            for rec in &rounds {
                w.write_round(rec).expect("write");
            }
            w.finish().expect("finish")
        };
        prop_assert_eq!(encode(), encode());
    }

    /// Back-compat: any valid v1 stream decodes through the v2 reader
    /// to the same records the v2 encoding of that stream does — and
    /// playing either back from the same header yields bit-identical
    /// outcomes (the same per-round digests up to the same first error,
    /// if any). Committed traces therefore keep replaying across the
    /// format bump.
    #[test]
    fn v2_reader_accepts_v1_streams_with_identical_playback(
        header in header_strategy(),
        rounds in prop::collection::vec(round_strategy(false), 0..20),
    ) {
        let encode = |version: u16| {
            let mut w = TraceWriter::with_version(Vec::new(), &header, version).expect("write");
            for rec in &rounds {
                w.write_round(rec).expect("write");
            }
            w.finish().expect("finish")
        };
        let decode = |bytes: &[u8], version: u16| {
            let mut r = TraceReader::new(bytes).expect("read back");
            prop_assert_eq!(r.format_version(), version);
            prop_assert_eq!(r.header(), &header);
            Ok(read_all_rounds(&mut r).expect("decode"))
        };
        let v1 = decode(&encode(1), 1)?;
        let v2 = decode(&encode(2), 2)?;
        prop_assert_eq!(&v1, &rounds, "v1 stream decoded differently");
        prop_assert_eq!(&v1, &v2, "v1 and v2 decode of the same rounds diverge");
        // Same playback evolution: identical digests round by round,
        // stopping at the same first error (arbitrary aggregates make
        // early errors likely — what matters is that both formats
        // reproduce the *same* trajectory).
        let playback = |recs: &[RoundRecord]| {
            let mut pb = Playback::new(&header.initial);
            let mut digests = Vec::new();
            let mut first_err = None;
            for rec in recs {
                match pb.apply(rec) {
                    Ok(()) => digests.push(pb.swarm().position_digest()),
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            (digests, first_err)
        };
        prop_assert_eq!(playback(&v1), playback(&v2), "playback diverged across versions");
    }

    #[test]
    fn truncation_never_parses_as_complete(
        header in header_strategy(),
        rounds in prop::collection::vec(round_strategy(true), 1..6),
        frac in 0u32..1000,
    ) {
        let mut w = TraceWriter::new(Vec::new(), &header).expect("write");
        for rec in &rounds {
            w.write_round(rec).expect("write");
        }
        let bytes = w.finish().expect("finish");
        let cut = (bytes.len() - 1) as u64 * u64::from(frac) / 1000;
        let slice = &bytes[..cut as usize];
        let outcome = TraceReader::new(slice).and_then(|mut r| read_all_rounds(&mut r));
        prop_assert!(outcome.is_err(), "cut at {} of {} parsed", cut, bytes.len());
    }
}
