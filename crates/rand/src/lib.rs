//! Minimal, dependency-free stand-in for the subset of the `rand` 0.9
//! API this workspace uses (`StdRng`, `SeedableRng`, `Rng::random_range`,
//! `seq::IndexedRandom::choose`). The build runs with no network and no
//! registry cache, so the real crate cannot be fetched; this keeps the
//! workload generators' source unchanged.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! fully determined by the seed, which is the only property the
//! workspace relies on (all experiment generators are seeded); the
//! streams do *not* match the real `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Seed a generator from a `u64` (the only constructor the workspace
/// uses from the real trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw-output half of the real crate's RNG traits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented like the real
/// `Rng: RngCore` extension trait.
pub trait Rng: RngCore {
    /// Sample uniformly from a range. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// xoshiro256++ — small, fast, and good enough for workload generation.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as the xoshiro authors recommend.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Re-export location matching `rand::rngs::StdRng`.
pub mod rngs {
    pub use crate::StdRng;
}

/// The slice-sampling extension trait (`rand::seq::IndexedRandom`).
pub mod seq {
    use crate::RngCore;

    pub trait IndexedRandom<T> {
        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::IndexedRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
        }
        // Both endpoints of a small inclusive range are reachable.
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[rng.random_range(0usize..=1)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
