//! Property tests for the audit lexer: it must never panic on any
//! input (it runs over every file in the workspace, including broken
//! work-in-progress ones), its tokens must faithfully slice the
//! source, and hazards quoted inside strings or comments must stay
//! invisible to every rule.

use gather_audit::lexer::{lex, TokenKind};
use gather_audit::{audit_source, RULE_NAMES};
use proptest::prelude::*;

const HAZARDS: [&str; 8] = [
    "Instant::now()",
    "SystemTime::now()",
    "thread_rng()",
    "SmallRng::from_entropy()",
    "map.values()",
    "x.unwrap()",
    "unsafe { *p }",
    "todo!()",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary (lossy-decoded) byte soup never panics the lexer, and
    /// every token is an exact, in-order, non-overlapping slice of the
    /// source.
    #[test]
    fn lexer_never_panics_and_tokens_slice_the_source(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= cursor, "tokens out of order at byte {}", t.start);
            prop_assert_eq!(&src[t.start..t.end()], t.text);
            cursor = t.end();
        }
        prop_assert!(cursor <= src.len());
    }

    /// Pathological nesting of quote/comment openers never panics and
    /// never produces an identifier token spelling a hazard name.
    #[test]
    fn quote_soup_never_leaks_hazard_idents(parts in prop::collection::vec(0usize..6usize, 0..48)) {
        const OPENERS: [&str; 6] = ["\"", "r#\"", "/*", "//", "'", "b\""];
        let mut src = String::from("Instant thread_rng unwrap ");
        for i in parts {
            src.push_str(OPENERS[i]);
            src.push_str(" Instant::now() ");
        }
        let tokens = lex(&src);
        // The three leading idents are real code; everything after the
        // first opener is swallowed by a string/comment/char token.
        let idents = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == "Instant")
            .count();
        prop_assert!(idents >= 1, "the leading code ident must survive");
    }

    /// A hazard embedded in a string literal or comment yields zero
    /// diagnostics from every rule, in the strictest scope we have
    /// (grid-engine library code).
    #[test]
    fn quoted_hazards_yield_no_diagnostics(which in 0usize..8usize, style in 0usize..3usize) {
        let hazard = HAZARDS[which];
        let src = match style {
            0 => format!("fn f() -> &'static str {{\n    \"{}\"\n}}\n", hazard.replace('"', "\\\"")),
            1 => format!("fn f() {{\n    // {hazard}\n}}\n"),
            _ => format!("fn f() {{\n    /* {hazard} */\n}}\n"),
        };
        let audit = audit_source("crates/grid-engine/src/fixture.rs", &src);
        prop_assert!(
            audit.diagnostics.is_empty(),
            "quoted hazard {:?} leaked diagnostics: {:?}",
            hazard,
            audit.diagnostics
        );
    }

    /// The same hazards as bare code DO fire — the mirror property, so
    /// the test above cannot rot into vacuity.
    #[test]
    fn bare_hazards_do_fire(which in 0usize..8usize) {
        let hazard = HAZARDS[which];
        let src = format!("fn f() {{\n    let map = FxHashMap::default();\n    {hazard};\n}}\n");
        let audit = audit_source("crates/grid-engine/src/fixture.rs", &src);
        prop_assert!(
            audit.diagnostics.iter().any(|d| RULE_NAMES.contains(&d.rule)),
            "bare hazard {:?} fired nothing",
            hazard
        );
    }
}
