//! Rule fixtures: every rule must (a) fire on a minimal hazard at the
//! right `file:line`, (b) be silenced by a reasoned inline waiver, and
//! (c) never fire on the same hazard hidden inside a string literal or
//! a comment. The hazards here live inside Rust string literals, so
//! auditing *this* file (as CI does) stays clean — which is itself a
//! regression test for the lexer's string handling.

use gather_audit::{audit_source, Diagnostic};

const ENGINE_PATH: &str = "crates/grid-engine/src/fixture.rs";

fn active(path: &str, src: &str) -> Vec<Diagnostic> {
    audit_source(path, src).diagnostics.into_iter().filter(|d| !d.waived).collect()
}

fn fires(path: &str, src: &str, rule: &str, line: u32) {
    let hits = active(path, src);
    assert!(
        hits.iter().any(|d| d.rule == rule && d.line == line),
        "expected `{rule}` at {path}:{line}, got {hits:?}"
    );
}

fn clean(path: &str, src: &str) {
    let hits = active(path, src);
    assert!(hits.is_empty(), "expected no active findings, got {hits:?}");
}

#[test]
fn wall_clock_fires_and_waives() {
    let hazard = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    fires(ENGINE_PATH, hazard, "wall-clock", 1);
    fires(ENGINE_PATH, "use std::time::SystemTime;\n", "wall-clock", 1);
    clean(
        ENGINE_PATH,
        "// audit: allow(wall-clock) fixture: timing is display-only here\n\
         fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // The allowlisted profiler file may read clocks freely.
    clean("crates/grid-engine/src/profile.rs", hazard);
    // Test and bench layouts are not replayed.
    clean("crates/grid-engine/tests/perf.rs", hazard);
    clean("crates/grid-engine/benches/rounds.rs", hazard);
}

#[test]
fn unordered_iter_fires_and_waives() {
    let hazard = "\
fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
";
    fires(ENGINE_PATH, hazard, "unordered-iter", 2);
    let for_loop = "\
fn f() {
    let mut seen = FxHashSet::default();
    for x in &seen {
        drop(x);
    }
}
";
    fires(ENGINE_PATH, for_loop, "unordered-iter", 3);
    clean(
        ENGINE_PATH,
        "fn f(m: &FxHashMap<u32, u32>) -> u32 {
    // audit: allow(unordered-iter) sum is commutative, order-free
    m.values().sum()
}
",
    );
    // Outside the determinism-critical crates the rule is silent.
    clean("crates/gather-viz/src/fixture.rs", hazard);
}

#[test]
fn seeded_rng_fires_and_waives() {
    fires(ENGINE_PATH, "fn f() { let _r = thread_rng(); }\n", "seeded-rng", 1);
    fires("src/fixture.rs", "fn f() { let _r = SmallRng::from_entropy(); }\n", "seeded-rng", 1);
    clean(
        "src/fixture.rs",
        "fn f() {
    // audit: allow(seeded-rng) fixture: seed is logged before use
    let _r = thread_rng();
}
",
    );
}

#[test]
fn safety_comment_fires_and_clears() {
    let hazard = "\
fn f(p: *const u32) -> u32 {
    unsafe { *p }
}
";
    fires(ENGINE_PATH, hazard, "safety-comment", 2);
    // A SAFETY comment directly above satisfies the rule outright.
    clean(
        ENGINE_PATH,
        "fn f(p: *const u32) -> u32 {
    // SAFETY: caller contract guarantees p is valid and aligned
    unsafe { *p }
}
",
    );
    // Same-line SAFETY also counts.
    clean(ENGINE_PATH, "fn f(p: *const u32) -> u32 {\n    unsafe { *p } // SAFETY: p valid\n}\n");
    // A blank line breaks the comment block: the justification must be adjacent.
    fires(
        ENGINE_PATH,
        "fn f(p: *const u32) -> u32 {\n    // SAFETY: p valid\n\n    unsafe { *p }\n}\n",
        "safety-comment",
        4,
    );
    // And the rule is waivable like the others.
    clean(
        ENGINE_PATH,
        "fn f(p: *const u32) -> u32 {
    // audit: allow(safety-comment) fixture: justified in module docs
    unsafe { *p }
}
",
    );
}

#[test]
fn panic_surface_fires_and_waives() {
    fires(ENGINE_PATH, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n", "panic-surface", 1);
    fires(ENGINE_PATH, "fn f(x: Option<u32>) -> u32 { x.expect(msg()) }\n", "panic-surface", 1);
    fires(ENGINE_PATH, "fn f() { panic!() }\n", "panic-surface", 1);
    fires(ENGINE_PATH, "fn f() -> u32 { todo!(\"later\") }\n", "panic-surface", 1);
    // Named invariants are the sanctioned form.
    clean(ENGINE_PATH, "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant: set by new\") }\n");
    clean(ENGINE_PATH, "fn f() { panic!(\"invariant: unreachable state\") }\n");
    clean(
        ENGINE_PATH,
        "// audit: allow(panic-surface) fixture: prototype-only path\n\
         fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    // Other crates and test modules are out of scope.
    clean("crates/gather-core/src/fixture.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    clean(
        ENGINE_PATH,
        "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n",
    );
}

#[test]
fn waiver_hygiene_fires_and_waives() {
    // Stale: the waiver suppresses nothing.
    fires(
        ENGINE_PATH,
        "// audit: allow(wall-clock) nothing here reads a clock\nfn f() {}\n",
        "waiver-hygiene",
        1,
    );
    // Unknown rule.
    fires(ENGINE_PATH, "// audit: allow(wall-clcok) typo\nfn f() {}\n", "waiver-hygiene", 1);
    // Missing reason: the hazard stays active AND hygiene fires.
    let anonymous = "// audit: allow(panic-surface)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    fires(ENGINE_PATH, anonymous, "waiver-hygiene", 1);
    fires(ENGINE_PATH, anonymous, "panic-surface", 2);
    // Malformed directive.
    fires(ENGINE_PATH, "// audit: disable all the things\nfn f() {}\n", "waiver-hygiene", 1);
    // A hygiene waiver directly above sanctions a deliberate keeper.
    clean(
        ENGINE_PATH,
        "// audit: allow(waiver-hygiene) fixture kept to document the syntax\n\
         // audit: allow(wall-clock) nothing here reads a clock\n\
         fn f() {}\n",
    );
}

#[test]
fn hazards_inside_strings_and_comments_are_invisible() {
    clean(
        ENGINE_PATH,
        "fn f() -> &'static str {
    // A comment naming Instant::now, thread_rng and x.unwrap() is prose.
    /* so is SystemTime in a block comment */
    \"Instant::now() thread_rng() m.values() x.unwrap() unsafe panic!()\"
}
",
    );
    clean(
        ENGINE_PATH,
        "fn f() -> &'static str {\n    r#\"SystemTime::now() and todo!() in a raw string\"#\n}\n",
    );
}

#[test]
fn waived_findings_are_reported_as_waived() {
    let audit = audit_source(
        ENGINE_PATH,
        "// audit: allow(panic-surface) fixture: reason text survives\n\
         fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let waived: Vec<_> = audit.diagnostics.iter().filter(|d| d.waived).collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].rule, "panic-surface");
    assert_eq!(waived[0].waive_reason.as_deref(), Some("fixture: reason text survives"));
    assert!(audit.diagnostics.iter().all(|d| d.waived), "no active findings remain");
}

#[test]
fn stale_waivers_are_marked_removable() {
    let src = "// audit: allow(wall-clock) stale\nfn f() {}\n";
    let audit = audit_source(ENGINE_PATH, src);
    assert_eq!(audit.removable_waivers.len(), 1);
    let (start, end) = audit.removable_waivers[0];
    assert_eq!(&src[start..end], "// audit: allow(wall-clock) stale");
}
