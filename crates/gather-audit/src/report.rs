//! Rendering: human-readable `file:line` diagnostics and a hand-rolled
//! JSON encoding (the crate is dependency-free by design — it must
//! never drag a registry dependency into the lint gate).

use crate::rules::Diagnostic;

/// `path:line: [rule] message` — clickable in most terminals/editors.
pub fn render_text(d: &Diagnostic) -> String {
    if d.waived {
        let reason = d.waive_reason.as_deref().unwrap_or("");
        format!("{}:{}: [{}] waived — {}", d.path, d.line, d.rule, reason)
    } else {
        format!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message)
    }
}

/// Minimal JSON string escape (quotes, backslash, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json_one(d: &Diagnostic) -> String {
    let reason = match &d.waive_reason {
        Some(r) => format!(",\"reason\":\"{}\"", json_escape(r)),
        None => String::new(),
    };
    format!(
        "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"waived\":{},\"message\":\"{}\"{}}}",
        json_escape(&d.path),
        d.line,
        d.rule,
        d.waived,
        json_escape(&d.message),
        reason
    )
}

/// The full machine-readable report: every finding (waived included)
/// plus a summary object, as one JSON document.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let active = diags.iter().filter(|d| !d.waived).count();
    let waived = diags.len() - active;
    let body: Vec<String> = diags.iter().map(render_json_one).collect();
    format!("{{\"diagnostics\":[{}],\"active\":{},\"waived\":{}}}", body.join(","), active, waived)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(waived: bool) -> Diagnostic {
        Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "wall-clock",
            message: "a \"quoted\" hazard".into(),
            waived,
            waive_reason: waived.then(|| "order-free fold".to_string()),
        }
    }

    #[test]
    fn text_is_file_line_rule() {
        assert_eq!(
            render_text(&sample(false)),
            "crates/x/src/lib.rs:7: [wall-clock] a \"quoted\" hazard"
        );
        assert!(render_text(&sample(true)).contains("waived — order-free fold"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let doc = render_json(&[sample(false), sample(true)]);
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.ends_with("\"active\":1,\"waived\":1}"));
        assert!(doc.contains("\"reason\":\"order-free fold\""));
    }
}
