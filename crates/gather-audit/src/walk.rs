//! Workspace traversal: find every `.rs` file under the workspace
//! root, in a deterministic (sorted) order, skipping build products and
//! VCS internals.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const SKIP_DIRS: [&str; 4] = ["target", ".git", ".claude", "node_modules"];

/// All `.rs` files under `root`, as workspace-relative `/`-separated
/// paths, sorted for stable diagnostic order.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                found.push(path);
            }
        }
    }
    found.sort();
    Ok(found)
}

/// Workspace-relative `/`-separated form of `path` for rule scoping
/// and diagnostics.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
