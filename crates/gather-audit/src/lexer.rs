//! A hand-rolled, dependency-free Rust lexer — just enough fidelity for
//! the audit rules: identifiers, punctuation, numbers, string / raw
//! string / byte string / char literals, lifetimes, and line / block
//! comments (doc variants included, block comments nested).
//!
//! Design constraints, in priority order:
//!
//! 1. **Never panic**, whatever the input — the lexer runs over every
//!    byte sequence the walker finds (a torn file, a half-written merge
//!    conflict, generated code). Malformed input degrades to "consume
//!    something and keep going"; unterminated literals and comments
//!    extend to end of input. A proptest feeds it arbitrary bytes.
//! 2. **Hazards inside strings and comments must not leak**: a
//!    `HashMap` mention in a doc comment or an `Instant::now` in a
//!    string literal becomes a `Str`/`Comment` token, which the rules
//!    never read identifiers from.
//! 3. Positions are preserved (byte offset + 1-based line) so
//!    diagnostics are `file:line` and `--fix-waivers` can edit source.

/// Lexical class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// Numeric literal (possibly with suffix; `1.5` lexes as
    /// `Number Punct Number`, which is fine for rule matching).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'a` (no closing quote).
    Lifetime,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// `// …` (also `/// …` and `//! …`) up to the newline.
    LineComment,
    /// `/* … */`, nested; also `/** … */` and `/*! … */`.
    BlockComment,
}

/// One lexed token: classification plus its exact source slice and
/// position.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character.
    pub start: usize,
}

impl Token<'_> {
    /// Byte offset one past the token's last character.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }

    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

pub fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

pub fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.out.push(Token { kind, text: &self.src[start..self.pos], line, start });
    }

    /// Consume an identifier run starting at the current position.
    fn ident_run(&mut self) {
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        // Entered with `/*` not yet consumed.
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: extends to EOF
            }
        }
    }

    /// Double-quoted string with escapes; unterminated extends to EOF.
    fn quoted_string(&mut self) {
        self.bump(); // opening `"`
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Raw string starting at the current `#`-or-`"` position (the `r` /
    /// `br` prefix is already consumed). Returns false if this is not a
    /// raw string after all (e.g. a raw identifier `r#ident`).
    fn raw_string(&mut self) -> bool {
        let save = (self.pos, self.line);
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek() != Some('"') {
            // `r#ident` (raw identifier) or stray `r#`: rewind.
            (self.pos, self.line) = save;
            return false;
        }
        self.bump(); // opening `"`
        'body: while let Some(c) = self.bump() {
            if c == '"' {
                let close = (self.pos, self.line);
                for _ in 0..hashes {
                    if self.peek() == Some('#') {
                        self.bump();
                    } else {
                        (self.pos, self.line) = close;
                        continue 'body;
                    }
                }
                return true; // closed with matching hashes
            }
        }
        true // unterminated: extends to EOF
    }

    /// `'`-introduced token: a char literal or a lifetime.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        self.bump(); // opening `'`
                     // `'ident` not followed by a closing quote is a lifetime.
        if self.peek().is_some_and(is_ident_start) {
            let save = (self.pos, self.line);
            self.ident_run();
            if self.peek() == Some('\'') {
                self.bump(); // `'x'` — a char literal after all
                self.push(TokenKind::Char, start, line);
            } else {
                // Leave the position after the identifier run.
                let _ = save;
                self.push(TokenKind::Lifetime, start, line);
            }
            return;
        }
        // Escaped or punctuation char literal: scan to the closing quote,
        // giving up at a newline (so a stray `'` cannot swallow the file).
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    break;
                }
                '\n' => break,
                _ => {
                    self.bump();
                }
            }
        }
        self.push(TokenKind::Char, start, line);
    }

    fn run(mut self) -> Vec<Token<'a>> {
        while let Some(c) = self.peek() {
            let (start, line) = (self.pos, self.line);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => {
                    self.line_comment();
                    self.push(TokenKind::LineComment, start, line);
                }
                '/' if self.peek_at(1) == Some('*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                '"' => {
                    self.quoted_string();
                    self.push(TokenKind::Str, start, line);
                }
                '\'' => self.char_or_lifetime(start, line),
                'r' if matches!(self.peek_at(1), Some('"' | '#')) => {
                    self.bump(); // `r`
                    if self.raw_string() {
                        self.push(TokenKind::Str, start, line);
                    } else {
                        // Raw identifier `r#ident`.
                        if self.peek() == Some('#') {
                            self.bump();
                        }
                        self.ident_run();
                        self.push(TokenKind::Ident, start, line);
                    }
                }
                'b' if matches!(
                    (self.peek_at(1), self.peek_at(2)),
                    (Some('"'), _) | (Some('\''), _) | (Some('r'), Some('"' | '#'))
                ) =>
                {
                    self.bump(); // `b`
                    match self.peek() {
                        Some('"') => {
                            self.quoted_string();
                            self.push(TokenKind::Str, start, line);
                        }
                        Some('\'') => {
                            // Byte char: same shape as a char literal,
                            // and `b'` can never be a lifetime.
                            self.bump();
                            while let Some(c) = self.peek() {
                                match c {
                                    '\\' => {
                                        self.bump();
                                        self.bump();
                                    }
                                    '\'' => {
                                        self.bump();
                                        break;
                                    }
                                    '\n' => break,
                                    _ => {
                                        self.bump();
                                    }
                                }
                            }
                            self.push(TokenKind::Char, start, line);
                        }
                        _ => {
                            self.bump(); // `r`
                            if self.raw_string() {
                                self.push(TokenKind::Str, start, line);
                            } else {
                                self.ident_run();
                                self.push(TokenKind::Ident, start, line);
                            }
                        }
                    }
                }
                c if is_ident_start(c) => {
                    self.ident_run();
                    self.push(TokenKind::Ident, start, line);
                }
                c if c.is_ascii_digit() => {
                    while self.peek().is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }
}

/// Lex `src` into a token stream. Total: every non-whitespace byte of
/// the input is covered by exactly one token; infallible on any input.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer { src, pos: 0, line: 1, out: Vec::new() }.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_stream() {
        let toks = lex("let x = foo.bar(1);");
        let idents: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect();
        assert_eq!(idents, ["let", "x", "foo", "bar"]);
    }

    #[test]
    fn strings_swallow_hazards() {
        let toks = lex(r#"let s = "Instant::now() HashMap";"#);
        assert!(toks.iter().all(|t| t.kind != TokenKind::Ident || t.text != "Instant"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_raw_identifiers() {
        let toks = lex(r##"let s = r#"quote " inside"#; let r#try = 1;"##);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Ident && t.text == "r#try"));
    }

    #[test]
    fn nested_block_comment_and_doc() {
        let toks = lex("/* outer /* inner */ still */ fn x() {} /// doc HashMap\n");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.ends_with("still */"));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Ident && t.text == "fn"));
        assert!(toks.iter().any(|t| t.kind == TokenKind::LineComment));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Ident && t.text == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
        let toks = lex(r"let c = '\n'; let q = '\'';");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn byte_literals() {
        let toks = lex(r##"let a = b"bytes"; let b = b'x'; let c = br#"raw"#;"##);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panicking() {
        for src in ["\"unterminated", "/* unterminated", "r#\"unterminated", "'", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
        assert_eq!(kinds("\"abc"), [TokenKind::Str]);
        assert_eq!(kinds("/*/"), [TokenKind::BlockComment]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c /* x\ny */ d");
        let at = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(at("a"), Some(1));
        assert_eq!(at("b"), Some(2));
        assert_eq!(at("c"), Some(3));
        assert_eq!(at("d"), Some(4));
    }
}
