//! `gather-audit` — a workspace determinism & safety lint.
//!
//! The gathering engine's headline contract is **bit-identical
//! replay**: a run is a pure function of (scenario, seed, config) —
//! identical across thread counts, replayable from a `.gtrc` trace
//! byte-for-byte, and safe to memoise in the campaign result cache.
//! That contract is enforced dynamically by record/replay tests, but a
//! dynamic test only catches the hazard it happens to execute. This
//! crate closes the gap statically: a dependency-free Rust lexer plus
//! a handful of token-stream rules that flag the constructs which can
//! silently break the contract — wall-clock reads, hash-order
//! iteration, ambient-entropy RNGs, unjustified `unsafe`, and unnamed
//! panics in engine library code.
//!
//! Findings are waivable inline (`// audit: allow(<rule>) <reason>`),
//! and the waiver inventory itself is audited: anonymous, misspelled
//! and stale waivers fail the run, so suppressions can never rot.
//!
//! Run it as `cargo run -p gather-audit -- check` (CI does, in the
//! lint gate). See the README's *Static analysis* section for the rule
//! catalogue and waiver policy.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;
pub mod walk;

pub use rules::{audit_source, Diagnostic, FileAudit, RULE_NAMES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregate result of auditing a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceAudit {
    /// Every finding, waived included, in (path, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files: usize,
    /// Per-file byte spans `--fix-waivers` may delete.
    pub removable: Vec<(PathBuf, Vec<(usize, usize)>)>,
}

impl WorkspaceAudit {
    /// Findings that fail the audit.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }
}

/// Audit every `.rs` file under `root`.
pub fn audit_workspace(root: &Path) -> io::Result<WorkspaceAudit> {
    let mut out = WorkspaceAudit::default();
    for path in walk::rust_files(root)? {
        let rel = walk::relative(root, &path);
        let src = fs::read_to_string(&path)?;
        let audit = rules::audit_source(&rel, &src);
        out.files += 1;
        out.diagnostics.extend(audit.diagnostics);
        if !audit.removable_waivers.is_empty() {
            out.removable.push((path, audit.removable_waivers));
        }
    }
    Ok(out)
}

/// Delete the given waiver-comment byte spans from a file. When the
/// deletion leaves a line holding only whitespace, the whole line goes.
/// Returns the number of spans removed.
pub fn remove_waiver_spans(path: &Path, spans: &[(usize, usize)]) -> io::Result<usize> {
    let src = fs::read_to_string(path)?;
    let mut spans: Vec<(usize, usize)> = spans.to_vec();
    spans.sort();
    spans.dedup();
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for &(start, end) in &spans {
        if start < cursor || end > src.len() {
            continue; // overlapping or out-of-range span: leave the text alone
        }
        out.push_str(&src[cursor..start]);
        cursor = end;
        // If the span sat on a line of its own, drop the line entirely:
        // trim trailing whitespace we just emitted back to the previous
        // newline, and swallow the newline that follows the span.
        let line_start = out.rfind('\n').map_or(0, |i| i + 1);
        if out[line_start..].chars().all(char::is_whitespace) {
            let rest = &src[cursor..];
            if rest.starts_with('\n') {
                out.truncate(line_start);
                cursor += 1;
            } else if rest.starts_with("\r\n") {
                out.truncate(line_start);
                cursor += 2;
            } else {
                // Trailing content after the comment (unusual): keep the line,
                // just trim the whitespace that led into the comment.
                while out.len() > line_start && out.ends_with(' ') {
                    out.pop();
                }
            }
        } else {
            // Trailing waiver: also trim the spaces that separated it
            // from the code.
            while out.ends_with(' ') {
                out.pop();
            }
        }
    }
    out.push_str(&src[cursor..]);
    fs::write(path, out)?;
    Ok(spans.len())
}
