//! The audit rules and the per-file engine that runs them, applies
//! waivers, and enforces waiver hygiene.
//!
//! Every rule guards a project invariant that is otherwise only checked
//! *dynamically* (by replay/diff tests that must first burn CPU to hit
//! the hazard):
//!
//! | rule | invariant protected |
//! |---|---|
//! | `wall-clock` | profile-off runs read no clocks → results are a pure function of (scenario, seed, config) |
//! | `unordered-iter` | no hash-map iteration order leaks into results in the determinism-critical crates |
//! | `seeded-rng` | every RNG is constructed from an explicit seed → replays are exact |
//! | `safety-comment` | every `unsafe` is justified in a `// SAFETY:` comment |
//! | `panic-surface` | engine library code panics only on *named* invariants |
//! | `waiver-hygiene` | the waiver inventory matches the hazards actually present |
//!
//! Scoping: files under `tests/`, `benches/`, `examples/` and
//! `src/bin/`, and items inside `#[cfg(test)]`, are exempt from the
//! determinism rules (`wall-clock`, `unordered-iter`, `panic-surface`)
//! — test and CLI timing is not replayed. `seeded-rng`,
//! `safety-comment` and `waiver-hygiene` apply everywhere: an
//! entropy-seeded test is flaky, and unsafe is unsafe wherever it is.

use crate::lexer::{lex, Token, TokenKind};
use crate::waiver::{self, Waiver, WaiverSyntax};

/// Every rule the engine knows, in diagnostic-priority order.
pub const RULE_NAMES: [&str; 6] = [
    "wall-clock",
    "unordered-iter",
    "seeded-rng",
    "safety-comment",
    "panic-surface",
    "waiver-hygiene",
];

/// Crates whose results feed traces, digests and the campaign cache —
/// hash-iteration order must not be observable in them.
const DETERMINISM_CRITICAL_CRATES: [&str; 3] = ["grid-engine", "gather-bench", "gather-trace"];

/// Crates whose *library* code must not panic on unnamed invariants.
const PANIC_FREE_CRATES: [&str; 1] = ["grid-engine"];

/// Files allowed to read wall clocks: the profiler itself, the campaign
/// executor/progress layer (job timing and ETA display), the campaign
/// service's clock module (lease expiry and heartbeat pacing need real
/// elapsed time; the rest of gather-serve takes `now_ms` as an argument
/// so expiry logic stays pure and nothing time-derived can reach a
/// content-addressed cache key), and the bench harness stand-in.
/// Everything else library-side must be replayable with profiling off.
const WALL_CLOCK_ALLOWLIST: [&str; 4] = [
    "crates/grid-engine/src/profile.rs",
    "crates/gather-campaign/src/executor.rs",
    "crates/gather-campaign/src/progress.rs",
    "crates/gather-serve/src/clock.rs",
];
const WALL_CLOCK_ALLOWLISTED_CRATES: [&str; 1] = ["criterion"];

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];
const ENTROPY_SOURCES: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// One finding, waived or not.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    /// Suppressed by a valid inline waiver.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub waive_reason: Option<String>,
}

/// Result of auditing one file.
#[derive(Clone, Debug, Default)]
pub struct FileAudit {
    /// All findings, including waived ones (reports show both).
    pub diagnostics: Vec<Diagnostic>,
    /// Byte spans of waiver comments `--fix-waivers` may delete
    /// (stale, unknown-rule, malformed).
    pub removable_waivers: Vec<(usize, usize)>,
}

impl FileAudit {
    /// Findings that actually fail the audit.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }
}

/// A lexed file plus the scoping facts the rules need.
struct SourceFile<'a> {
    path: &'a str,
    tokens: Vec<Token<'a>>,
    /// Indices into `tokens` of non-comment tokens.
    code: Vec<usize>,
    /// Per *code index*: inside a `#[cfg(test)]` item.
    in_test: Vec<bool>,
    crate_name: &'a str,
    /// tests/, benches/, examples/ or src/bin/ — not replayed library code.
    non_library: bool,
}

fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("grid-gathering")
}

fn is_non_library(path: &str) -> bool {
    let p = format!("/{path}");
    ["/tests/", "/benches/", "/examples/", "/src/bin/"].iter().any(|d| p.contains(d))
}

impl<'a> SourceFile<'a> {
    fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
        let in_test = mark_cfg_test(&tokens, &code);
        SourceFile {
            path,
            crate_name: crate_of(path),
            non_library: is_non_library(path),
            tokens,
            code,
            in_test,
        }
    }

    /// The `k`-th code token.
    fn ct(&self, k: usize) -> &Token<'a> {
        &self.tokens[self.code[k]]
    }

    fn ident_at(&self, k: usize) -> Option<&'a str> {
        let t = self.ct(k);
        (t.kind == TokenKind::Ident).then_some(t.text)
    }

    fn punct_at(&self, k: usize, c: char) -> bool {
        let t = self.ct(k);
        t.kind == TokenKind::Punct && t.text.starts_with(c)
    }
}

/// Per code-token index: is it inside a `#[cfg(test)]` item? Recognises
/// the attribute followed by (more attributes and) an item, and marks
/// up to the item's closing brace (or `;` for brace-less items).
fn mark_cfg_test(tokens: &[Token<'_>], code: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let ident = |k: usize| -> Option<&str> {
        let t = &tokens[code[k]];
        (t.kind == TokenKind::Ident).then_some(t.text)
    };
    let punct = |k: usize, c: char| -> bool {
        let t = &tokens[code[k]];
        t.kind == TokenKind::Punct && t.text.starts_with(c)
    };
    let mut k = 0;
    while k + 1 < code.len() {
        if !(punct(k, '#') && punct(k + 1, '[')) {
            k += 1;
            continue;
        }
        // Scan the attribute's bracket-balanced body for cfg(…test…).
        let mut j = k + 2;
        let mut depth = 1u32;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < code.len() && depth > 0 {
            if punct(j, '[') {
                depth += 1;
            } else if punct(j, ']') {
                depth -= 1;
            } else if let Some(name) = ident(j) {
                if name == "cfg" && j == k + 2 {
                    saw_cfg = true;
                } else if name == "test" {
                    saw_test = true;
                }
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            k = j;
            continue;
        }
        // Skip further attributes, then mark the following item.
        let mut m = j;
        while m + 1 < code.len() && punct(m, '#') && punct(m + 1, '[') {
            let mut depth = 1u32;
            m += 2;
            while m < code.len() && depth > 0 {
                if punct(m, '[') {
                    depth += 1;
                } else if punct(m, ']') {
                    depth -= 1;
                }
                m += 1;
            }
        }
        // Find the item's extent: to the matching `}` of its first
        // brace, or to a `;` that arrives before any brace.
        let start = m;
        let mut brace_depth = 0u32;
        let mut entered = false;
        while m < code.len() {
            if punct(m, '{') {
                brace_depth += 1;
                entered = true;
            } else if punct(m, '}') {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    break;
                }
            } else if punct(m, ';') && !entered {
                break;
            }
            m += 1;
        }
        for slot in in_test.iter_mut().take((m + 1).min(code.len())).skip(start) {
            *slot = true;
        }
        k = m + 1;
    }
    in_test
}

fn diag(file: &SourceFile<'_>, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: file.path.to_string(),
        line,
        rule,
        message,
        waived: false,
        waive_reason: None,
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime` outside the timing
/// allowlist. A clock read anywhere else can leak into results and
/// break profile-off bit-identity between runs.
fn rule_wall_clock(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if file.non_library
        || WALL_CLOCK_ALLOWLIST.iter().any(|p| file.path.ends_with(p) || file.path == *p)
        || WALL_CLOCK_ALLOWLISTED_CRATES.contains(&file.crate_name)
    {
        return;
    }
    for k in 0..file.code.len() {
        if file.in_test[k] {
            continue;
        }
        let Some(name) = file.ident_at(k) else { continue };
        let hit = match name {
            "Instant" => {
                k + 3 < file.code.len()
                    && file.punct_at(k + 1, ':')
                    && file.punct_at(k + 2, ':')
                    && file.ident_at(k + 3) == Some("now")
            }
            "SystemTime" => true,
            _ => false,
        };
        if hit {
            out.push(diag(
                file,
                file.ct(k).line,
                "wall-clock",
                format!(
                    "wall-clock read (`{name}`) outside the timing allowlist — \
                     breaks profile-off bit-identity of results"
                ),
            ));
        }
    }
}

/// `unordered-iter`: iterating a `HashMap`/`HashSet` (std or Fx) in a
/// determinism-critical crate. Iteration order depends on hash seeds
/// and insertion history, so any order-sensitive fold over it leaks
/// nondeterminism into results; order-free folds must say so in a
/// waiver.
fn rule_unordered_iter(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if file.non_library || !DETERMINISM_CRITICAL_CRATES.contains(&file.crate_name) {
        return;
    }
    // Pass 1: names bound to hash-typed values anywhere in the file
    // (`name: [&|mut] path::HashType…` ascriptions/fields, and
    // `name = HashType::…` initialisations).
    let mut hash_names: Vec<&str> = Vec::new();
    for k in 0..file.code.len() {
        let Some(name) = file.ident_at(k) else { continue };
        if !HASH_TYPES.contains(&name) {
            continue;
        }
        // Walk back over the `::`-separated path the type ends.
        let mut j = k;
        while j >= 3
            && file.punct_at(j - 1, ':')
            && file.punct_at(j - 2, ':')
            && file.ident_at(j - 3).is_some()
        {
            j -= 3;
        }
        // Skip `&` / `mut` between the ascription colon and the type.
        while j >= 1 && (file.punct_at(j - 1, '&') || file.ident_at(j - 1) == Some("mut")) {
            j -= 1;
        }
        // `name: HashType` ascription or `name = HashType::new()` binding
        // (a doubled `:`/`=` is a path separator / comparison instead).
        let ascribed = j >= 2 && file.punct_at(j - 1, ':') && !file.punct_at(j - 2, ':');
        let assigned = j >= 2 && file.punct_at(j - 1, '=') && !file.punct_at(j - 2, '=');
        let bound = (ascribed || assigned).then(|| file.ident_at(j - 2)).flatten();
        if let Some(bound) = bound {
            if !hash_names.contains(&bound) {
                hash_names.push(bound);
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }
    let mut flagged: Vec<(u32,)> = Vec::new();
    let mut push = |file: &SourceFile<'_>, line: u32, recv: &str, how: &str| {
        if flagged.contains(&(line,)) {
            return;
        }
        flagged.push((line,));
        out.push(diag(
            file,
            line,
            "unordered-iter",
            format!(
                "{how} of hash-ordered `{recv}` in determinism-critical crate \
                 `{crate_name}` — iteration order can leak into results",
                crate_name = file.crate_name
            ),
        ));
    };
    // Pass 2a: `recv.iter()`-style calls on a hash-bound name.
    for k in 2..file.code.len() {
        if file.in_test[k] {
            continue;
        }
        let Some(method) = file.ident_at(k) else { continue };
        if !ITER_METHODS.contains(&method)
            || !file.punct_at(k - 1, '.')
            || k + 1 >= file.code.len()
            || !file.punct_at(k + 1, '(')
        {
            continue;
        }
        if let Some(recv) = file.ident_at(k - 2) {
            if hash_names.contains(&recv) {
                push(file, file.ct(k).line, recv, &format!("`.{method}()`"));
            }
        }
    }
    // Pass 2b: `for … in <expr involving a hash-bound name> {`.
    for k in 0..file.code.len() {
        if file.in_test[k] || file.ident_at(k) != Some("for") {
            continue;
        }
        // Find the `in` of this loop (depth-0 within () and []).
        let mut depth = 0i32;
        let mut m = k + 1;
        let mut in_at = None;
        while m < file.code.len() && m - k < 64 {
            if file.punct_at(m, '(') || file.punct_at(m, '[') {
                depth += 1;
            } else if file.punct_at(m, ')') || file.punct_at(m, ']') {
                depth -= 1;
            } else if depth == 0 && file.ident_at(m) == Some("in") {
                in_at = Some(m);
                break;
            } else if depth == 0 && (file.punct_at(m, '{') || file.punct_at(m, ';')) {
                break; // `impl Trait for Type {` and friends have no `in`
            }
            m += 1;
        }
        let Some(in_at) = in_at else { continue };
        let mut m = in_at + 1;
        while m < file.code.len() && m - in_at < 32 && !file.punct_at(m, '{') {
            if let Some(name) = file.ident_at(m) {
                if hash_names.contains(&name) {
                    push(file, file.ct(m).line, name, "`for … in` iteration");
                    break;
                }
            }
            m += 1;
        }
    }
}

/// `seeded-rng`: ambient-entropy RNG construction. Every random draw in
/// this workspace must derive from an explicit seed, or recorded runs
/// can never be replayed.
fn rule_seeded_rng(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    for k in 0..file.code.len() {
        let Some(name) = file.ident_at(k) else { continue };
        if ENTROPY_SOURCES.contains(&name) {
            out.push(diag(
                file,
                file.ct(k).line,
                "seeded-rng",
                format!(
                    "ambient entropy source `{name}` — construct RNGs from an \
                     explicit seed so runs replay exactly"
                ),
            ));
        }
    }
}

/// `safety-comment`: every `unsafe` keyword (block, fn, impl, trait)
/// must be justified by a `// SAFETY:` comment on the same line or in
/// the contiguous comment/attribute block directly above.
fn rule_safety_comment(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    // Line facts, derived once.
    let mut safety_lines: Vec<u32> = Vec::new();
    let mut comment_lines: Vec<u32> = Vec::new();
    for t in &file.tokens {
        if t.is_comment() {
            // A multi-line block comment marks every line it spans.
            let span = t.text.lines().count().max(1) as u32;
            for l in t.line..t.line + span {
                comment_lines.push(l);
                if t.text.contains("SAFETY:") {
                    safety_lines.push(l);
                }
            }
        }
    }
    let mut code_lines: Vec<u32> = Vec::new();
    let mut attr_start_lines: Vec<u32> = Vec::new();
    for (pos, &i) in file.code.iter().enumerate() {
        let t = &file.tokens[i];
        if !code_lines.contains(&t.line) {
            code_lines.push(t.line);
            // The line's first code token being `#` marks an attribute line.
            if t.kind == TokenKind::Punct && t.text == "#" {
                attr_start_lines.push(t.line);
            }
        }
        let _ = pos;
    }
    for k in 0..file.code.len() {
        if file.ident_at(k) != Some("unsafe") {
            continue;
        }
        let line = file.ct(k).line;
        let mut justified = safety_lines.contains(&line);
        let mut m = line.saturating_sub(1);
        while !justified && m > 0 {
            if safety_lines.contains(&m) {
                justified = true;
            } else if comment_lines.contains(&m) || attr_start_lines.contains(&m) {
                m -= 1; // keep climbing the contiguous comment/attr block
            } else {
                break; // code or a blank line ends the search
            }
        }
        if !justified {
            let what = file.ident_at(k + 1).unwrap_or("block");
            out.push(diag(
                file,
                line,
                "safety-comment",
                format!(
                    "`unsafe {what}` without a `// SAFETY:` comment directly above — \
                     state why the contract holds"
                ),
            ));
        }
    }
}

/// `panic-surface`: in engine library code, a potential panic must name
/// its invariant in a string literal (`expect("…")`, `panic!("…")`),
/// be converted to checked handling, or carry a waiver. Bare
/// `.unwrap()` and `todo!`/`unimplemented!` never qualify.
fn rule_panic_surface(file: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if file.non_library || !PANIC_FREE_CRATES.contains(&file.crate_name) {
        return;
    }
    let nonempty_str = |k: usize| -> bool {
        let t = file.ct(k);
        t.kind == TokenKind::Str && t.text.trim_matches(['b', 'r', '#', '"']).trim() != ""
    };
    for k in 0..file.code.len() {
        if file.in_test[k] {
            continue;
        }
        let Some(name) = file.ident_at(k) else { continue };
        let line = file.ct(k).line;
        match name {
            "unwrap" if k >= 1 && file.punct_at(k - 1, '.') => {
                out.push(diag(
                    file,
                    line,
                    "panic-surface",
                    "`.unwrap()` in engine library code — use `expect(\"<invariant>\")`, \
                     checked handling, or a waiver"
                        .to_string(),
                ));
            }
            "expect"
                if k >= 1
                    && file.punct_at(k - 1, '.')
                    && k + 2 < file.code.len()
                    && file.punct_at(k + 1, '(')
                    && !nonempty_str(k + 2) =>
            {
                out.push(diag(
                    file,
                    line,
                    "panic-surface",
                    "`.expect(…)` without a literal invariant message in engine \
                     library code"
                        .to_string(),
                ));
            }
            "panic" | "unreachable" if k + 1 < file.code.len() && file.punct_at(k + 1, '!') => {
                let named =
                    k + 3 < file.code.len() && file.punct_at(k + 2, '(') && nonempty_str(k + 3);
                if !named {
                    out.push(diag(
                        file,
                        line,
                        "panic-surface",
                        format!(
                            "`{name}!` without a literal invariant message in engine \
                             library code"
                        ),
                    ));
                }
            }
            "todo" | "unimplemented" if k + 1 < file.code.len() && file.punct_at(k + 1, '!') => {
                out.push(diag(
                    file,
                    line,
                    "panic-surface",
                    format!("`{name}!` must not ship in engine library code"),
                ));
            }
            _ => {}
        }
    }
}

/// Audit one file's source. `path` must be workspace-relative with `/`
/// separators — it drives the crate/layout scoping above.
pub fn audit_source(path: &str, src: &str) -> FileAudit {
    let file = SourceFile::new(path, src);
    let mut diags: Vec<Diagnostic> = Vec::new();
    rule_wall_clock(&file, &mut diags);
    rule_unordered_iter(&file, &mut diags);
    rule_seeded_rng(&file, &mut diags);
    rule_safety_comment(&file, &mut diags);
    rule_panic_surface(&file, &mut diags);

    let waivers = waiver::collect(&file.tokens);
    let mut used = vec![false; waivers.len()];
    apply_waivers(&mut diags, &waivers, &mut used, false);

    // Waiver hygiene: malformed / anonymous / unknown-rule / stale
    // waivers are diagnostics themselves.
    let mut hygiene: Vec<Diagnostic> = Vec::new();
    let mut removable: Vec<(usize, usize)> = Vec::new();
    for (w, &w_used) in waivers.iter().zip(&*used) {
        let (message, removable_here) = match &w.syntax {
            WaiverSyntax::Malformed => (
                "malformed audit directive; expected `// audit: allow(<rule>) <reason>`"
                    .to_string(),
                true,
            ),
            WaiverSyntax::MissingReason { rule } => (
                format!(
                    "waiver for `{rule}` has no reason — an unexplained waiver never suppresses"
                ),
                false,
            ),
            WaiverSyntax::Valid { rule, .. } if !RULE_NAMES.contains(&rule.as_str()) => {
                (format!("waiver names unknown rule `{rule}`"), true)
            }
            WaiverSyntax::Valid { rule, .. } if !w_used && rule != "waiver-hygiene" => (
                format!(
                    "stale waiver: no `{rule}` diagnostic on line {} — remove it \
                     (`check --fix-waivers` does)",
                    w.target_line
                ),
                true,
            ),
            WaiverSyntax::Valid { .. } => continue,
        };
        if removable_here {
            removable.push((w.start, w.end));
        }
        hygiene.push(Diagnostic {
            path: path.to_string(),
            line: w.line,
            rule: "waiver-hygiene",
            message,
            waived: false,
            waive_reason: None,
        });
    }
    // Hygiene findings are waivable too (e.g. a README-style fixture
    // kept on purpose): a `waiver-hygiene` waiver binds by target line
    // or by sitting directly above the offending waiver comment.
    apply_waivers(&mut hygiene, &waivers, &mut used, true);
    // Keep spans of hygiene waivers that went unused: they are stale.
    for (w, w_used) in waivers.iter().zip(used) {
        if let WaiverSyntax::Valid { rule, .. } = &w.syntax {
            if rule == "waiver-hygiene" && !w_used {
                removable.push((w.start, w.end));
                hygiene.push(Diagnostic {
                    path: path.to_string(),
                    line: w.line,
                    rule: "waiver-hygiene",
                    message: format!(
                        "stale waiver: no `waiver-hygiene` diagnostic on line {}",
                        w.target_line
                    ),
                    waived: false,
                    waive_reason: None,
                });
            }
        }
    }
    // Drop removable spans for waivers that ended up waived-in-place
    // (their hygiene diagnostic was suppressed): they are sanctioned.
    let waived_hygiene_lines: Vec<u32> =
        hygiene.iter().filter(|d| d.waived).map(|d| d.line).collect();
    removable.retain(|&(start, _)| {
        let line = waivers.iter().find(|w| w.start == start).map(|w| w.line);
        line.is_none_or(|l| !waived_hygiene_lines.contains(&l))
    });
    diags.extend(hygiene);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileAudit { diagnostics: diags, removable_waivers: removable }
}

/// Mark diagnostics waived where a valid waiver of the same rule
/// targets their line; `hygiene_mode` additionally lets a
/// `waiver-hygiene` waiver bind to the line directly below itself.
fn apply_waivers(
    diags: &mut [Diagnostic],
    waivers: &[Waiver],
    used: &mut [bool],
    hygiene_mode: bool,
) {
    for d in diags.iter_mut() {
        if d.waived {
            continue;
        }
        for (i, w) in waivers.iter().enumerate() {
            let WaiverSyntax::Valid { rule, reason } = &w.syntax else { continue };
            if rule != d.rule {
                continue;
            }
            let binds = w.target_line == d.line || (hygiene_mode && w.line + 1 == d.line);
            if binds {
                d.waived = true;
                d.waive_reason = Some(reason.clone());
                used[i] = true;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_and_layout_classification() {
        assert_eq!(crate_of("crates/grid-engine/src/swarm.rs"), "grid-engine");
        assert_eq!(crate_of("src/lib.rs"), "grid-gathering");
        assert_eq!(crate_of("tests/integration.rs"), "grid-gathering");
        assert!(is_non_library("crates/grid-engine/tests/engine_props.rs"));
        assert!(is_non_library("examples/quickstart.rs"));
        assert!(is_non_library("crates/gather-campaign/src/bin/campaign.rs"));
        assert!(!is_non_library("crates/grid-engine/src/engine.rs"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "\
fn library() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}
";
        let audit = audit_source("crates/grid-engine/src/x.rs", src);
        let lines: Vec<u32> =
            audit.active().filter(|d| d.rule == "panic-surface").map(|d| d.line).collect();
        assert_eq!(lines, [1], "only the library unwrap fires");
    }
}
