//! Inline waivers: `// audit: allow(rule-name) reason…`.
//!
//! Policy (enforced by the `waiver-hygiene` rule):
//!
//! * a waiver must name a **real rule** and carry a **non-empty
//!   reason** — anonymous or misspelled waivers never suppress
//!   anything and are themselves diagnostics;
//! * a waiver binds to **one line of code**: the line it trails, or —
//!   when it stands alone on its line — the next line that holds any
//!   code (stacked waivers above one statement all bind to it);
//! * a waiver that suppresses nothing is **stale** and fails the
//!   audit (`--fix-waivers` deletes it), so the waiver inventory can
//!   never drift from the hazards actually present.
//!
//! Only plain `//` comments carry waivers: doc comments (`///`, `//!`)
//! are rendered documentation, and a waiver inside one is almost
//! certainly prose quoting the syntax, not a suppression request.

use crate::lexer::{Token, TokenKind};

/// How a waiver comment parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaiverSyntax {
    /// `audit: allow(<rule>) <reason>` with both parts present.
    Valid { rule: String, reason: String },
    /// `audit: allow(<rule>)` with no reason text.
    MissingReason { rule: String },
    /// An `audit:` comment that does not parse as `allow(rule) …`.
    Malformed,
}

/// One `// audit:` comment found in a file.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub syntax: WaiverSyntax,
    /// Line of the comment itself.
    pub line: u32,
    /// Line of code this waiver suppresses diagnostics on.
    pub target_line: u32,
    /// Byte span of the comment token (for `--fix-waivers`).
    pub start: usize,
    pub end: usize,
}

/// Parse the body of a plain `//` comment; `None` when the comment is
/// not an `audit:` directive at all.
pub fn parse_comment(text: &str) -> Option<WaiverSyntax> {
    let body = text.strip_prefix("//")?;
    // Doc comments don't carry waivers.
    if body.starts_with('/') || body.starts_with('!') {
        return None;
    }
    let body = body.trim_start();
    let directive = body.strip_prefix("audit:")?.trim_start();
    let Some(rest) = directive.strip_prefix("allow(") else {
        return Some(WaiverSyntax::Malformed);
    };
    let Some(close) = rest.find(')') else {
        return Some(WaiverSyntax::Malformed);
    };
    let rule = rest[..close].trim();
    if rule.is_empty() || rule.contains(char::is_whitespace) {
        return Some(WaiverSyntax::Malformed);
    }
    let reason = rest[close + 1..].trim().trim_start_matches([':', '-']).trim();
    if reason.is_empty() {
        Some(WaiverSyntax::MissingReason { rule: rule.to_string() })
    } else {
        Some(WaiverSyntax::Valid { rule: rule.to_string(), reason: reason.to_string() })
    }
}

/// Extract every waiver in a token stream and resolve its target line.
pub fn collect(tokens: &[Token<'_>]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let Some(syntax) = parse_comment(tok.text) else { continue };
        // Trailing comment (code earlier on the same line) waives its
        // own line; a standalone comment waives the next code line.
        let trails_code =
            tokens[..i].iter().rev().take_while(|t| t.line == tok.line).any(|t| !t.is_comment());
        let target_line = if trails_code {
            tok.line
        } else {
            tokens[i + 1..].iter().find(|t| !t.is_comment()).map_or(tok.line, |t| t.line)
        };
        out.push(Waiver { syntax, line: tok.line, target_line, start: tok.start, end: tok.end() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_the_documented_forms() {
        assert_eq!(
            parse_comment("// audit: allow(wall-clock) progress display only"),
            Some(WaiverSyntax::Valid {
                rule: "wall-clock".into(),
                reason: "progress display only".into()
            })
        );
        assert_eq!(
            parse_comment("//audit: allow(x): colon-style reason"),
            Some(WaiverSyntax::Valid { rule: "x".into(), reason: "colon-style reason".into() })
        );
        assert_eq!(
            parse_comment("// audit: allow(seeded-rng)"),
            Some(WaiverSyntax::MissingReason { rule: "seeded-rng".into() })
        );
        assert_eq!(parse_comment("// audit: disable everything"), Some(WaiverSyntax::Malformed));
        assert_eq!(parse_comment("// audit: allow(two words) r"), Some(WaiverSyntax::Malformed));
        assert_eq!(parse_comment("// a normal comment"), None);
        assert_eq!(parse_comment("/// audit: allow(x) doc comments do not waive"), None);
    }

    #[test]
    fn binds_to_trailing_or_next_code_line() {
        let src = "\
let a = 1; // audit: allow(r1) trailing
// audit: allow(r2) standalone
// audit: allow(r3) stacked
let b = 2;
";
        let toks = lex(src);
        let waivers = collect(&toks);
        assert_eq!(waivers.len(), 3);
        assert_eq!(waivers[0].target_line, 1);
        assert_eq!(waivers[1].target_line, 4);
        assert_eq!(waivers[2].target_line, 4);
    }
}
