//! CLI: `cargo run -p gather-audit -- check [--root PATH] [--json] [--fix-waivers]`.
//!
//! Exit codes: 0 — clean (possibly with waived findings), 1 — active
//! diagnostics remain, 2 — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use gather_audit::{audit_workspace, remove_waiver_spans, report};

const USAGE: &str = "\
gather-audit — workspace determinism & safety lint

USAGE:
    gather-audit check [--root PATH] [--json] [--fix-waivers]

OPTIONS:
    --root PATH     Workspace root to audit (default: .)
    --json          Emit the full report as a single JSON document
    --fix-waivers   Delete stale/unknown/malformed waiver comments, then re-audit
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut fix_waivers = false;
    let mut command = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--fix-waivers" => fix_waivers = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("check") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut audit = match audit_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gather-audit: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if fix_waivers && !audit.removable.is_empty() {
        let mut removed = 0usize;
        for (path, spans) in &audit.removable {
            match remove_waiver_spans(path, spans) {
                Ok(n) => removed += n,
                Err(e) => {
                    eprintln!("gather-audit: cannot rewrite {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        eprintln!("gather-audit: removed {removed} dead waiver(s); re-auditing");
        audit = match audit_workspace(&root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("gather-audit: cannot re-audit {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
    }

    if json {
        println!("{}", report::render_json(&audit.diagnostics));
    } else {
        for d in audit.active() {
            println!("{}", report::render_text(d));
        }
    }

    let active = audit.active().count();
    let waived = audit.diagnostics.len() - active;
    eprintln!(
        "gather-audit: {} file(s), {} active finding(s), {} waived",
        audit.files, active, waived
    );
    if active == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
