//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! 0.5 API the bench target uses. The build runs with no network and no
//! registry cache, so the real crate cannot be fetched.
//!
//! Semantics: every benchmark runs a short warm-up followed by a fixed
//! number of timed batches, and one line per benchmark is printed with
//! the mean time per iteration. No statistics, plots, or baselines —
//! shapes and relative ordering are all the workspace's benches assert.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 1;
const DEFAULT_SAMPLES: u64 = 5;

/// Benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: u64,
    mean: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(label: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, mean: Duration::ZERO };
    f(&mut b);
    println!("{label:<50} {:>12.2?}/iter  ({samples} samples)", b.mean);
}

/// Top-level driver, constructed by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: DEFAULT_SAMPLES, _criterion: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion requires >= 10; the stub just caps the work.
        self.samples = (n as u64).clamp(1, DEFAULT_SAMPLES);
        self
    }

    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<D: fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_bodies() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        assert!(runs >= DEFAULT_SAMPLES);

        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| calls += x as u64));
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
