//! The event vocabulary and its wire format (one flat JSON object per
//! line, see the crate docs for the schema table).

use gather_analysis::{parse_flat_json, JsonObjWriter, JsonScalar};
use std::collections::BTreeMap;

/// Schema version stamped into every line as `"v"`. Readers reject
/// lines from a newer schema instead of misreading them.
pub const EVENT_VERSION: u64 = 1;

/// Outcome class of one finished scenario — the event-stream mirror of
/// the campaign record's outcome flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    Gathered,
    Stalled,
    Disconnected,
    Panicked,
}

impl Status {
    /// Stable wire token (also the token the progress renderer prints).
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Gathered => "ok",
            Status::Stalled => "stall",
            Status::Disconnected => "disc",
            Status::Panicked => "panic",
        }
    }

    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "ok" => Some(Status::Gathered),
            "stall" => Some(Status::Stalled),
            "disc" => Some(Status::Disconnected),
            "panic" => Some(Status::Panicked),
            _ => None,
        }
    }
}

/// One progress event of a campaign run.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A run (or a resume of one) opened: `total` scenarios in the job.
    JobStarted { job: String, total: usize },
    /// A scenario was handed to a worker.
    ScenarioStarted { id: String },
    /// A scenario completed (any outcome — panics included).
    ScenarioFinished { id: String, status: Status, rounds: u64, secs: f64, robot_rounds_per_s: f64 },
    /// Periodic progress: `done` of `total` scenarios finished, with the
    /// elapsed-rate ETA for the remainder.
    Heartbeat { done: usize, total: usize, eta_secs: f64 },
    /// The run finished (all pending scenarios done or the run aborted
    /// cleanly); always the last event of a completed stream.
    JobFinished { done: usize, panicked: usize, secs: f64 },
}

impl Event {
    /// Wire token of this event's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::JobStarted { .. } => "job_started",
            Event::ScenarioStarted { .. } => "scenario_started",
            Event::ScenarioFinished { .. } => "scenario_finished",
            Event::Heartbeat { .. } => "heartbeat",
            Event::JobFinished { .. } => "job_finished",
        }
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let w = JsonObjWriter::new().field_u64("v", EVENT_VERSION).field_str("event", self.kind());
        match self {
            Event::JobStarted { job, total } => {
                w.field_str("job", job).field_usize("total", *total)
            }
            Event::ScenarioStarted { id } => w.field_str("id", id),
            Event::ScenarioFinished { id, status, rounds, secs, robot_rounds_per_s } => w
                .field_str("id", id)
                .field_str("status", status.as_str())
                .field_u64("rounds", *rounds)
                .field_f64("secs", *secs)
                .field_f64("robot_rounds_per_s", *robot_rounds_per_s),
            Event::Heartbeat { done, total, eta_secs } => w
                .field_usize("done", *done)
                .field_usize("total", *total)
                .field_f64("eta_secs", *eta_secs),
            Event::JobFinished { done, panicked, secs } => w
                .field_usize("done", *done)
                .field_usize("panicked", *panicked)
                .field_f64("secs", *secs),
        }
        .finish()
    }

    /// Parse one JSON line. Unknown kinds and newer schema versions are
    /// errors: a consumer that cannot understand a line must say so
    /// rather than silently skew its counts.
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        let map = parse_flat_json(line)?;
        let version = map
            .get("v")
            .and_then(JsonScalar::as_u64)
            .ok_or_else(|| "event line missing schema version \"v\"".to_string())?;
        if version > EVENT_VERSION {
            return Err(format!(
                "event schema v{version} is newer than this reader (v{EVENT_VERSION})"
            ));
        }
        let kind = map
            .get("event")
            .and_then(JsonScalar::as_str)
            .ok_or_else(|| "event line missing \"event\" kind".to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            field(&map, kind, key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{kind}.{key} is not a string"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            field(&map, kind, key)?
                .as_u64()
                .ok_or_else(|| format!("{kind}.{key} is not an unsigned integer"))
        };
        let usize_field = |key: &str| u64_field(key).map(|v| v as usize);
        let f64_field = |key: &str| -> Result<f64, String> {
            field(&map, kind, key)?.as_f64().ok_or_else(|| format!("{kind}.{key} is not a number"))
        };
        match kind {
            "job_started" => {
                Ok(Event::JobStarted { job: str_field("job")?, total: usize_field("total")? })
            }
            "scenario_started" => Ok(Event::ScenarioStarted { id: str_field("id")? }),
            "scenario_finished" => {
                let status = str_field("status")?;
                Ok(Event::ScenarioFinished {
                    id: str_field("id")?,
                    status: Status::parse(&status)
                        .ok_or_else(|| format!("unknown scenario status {status:?}"))?,
                    rounds: u64_field("rounds")?,
                    secs: f64_field("secs")?,
                    robot_rounds_per_s: f64_field("robot_rounds_per_s")?,
                })
            }
            "heartbeat" => Ok(Event::Heartbeat {
                done: usize_field("done")?,
                total: usize_field("total")?,
                eta_secs: f64_field("eta_secs")?,
            }),
            "job_finished" => Ok(Event::JobFinished {
                done: usize_field("done")?,
                panicked: usize_field("panicked")?,
                secs: f64_field("secs")?,
            }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

fn field<'m>(
    map: &'m BTreeMap<String, JsonScalar>,
    kind: &str,
    key: &str,
) -> Result<&'m JsonScalar, String> {
    map.get(key).ok_or_else(|| format!("{kind} event missing field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::JobStarted { job: "weak-sync".into(), total: 144 },
            Event::ScenarioStarted { id: "line/n64/s3/paper".into() },
            Event::ScenarioFinished {
                id: "line/n64/s3/paper".into(),
                status: Status::Gathered,
                rounds: 123,
                secs: 0.75,
                robot_rounds_per_s: 10_496.0,
            },
            Event::ScenarioFinished {
                id: "square/n16/s1/center".into(),
                status: Status::Panicked,
                rounds: 0,
                secs: 0.01,
                robot_rounds_per_s: 0.0,
            },
            Event::Heartbeat { done: 2, total: 144, eta_secs: 53.25 },
            Event::JobFinished { done: 144, panicked: 1, secs: 54.0 },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for event in samples() {
            let line = event.to_json_line();
            assert!(line.contains("\"v\":1"), "{line}");
            assert_eq!(Event::from_json_line(&line).unwrap(), event, "line {line}");
        }
    }

    #[test]
    fn truncations_never_parse() {
        for event in samples() {
            let line = event.to_json_line();
            for cut in 1..line.len() {
                assert!(Event::from_json_line(&line[..cut]).is_err(), "cut {cut} of {line}");
            }
        }
    }

    #[test]
    fn newer_schema_and_unknown_kinds_are_rejected() {
        let err = Event::from_json_line(r#"{"v":2,"event":"job_started","job":"x","total":1}"#)
            .unwrap_err();
        assert!(err.contains("newer"), "{err}");
        let err = Event::from_json_line(r#"{"v":1,"event":"job_paused"}"#).unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
        let err = Event::from_json_line(r#"{"event":"heartbeat","done":1,"total":2}"#).unwrap_err();
        assert!(err.contains("missing schema version"), "{err}");
    }

    #[test]
    fn missing_fields_name_event_and_field() {
        let err = Event::from_json_line(r#"{"v":1,"event":"heartbeat","done":3}"#).unwrap_err();
        assert!(err.contains("heartbeat") && err.contains("total"), "{err}");
    }

    #[test]
    fn statuses_round_trip_and_reject_garbage() {
        for status in [Status::Gathered, Status::Stalled, Status::Disconnected, Status::Panicked] {
            assert_eq!(Status::parse(status.as_str()), Some(status));
        }
        assert_eq!(Status::parse("OK"), None);
        assert_eq!(Status::parse(""), None);
    }
}
