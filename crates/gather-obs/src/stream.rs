//! Event-file I/O and stream validation.
//!
//! The writer follows the campaign JSONL sink's torn-line discipline:
//! every event is written as one line and flushed immediately, and
//! appending to an existing file first repairs an unterminated tail
//! (a line cut short by a killed process) by terminating it — the torn
//! line then fails to parse as an event and is dropped by the reader,
//! never corrupting the line after it.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::event::{Event, Status};

/// Torn-line-safe, flush-per-event writer for one events file.
pub struct EventWriter {
    file: File,
}

impl EventWriter {
    /// Create (truncating) a fresh events file.
    pub fn create(path: &Path) -> io::Result<EventWriter> {
        Ok(EventWriter { file: File::create(path)? })
    }

    /// Open an events file for appending (resume). If the previous
    /// writer died mid-line, terminate the torn tail so this session's
    /// first event starts on its own line.
    pub fn append(path: &Path) -> io::Result<EventWriter> {
        let mut file = OpenOptions::new().create(true).append(true).read(true).open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
                file.flush()?;
            }
        }
        file.seek(SeekFrom::End(0))?;
        Ok(EventWriter { file })
    }

    /// Append one event and flush, so a crash can tear at most the line
    /// being written.
    pub fn emit(&mut self, event: &Event) -> io::Result<()> {
        let mut line = event.to_json_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// An events file as read back from disk.
#[derive(Clone, Debug, Default)]
pub struct EventStream {
    pub events: Vec<Event>,
    /// The file ended in an unterminated line (writer died mid-write);
    /// that tail is dropped, not parsed.
    pub torn: bool,
    /// Unparseable terminated lines dropped at segment boundaries —
    /// tears from earlier sessions, closed by a resume's append repair.
    pub skipped: usize,
}

/// Read and parse an events file. An unterminated final line marks the
/// stream torn and is dropped (exactly the sink's recovery rule). A
/// *terminated* line that fails to parse is tolerated — counted in
/// `skipped` — only where a crash can legitimately leave one: as the
/// last line, or immediately before a resume's `job_started` (the
/// append repair terminates a torn tail, and the resume opens a new
/// segment right after). Anywhere else it is corruption, and an error:
/// the flush-per-line writer never tears mid-stream.
pub fn read_events(path: &Path) -> Result<EventStream, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let torn = !text.is_empty() && !text.ends_with('\n');
    let mut lines: Vec<&str> = text.lines().collect();
    if torn {
        lines.pop();
    }
    let mut events = Vec::with_capacity(lines.len());
    let mut skipped = 0usize;
    for (i, line) in lines.iter().enumerate() {
        match Event::from_json_line(line) {
            Ok(event) => events.push(event),
            Err(e) => {
                let next_opens_segment = match lines.get(i + 1) {
                    None => true,
                    Some(next) => {
                        matches!(Event::from_json_line(next), Ok(Event::JobStarted { .. }))
                    }
                };
                if next_opens_segment {
                    skipped += 1;
                } else {
                    return Err(format!("{}:{}: {e}", path.display(), i + 1));
                }
            }
        }
    }
    Ok(EventStream { events, torn, skipped })
}

/// Incremental reader for a *live* events file: each [`poll`] parses
/// only the lines appended since the last one, holding back an
/// unterminated tail until its newline arrives. Built for
/// `campaign events tail --follow`; does no waiting itself (and reads
/// no clocks) — the caller decides when to poll again.
///
/// Tolerances mirror [`read_events`]: a terminated line that fails to
/// parse is held until the *next* line decides its fate — skipped if
/// that line opens a new segment (`job_started`, i.e. the bad line was
/// a repaired tear), fatal otherwise. A file that shrinks under the
/// reader (truncated and restarted by a fresh `create`) resets the
/// reader to the new beginning instead of misparsing from a stale
/// offset. A file that does not exist yet reads as empty, so a tail can
/// be started before its writer.
///
/// [`poll`]: FollowReader::poll
#[derive(Debug)]
pub struct FollowReader {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
    /// A terminated line that failed to parse, held (with its line
    /// number and error) until the next line classifies it.
    pending_bad: Option<(usize, String)>,
    line_no: usize,
    skipped: usize,
}

impl FollowReader {
    pub fn new(path: impl Into<PathBuf>) -> FollowReader {
        FollowReader {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
            pending_bad: None,
            line_no: 0,
            skipped: 0,
        }
    }

    /// Unparseable terminated lines skipped so far (repaired tears).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Read and parse every line completed since the last poll.
    pub fn poll(&mut self) -> Result<Vec<Event>, String> {
        let mut file = match File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("opening {}: {e}", self.path.display())),
        };
        let err_ctx = |e: io::Error| format!("reading {}: {e}", self.path.display());
        let len = file.metadata().map_err(&err_ctx)?.len();
        if len < self.offset {
            // The file was truncated and restarted under us: forget
            // everything and read the new stream from its beginning.
            self.offset = 0;
            self.partial.clear();
            self.pending_bad = None;
            self.line_no = 0;
            self.skipped = 0;
        }
        file.seek(SeekFrom::Start(self.offset)).map_err(&err_ctx)?;
        let mut fresh = Vec::new();
        file.read_to_end(&mut fresh).map_err(&err_ctx)?;
        self.offset += fresh.len() as u64;
        self.partial.extend_from_slice(&fresh);

        let mut events = Vec::new();
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = self.partial.drain(..=nl).collect();
            self.line_no += 1;
            let parsed = std::str::from_utf8(&line_bytes[..nl])
                .map_err(|e| format!("invalid UTF-8: {e}"))
                .and_then(Event::from_json_line);
            match parsed {
                Ok(event) => {
                    if let Some((bad_line, err)) = self.pending_bad.take() {
                        if matches!(event, Event::JobStarted { .. }) {
                            self.skipped += 1;
                        } else {
                            return Err(format!("{}:{bad_line}: {err}", self.path.display()));
                        }
                    }
                    events.push(event);
                }
                Err(e) => {
                    if let Some((bad_line, err)) = self.pending_bad.take() {
                        // Two bad lines in a row: the first cannot be a
                        // repaired tear, so it is corruption.
                        return Err(format!("{}:{bad_line}: {err}", self.path.display()));
                    }
                    self.pending_bad = Some((self.line_no, e));
                }
            }
        }
        Ok(events)
    }
}

/// Roll-up of a validated stream, for one-line status rendering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamSummary {
    /// Job name from the last segment's `job_started`.
    pub job: String,
    /// Scenario total from the last segment's `job_started`.
    pub total: usize,
    /// Distinct scenarios finished across all segments.
    pub finished: usize,
    /// Finished scenarios whose status was `panic`.
    pub panicked: usize,
    /// The stream ends with `job_finished` (nothing is running).
    pub complete: bool,
    /// `done` as of the last heartbeat or `job_finished`.
    pub done: usize,
    /// ETA from the last heartbeat, if any.
    pub eta_secs: Option<f64>,
    /// Elapsed seconds from `job_finished`, when complete.
    pub secs: Option<f64>,
}

/// Validate a stream's invariants and fold it into a [`StreamSummary`].
///
/// A stream is a sequence of *segments*, each opened by `job_started`
/// (a resume appends a new segment to the same file; an unterminated
/// segment's in-flight scenarios are abandoned at the next boundary).
/// Within that structure:
///
/// * every event belongs to a segment (the stream starts with
///   `job_started`, and nothing follows `job_finished` except a new
///   `job_started`);
/// * a scenario starts at most once per segment, never after it has
///   finished (a resume never re-runs finished work), and finishes only
///   while in flight — so every *finished* scenario has exactly one
///   `scenario_started`/`scenario_finished` pair in its segment;
/// * heartbeats are monotone within a segment and bounded by `total`.
pub fn validate(events: &[Event]) -> Result<StreamSummary, String> {
    use std::collections::BTreeSet;

    let mut summary = StreamSummary::default();
    let mut finished: BTreeSet<&str> = BTreeSet::new();
    let mut in_flight: BTreeSet<&str> = BTreeSet::new();
    let mut in_segment = false;
    let mut last_done = 0usize;

    for (i, event) in events.iter().enumerate() {
        let at = |what: String| format!("event {} ({}): {what}", i + 1, event.kind());
        match event {
            Event::JobStarted { job, total } => {
                // Opens a segment anywhere: at the start, after a clean
                // job_finished, or after a crashed segment — whose
                // in-flight scenarios are abandoned here.
                in_flight.clear();
                in_segment = true;
                last_done = 0;
                summary.job = job.clone();
                summary.total = *total;
                summary.complete = false;
                summary.eta_secs = None;
            }
            Event::ScenarioStarted { id } => {
                if !in_segment {
                    return Err(at(format!("scenario {id:?} started outside a job segment")));
                }
                if finished.contains(id.as_str()) {
                    return Err(at(format!("scenario {id:?} re-started after finishing")));
                }
                if !in_flight.insert(id) {
                    return Err(at(format!("scenario {id:?} started twice in one segment")));
                }
            }
            Event::ScenarioFinished { id, status, .. } => {
                if !in_flight.remove(id.as_str()) {
                    return Err(at(format!("scenario {id:?} finished without starting")));
                }
                finished.insert(id);
                if *status == Status::Panicked {
                    summary.panicked += 1;
                }
            }
            Event::Heartbeat { done, total, eta_secs } => {
                if !in_segment {
                    return Err(at("heartbeat outside a job segment".into()));
                }
                if *total != summary.total {
                    return Err(at(format!(
                        "heartbeat total {total} contradicts job total {}",
                        summary.total
                    )));
                }
                if *done > *total {
                    return Err(at(format!("heartbeat done {done} exceeds total {total}")));
                }
                if *done < last_done {
                    return Err(at(format!(
                        "heartbeat done {done} went backwards from {last_done}"
                    )));
                }
                last_done = *done;
                summary.done = *done;
                summary.eta_secs = Some(*eta_secs);
            }
            Event::JobFinished { done, secs, .. } => {
                if !in_segment {
                    return Err(at("job_finished without a matching job_started".into()));
                }
                in_segment = false;
                summary.complete = true;
                summary.done = *done;
                summary.secs = Some(*secs);
            }
        }
    }
    if summary.job.is_empty() && events.is_empty() {
        return Err("empty event stream (no job_started)".into());
    }
    if !events.is_empty() && !matches!(events[0], Event::JobStarted { .. }) {
        // Unreachable via the per-event checks above, but keep the
        // contract explicit for future event kinds.
        return Err("stream does not begin with job_started".into());
    }
    summary.finished = finished.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Status;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gather-obs-{}-{name}", std::process::id()))
    }

    fn started(id: &str) -> Event {
        Event::ScenarioStarted { id: id.into() }
    }

    fn finished(id: &str, status: Status) -> Event {
        Event::ScenarioFinished {
            id: id.into(),
            status,
            rounds: 10,
            secs: 0.5,
            robot_rounds_per_s: 100.0,
        }
    }

    #[test]
    fn write_read_validate_a_clean_stream() {
        let path = tmp("clean.ndjson");
        let mut w = EventWriter::create(&path).unwrap();
        let events = vec![
            Event::JobStarted { job: "j".into(), total: 2 },
            started("a"),
            finished("a", Status::Gathered),
            Event::Heartbeat { done: 1, total: 2, eta_secs: 0.5 },
            started("b"),
            finished("b", Status::Panicked),
            Event::Heartbeat { done: 2, total: 2, eta_secs: 0.0 },
            Event::JobFinished { done: 2, panicked: 1, secs: 1.0 },
        ];
        for e in &events {
            w.emit(e).unwrap();
        }
        drop(w);
        let stream = read_events(&path).unwrap();
        assert!(!stream.torn);
        assert_eq!(stream.events, events);
        let summary = validate(&stream.events).unwrap();
        assert_eq!(summary.finished, 2);
        assert_eq!(summary.panicked, 1);
        assert!(summary.complete);
        assert_eq!(summary.secs, Some(1.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_append_repairs_it() {
        let path = tmp("torn.ndjson");
        let mut w = EventWriter::create(&path).unwrap();
        w.emit(&Event::JobStarted { job: "j".into(), total: 1 }).unwrap();
        drop(w);
        // Simulate a writer killed mid-line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"event\":\"scenario_st").unwrap();
        drop(f);
        let stream = read_events(&path).unwrap();
        assert!(stream.torn, "unterminated tail must mark the stream torn");
        assert_eq!(stream.events.len(), 1, "the torn line is dropped, prior lines survive");
        // Resume: append repairs the tail, then new events parse clean.
        let mut w = EventWriter::append(&path).unwrap();
        w.emit(&Event::JobStarted { job: "j".into(), total: 1 }).unwrap();
        w.emit(&started("a")).unwrap();
        w.emit(&finished("a", Status::Gathered)).unwrap();
        w.emit(&Event::JobFinished { done: 1, panicked: 0, secs: 0.5 }).unwrap();
        drop(w);
        let stream = read_events(&path).unwrap();
        assert!(!stream.torn, "append terminated the torn line");
        assert_eq!(stream.skipped, 1, "the repaired tear is skipped, not fatal");
        let summary = validate(&stream.events).unwrap();
        assert!(summary.complete, "a repaired-and-resumed stream validates clean");
        assert_eq!(summary.finished, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_away_from_segment_boundaries_is_fatal() {
        let path = tmp("corrupt.ndjson");
        let mut w = EventWriter::create(&path).unwrap();
        w.emit(&Event::JobStarted { job: "j".into(), total: 1 }).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"event\":\"scenario_st\n").unwrap();
        drop(f);
        let mut w = EventWriter::append(&path).unwrap();
        // The next line is NOT a job_started, so the bad line cannot be
        // a crash tear — it is corruption and must be fatal.
        w.emit(&started("a")).unwrap();
        drop(w);
        let err = read_events(&path).unwrap_err();
        assert!(err.contains(":2:"), "corruption must name its line: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_segments_abandon_in_flight_scenarios() {
        // Session 1 dies with "b" in flight; session 2 re-runs it.
        let events = vec![
            Event::JobStarted { job: "j".into(), total: 2 },
            started("a"),
            finished("a", Status::Gathered),
            started("b"),
            // crash — no finish for "b"
            Event::JobStarted { job: "j".into(), total: 2 },
            started("b"),
            finished("b", Status::Stalled),
            Event::JobFinished { done: 2, panicked: 0, secs: 2.0 },
        ];
        let summary = validate(&events).unwrap();
        assert_eq!(summary.finished, 2);
        assert!(summary.complete);
    }

    #[test]
    fn pairing_violations_are_rejected() {
        let base = || vec![Event::JobStarted { job: "j".into(), total: 3 }];
        // Finish without start.
        let mut e = base();
        e.push(finished("a", Status::Gathered));
        assert!(validate(&e).unwrap_err().contains("without starting"));
        // Double start in one segment.
        let mut e = base();
        e.extend([started("a"), started("a")]);
        assert!(validate(&e).unwrap_err().contains("started twice"));
        // Double finish.
        let mut e = base();
        e.extend([started("a"), finished("a", Status::Gathered), finished("a", Status::Gathered)]);
        assert!(validate(&e).unwrap_err().contains("without starting"));
        // Restart after finishing (a resume must not re-run done work).
        let mut e = base();
        e.extend([
            started("a"),
            finished("a", Status::Gathered),
            Event::JobStarted { job: "j".into(), total: 3 },
            started("a"),
        ]);
        assert!(validate(&e).unwrap_err().contains("re-started after finishing"));
        // Activity outside any segment.
        let mut e = base();
        e.extend([Event::JobFinished { done: 0, panicked: 0, secs: 0.1 }, started("a")]);
        assert!(validate(&e).unwrap_err().contains("outside a job segment"));
        // Empty stream.
        assert!(validate(&[]).unwrap_err().contains("empty"));
    }

    #[test]
    fn heartbeat_invariants() {
        let base = || vec![Event::JobStarted { job: "j".into(), total: 5 }];
        let mut e = base();
        e.push(Event::Heartbeat { done: 6, total: 5, eta_secs: 0.0 });
        assert!(validate(&e).unwrap_err().contains("exceeds total"));
        let mut e = base();
        e.push(Event::Heartbeat { done: 3, total: 4, eta_secs: 0.0 });
        assert!(validate(&e).unwrap_err().contains("contradicts job total"));
        let mut e = base();
        e.extend([
            Event::Heartbeat { done: 3, total: 5, eta_secs: 1.0 },
            Event::Heartbeat { done: 2, total: 5, eta_secs: 1.0 },
        ]);
        assert!(validate(&e).unwrap_err().contains("went backwards"));
        // A resume segment resets the monotonicity baseline.
        let mut e = base();
        e.extend([
            Event::Heartbeat { done: 3, total: 5, eta_secs: 1.0 },
            Event::JobStarted { job: "j".into(), total: 5 },
            Event::Heartbeat { done: 1, total: 5, eta_secs: 1.0 },
        ]);
        assert!(validate(&e).is_ok());
    }

    #[test]
    fn follow_reader_parses_only_completed_lines() {
        let path = tmp("follow.ndjson");
        let _ = std::fs::remove_file(&path);
        let mut follow = FollowReader::new(&path);
        // The file does not exist yet: a tail may start before its writer.
        assert_eq!(follow.poll().unwrap(), vec![]);
        let mut w = EventWriter::create(&path).unwrap();
        w.emit(&Event::JobStarted { job: "j".into(), total: 2 }).unwrap();
        w.emit(&started("a")).unwrap();
        assert_eq!(
            follow.poll().unwrap(),
            vec![Event::JobStarted { job: "j".into(), total: 2 }, started("a")]
        );
        assert_eq!(follow.poll().unwrap(), vec![], "nothing new appended");
        // An unterminated tail is held back until its newline arrives.
        let half = finished("a", Status::Gathered).to_json_line();
        let (left, right) = half.split_at(half.len() / 2);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(left.as_bytes()).unwrap();
        f.flush().unwrap();
        assert_eq!(follow.poll().unwrap(), vec![], "partial line must not parse");
        f.write_all(right.as_bytes()).unwrap();
        f.write_all(b"\n").unwrap();
        drop(f);
        assert_eq!(follow.poll().unwrap(), vec![finished("a", Status::Gathered)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follow_reader_skips_repaired_tears_and_rejects_corruption() {
        let path = tmp("follow-tear.ndjson");
        let mut w = EventWriter::create(&path).unwrap();
        w.emit(&Event::JobStarted { job: "j".into(), total: 1 }).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"event\":\"scenario_st\n").unwrap();
        drop(f);
        let mut follow = FollowReader::new(&path);
        // The bad line is held: it may still turn out to be a tear.
        assert_eq!(follow.poll().unwrap().len(), 1);
        assert_eq!(follow.skipped(), 0);
        // A resume segment right after classifies it as a repaired tear.
        let mut w = EventWriter::append(&path).unwrap();
        w.emit(&Event::JobStarted { job: "j".into(), total: 1 }).unwrap();
        w.emit(&started("a")).unwrap();
        drop(w);
        assert_eq!(follow.poll().unwrap().len(), 2);
        assert_eq!(follow.skipped(), 1);
        // The same bad line mid-stream is corruption and names its line.
        let mut follow = FollowReader::new(&path);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"event\":\"scenario_st\n").unwrap();
        drop(f);
        let mut w = EventWriter::append(&path).unwrap();
        w.emit(&finished("a", Status::Gathered)).unwrap();
        drop(w);
        let err = follow.poll().unwrap_err();
        assert!(err.contains(":5:"), "corruption must name its line: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follow_reader_resets_when_the_file_is_truncated() {
        let path = tmp("follow-trunc.ndjson");
        let mut w = EventWriter::create(&path).unwrap();
        w.emit(&Event::JobStarted { job: "one".into(), total: 5 }).unwrap();
        w.emit(&started("a")).unwrap();
        drop(w);
        let mut follow = FollowReader::new(&path);
        assert_eq!(follow.poll().unwrap().len(), 2);
        // A fresh `create` truncates; the reader must start over rather
        // than parse from its stale offset.
        let mut w = EventWriter::create(&path).unwrap();
        w.emit(&Event::JobStarted { job: "two".into(), total: 1 }).unwrap();
        drop(w);
        assert_eq!(follow.poll().unwrap(), vec![Event::JobStarted { job: "two".into(), total: 1 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incomplete_stream_reports_not_complete() {
        let events = vec![
            Event::JobStarted { job: "j".into(), total: 2 },
            started("a"),
            finished("a", Status::Gathered),
            Event::Heartbeat { done: 1, total: 2, eta_secs: 9.5 },
        ];
        let summary = validate(&events).unwrap();
        assert!(!summary.complete);
        assert_eq!(summary.done, 1);
        assert_eq!(summary.eta_secs, Some(9.5));
        assert_eq!(summary.secs, None);
    }
}
