//! # gather-obs
//!
//! Structured campaign observability: the versioned NDJSON event stream
//! a running campaign emits (`--events FILE`), the torn-line-safe
//! writer that produces it, and the validating reader its consumers
//! share.
//!
//! One event per line, flat JSON, every line carrying the schema
//! version (`"v"`) and the event kind (`"event"`). The stream is the
//! exact progress protocol a future `campaign serve` speaks over a
//! socket — file and socket consumers parse identical bytes:
//!
//! | event               | fields                                           |
//! |---------------------|--------------------------------------------------|
//! | `job_started`       | `job`, `total`                                   |
//! | `scenario_started`  | `id`                                             |
//! | `scenario_finished` | `id`, `status`, `rounds`, `secs`, `robot_rounds_per_s` |
//! | `heartbeat`         | `done`, `total`, `eta_secs`                      |
//! | `job_finished`      | `done`, `panicked`, `secs`                       |
//!
//! A resumed campaign appends a fresh `job_started` to the same file,
//! opening a new *segment*; scenarios left in flight by a killed run
//! are implicitly abandoned by the segment boundary, which is how the
//! exactly-one-`started`/`finished`-pair-per-completed-scenario
//! invariant survives crashes ([`validate`]).

pub mod event;
pub mod stream;

pub use event::{Event, Status, EVENT_VERSION};
pub use stream::{read_events, validate, EventStream, EventWriter, StreamSummary};
