//! # gather-obs
//!
//! Structured campaign observability: the versioned NDJSON event stream
//! a running campaign emits (`--events FILE`), the torn-line-safe
//! writer that produces it, and the validating reader its consumers
//! share.
//!
//! One event per line, flat JSON, every line carrying the schema
//! version (`"v"`) and the event kind (`"event"`). The stream is the
//! exact progress protocol `campaign serve` speaks over its socket —
//! file and socket consumers parse identical bytes:
//!
//! | event               | fields                                           |
//! |---------------------|--------------------------------------------------|
//! | `job_started`       | `job`, `total`                                   |
//! | `scenario_started`  | `id`                                             |
//! | `scenario_finished` | `id`, `status`, `rounds`, `secs`, `robot_rounds_per_s` |
//! | `heartbeat`         | `done`, `total`, `eta_secs`                      |
//! | `job_finished`      | `done`, `panicked`, `secs`                       |
//!
//! A resumed campaign appends a fresh `job_started` to the same file,
//! opening a new *segment*; scenarios left in flight by a killed run
//! are implicitly abandoned by the segment boundary, which is how the
//! exactly-one-`started`/`finished`-pair-per-completed-scenario
//! invariant survives crashes ([`validate`]).
//!
//! The campaign service's control plane ([`proto`]) rides the same wire
//! in the same style, with the kind carried in `"msg"` instead of
//! `"event"` so both vocabularies share a connection:
//!
//! | msg             | fields                                               |
//! |-----------------|------------------------------------------------------|
//! | `submit_job`    | `name`, `out`, `spec_*`                              |
//! | `job_accepted`  | `job`, `total`, `cached`                             |
//! | `lease_request` | `worker`, `capacity`                                 |
//! | `lease_granted` | `job`, `lease`, `indexes`, `expires_in_ms`, `drained`, `spec_*` |
//! | `result_batch`  | `job`, `lease`, `index`, `record`, `secs`            |
//! | `job_done`      | `job`, `total`, `cached`, `executed`, `panicked`, `secs` |

pub mod event;
pub mod proto;
pub mod stream;

pub use event::{Event, Status, EVENT_VERSION};
pub use proto::{validate_submission, Frame, Message, SubmissionSummary, PROTO_VERSION};
pub use stream::{read_events, validate, EventStream, EventWriter, FollowReader, StreamSummary};
