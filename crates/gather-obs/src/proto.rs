//! The campaign-service request/response vocabulary.
//!
//! `campaign serve` speaks flat NDJSON over a local Unix socket. Progress
//! streaming reuses the v1 [`Event`](crate::Event) vocabulary verbatim;
//! this module adds the small control-plane layer around it, in the same
//! wire style: one flat JSON object per line, versioned with `"v"`, the
//! kind carried in `"msg"` (events use `"event"`, so the two vocabularies
//! can share a connection — see [`Frame`]).
//!
//! | msg             | direction        | fields |
//! |-----------------|------------------|--------|
//! | `submit_job`    | client → server  | `name`, `out`, `spec_*` |
//! | `job_accepted`  | server → client  | `job`, `total`, `cached` |
//! | `lease_request` | worker → server  | `worker`, `capacity` |
//! | `lease_granted` | server → worker  | `job`, `lease`, `indexes`, `expires_in_ms`, `drained`, `spec_*` |
//! | `result_batch`  | worker → server  | `job`, `lease`, `index`, `record`, `secs` |
//! | `job_done`      | server → client  | `job`, `total`, `cached`, `executed`, `panicked`, `secs` |
//!
//! Spec axes travel as string fields prefixed `spec_` (the same
//! comma/range syntax spec files use), so a worker can re-expand the
//! spec deterministically and a lease only has to carry scenario
//! *indexes* into that expansion.

use gather_analysis::{parse_flat_json, JsonObjWriter, JsonScalar};
use std::collections::BTreeMap;

use crate::event::Event;
use crate::stream::{validate, StreamSummary};

/// Schema version stamped into every message line as `"v"`. Shared
/// half-duplex with the event vocabulary's version: both are v1.
pub const PROTO_VERSION: u64 = 1;

/// One control-plane message of the campaign service.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client asks the server to run a sweep. `spec` holds the flat
    /// string axes (`families`, `sizes`, ...); `out` is where the merged
    /// JSONL lands (resolved to an absolute path by the client).
    SubmitJob { name: String, out: String, spec: BTreeMap<String, String> },
    /// Server acknowledged a submission: job id, expansion size, and how
    /// many scenarios were already satisfied by the result cache.
    JobAccepted { job: u64, total: usize, cached: usize },
    /// Worker asks for up to `capacity` scenarios to run.
    LeaseRequest { worker: String, capacity: usize },
    /// Server's answer to a lease request. An empty `indexes` with
    /// `drained: false` means "nothing leasable right now, poll again";
    /// `drained: true` means the server is shutting down and the worker
    /// should exit. A non-empty grant carries the owning job's spec so
    /// the worker can expand it deterministically.
    LeaseGranted {
        job: u64,
        lease: u64,
        indexes: Vec<usize>,
        expires_in_ms: u64,
        drained: bool,
        spec: BTreeMap<String, String>,
    },
    /// Worker streams one finished scenario back: the record is the
    /// exact JSONL line a batch run would have written. Carries the job
    /// id so a result from an already-expired lease can still be
    /// accepted (records are deterministic — first write wins). `secs`
    /// is the worker-measured wall time, for the `scenario_finished`
    /// progress event only — it never reaches the record or the cache.
    ResultBatch { job: u64, lease: u64, index: usize, record: String, secs: f64 },
    /// Server's final word on a job: the merged output file is written
    /// and its coverage proof checked. `executed + cached == total`.
    JobDone { job: u64, total: usize, cached: usize, executed: usize, panicked: usize, secs: f64 },
}

impl Message {
    /// Wire token of this message's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::SubmitJob { .. } => "submit_job",
            Message::JobAccepted { .. } => "job_accepted",
            Message::LeaseRequest { .. } => "lease_request",
            Message::LeaseGranted { .. } => "lease_granted",
            Message::ResultBatch { .. } => "result_batch",
            Message::JobDone { .. } => "job_done",
        }
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let w = JsonObjWriter::new().field_u64("v", PROTO_VERSION).field_str("msg", self.kind());
        match self {
            Message::SubmitJob { name, out, spec } => {
                let mut w = w.field_str("name", name).field_str("out", out);
                for (key, value) in spec {
                    w = w.field_str(&format!("spec_{key}"), value);
                }
                w
            }
            Message::JobAccepted { job, total, cached } => {
                w.field_u64("job", *job).field_usize("total", *total).field_usize("cached", *cached)
            }
            Message::LeaseRequest { worker, capacity } => {
                w.field_str("worker", worker).field_usize("capacity", *capacity)
            }
            Message::LeaseGranted { job, lease, indexes, expires_in_ms, drained, spec } => {
                let joined = indexes.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
                let mut w = w
                    .field_u64("job", *job)
                    .field_u64("lease", *lease)
                    .field_str("indexes", &joined)
                    .field_u64("expires_in_ms", *expires_in_ms)
                    .field_bool("drained", *drained);
                for (key, value) in spec {
                    w = w.field_str(&format!("spec_{key}"), value);
                }
                w
            }
            Message::ResultBatch { job, lease, index, record, secs } => w
                .field_u64("job", *job)
                .field_u64("lease", *lease)
                .field_usize("index", *index)
                .field_str("record", record)
                .field_f64("secs", *secs),
            Message::JobDone { job, total, cached, executed, panicked, secs } => w
                .field_u64("job", *job)
                .field_usize("total", *total)
                .field_usize("cached", *cached)
                .field_usize("executed", *executed)
                .field_usize("panicked", *panicked)
                .field_f64("secs", *secs),
        }
        .finish()
    }

    /// Parse one JSON line. Unknown kinds and newer schema versions are
    /// errors, exactly as for events: a peer that cannot understand a
    /// line must say so rather than silently drop control traffic.
    pub fn from_json_line(line: &str) -> Result<Message, String> {
        let map = parse_flat_json(line)?;
        let version = map
            .get("v")
            .and_then(JsonScalar::as_u64)
            .ok_or_else(|| "message line missing schema version \"v\"".to_string())?;
        if version > PROTO_VERSION {
            return Err(format!(
                "message schema v{version} is newer than this reader (v{PROTO_VERSION})"
            ));
        }
        let kind = map
            .get("msg")
            .and_then(JsonScalar::as_str)
            .ok_or_else(|| "message line missing \"msg\" kind".to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            field(&map, kind, key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{kind}.{key} is not a string"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            field(&map, kind, key)?
                .as_u64()
                .ok_or_else(|| format!("{kind}.{key} is not an unsigned integer"))
        };
        let usize_field = |key: &str| u64_field(key).map(|v| v as usize);
        let f64_field = |key: &str| -> Result<f64, String> {
            field(&map, kind, key)?.as_f64().ok_or_else(|| format!("{kind}.{key} is not a number"))
        };
        let bool_field = |key: &str| -> Result<bool, String> {
            field(&map, kind, key)?
                .as_bool()
                .ok_or_else(|| format!("{kind}.{key} is not a boolean"))
        };
        let spec_fields = || -> Result<BTreeMap<String, String>, String> {
            let mut spec = BTreeMap::new();
            for (key, value) in &map {
                if let Some(axis) = key.strip_prefix("spec_") {
                    let value =
                        value.as_str().ok_or_else(|| format!("{kind}.{key} is not a string"))?;
                    spec.insert(axis.to_string(), value.to_string());
                }
            }
            Ok(spec)
        };
        match kind {
            "submit_job" => Ok(Message::SubmitJob {
                name: str_field("name")?,
                out: str_field("out")?,
                spec: spec_fields()?,
            }),
            "job_accepted" => Ok(Message::JobAccepted {
                job: u64_field("job")?,
                total: usize_field("total")?,
                cached: usize_field("cached")?,
            }),
            "lease_request" => Ok(Message::LeaseRequest {
                worker: str_field("worker")?,
                capacity: usize_field("capacity")?,
            }),
            "lease_granted" => Ok(Message::LeaseGranted {
                job: u64_field("job")?,
                lease: u64_field("lease")?,
                indexes: parse_indexes(kind, &str_field("indexes")?)?,
                expires_in_ms: u64_field("expires_in_ms")?,
                drained: bool_field("drained")?,
                spec: spec_fields()?,
            }),
            "result_batch" => Ok(Message::ResultBatch {
                job: u64_field("job")?,
                lease: u64_field("lease")?,
                index: usize_field("index")?,
                record: str_field("record")?,
                secs: f64_field("secs")?,
            }),
            "job_done" => Ok(Message::JobDone {
                job: u64_field("job")?,
                total: usize_field("total")?,
                cached: usize_field("cached")?,
                executed: usize_field("executed")?,
                panicked: usize_field("panicked")?,
                secs: f64_field("secs")?,
            }),
            other => Err(format!("unknown message kind {other:?}")),
        }
    }
}

fn parse_indexes(kind: &str, joined: &str) -> Result<Vec<usize>, String> {
    if joined.is_empty() {
        return Ok(Vec::new());
    }
    joined
        .split(',')
        .map(|tok| {
            tok.parse::<usize>()
                .map_err(|_| format!("{kind}.indexes has a non-numeric entry {tok:?}"))
        })
        .collect()
}

fn field<'m>(
    map: &'m BTreeMap<String, JsonScalar>,
    kind: &str,
    key: &str,
) -> Result<&'m JsonScalar, String> {
    map.get(key).ok_or_else(|| format!("{kind} message missing field {key:?}"))
}

/// One line of a service connection: either a progress [`Event`] or a
/// control [`Message`], told apart by which kind key the line carries.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    Event(Event),
    Message(Message),
}

impl Frame {
    pub fn to_json_line(&self) -> String {
        match self {
            Frame::Event(event) => event.to_json_line(),
            Frame::Message(message) => message.to_json_line(),
        }
    }

    /// Parse one line of mixed event/message traffic. A line carrying
    /// both (or neither) kind key is malformed.
    pub fn from_json_line(line: &str) -> Result<Frame, String> {
        let map = parse_flat_json(line)?;
        match (map.contains_key("event"), map.contains_key("msg")) {
            (true, false) => Event::from_json_line(line).map(Frame::Event),
            (false, true) => Message::from_json_line(line).map(Frame::Message),
            (true, true) => Err("frame carries both \"event\" and \"msg\" kinds".into()),
            (false, false) => Err("frame carries neither \"event\" nor \"msg\" kind".into()),
        }
    }
}

/// What a validated submission connection adds up to.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmissionSummary {
    pub job: u64,
    pub total: usize,
    pub cached: usize,
    pub executed: usize,
    pub panicked: usize,
    pub secs: f64,
    /// The embedded progress stream's own roll-up.
    pub stream: StreamSummary,
}

/// Validate everything a submitter's connection received: exactly one
/// `job_accepted` first, then a well-formed complete v1 event stream
/// (checked with the stream [`validate`]), then exactly one `job_done`
/// whose counters agree with both the acceptance and the events.
pub fn validate_submission(frames: &[Frame]) -> Result<SubmissionSummary, String> {
    let Some((first, rest)) = frames.split_first() else {
        return Err("empty submission stream (no job_accepted)".into());
    };
    let Frame::Message(Message::JobAccepted { job, total, cached }) = first else {
        return Err(format!("submission does not begin with job_accepted (got {first:?})"));
    };
    let Some((last, middle)) = rest.split_last() else {
        return Err("submission ends after job_accepted (no job_done)".into());
    };
    let Frame::Message(Message::JobDone {
        job: done_job,
        total: done_total,
        cached: done_cached,
        executed,
        panicked,
        secs,
    }) = last
    else {
        return Err(format!("submission does not end with job_done (got {last:?})"));
    };
    let mut events = Vec::with_capacity(middle.len());
    for frame in middle {
        match frame {
            Frame::Event(event) => events.push(event.clone()),
            Frame::Message(m) => {
                return Err(format!("unexpected {} message inside the progress stream", m.kind()))
            }
        }
    }
    let stream = validate(&events)?;
    if done_job != job {
        return Err(format!("job_done is for job {done_job}, but job {job} was accepted"));
    }
    if done_total != total || done_cached != cached {
        return Err(format!(
            "job_done counters (total {done_total}, cached {done_cached}) contradict \
             job_accepted (total {total}, cached {cached})"
        ));
    }
    if executed + cached != *total {
        return Err(format!(
            "job_done executed {executed} + cached {cached} does not cover total {total}"
        ));
    }
    if !stream.complete {
        return Err("progress stream inside the submission never reached job_finished".into());
    }
    if stream.finished != *total {
        return Err(format!(
            "progress stream finished {} scenarios, job total is {total}",
            stream.finished
        ));
    }
    if stream.panicked != *panicked {
        return Err(format!(
            "job_done panicked {panicked} contradicts the event stream's {}",
            stream.panicked
        ));
    }
    Ok(SubmissionSummary {
        job: *job,
        total: *total,
        cached: *cached,
        executed: *executed,
        panicked: *panicked,
        secs: *secs,
        stream,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Status;

    fn spec() -> BTreeMap<String, String> {
        BTreeMap::from([
            ("families".to_string(), "line,square".to_string()),
            ("sizes".to_string(), "16,32".to_string()),
            ("seeds".to_string(), "0..2".to_string()),
        ])
    }

    fn samples() -> Vec<Message> {
        vec![
            Message::SubmitJob {
                name: "weak-sync".into(),
                out: "/tmp/weak.jsonl".into(),
                spec: spec(),
            },
            Message::JobAccepted { job: 3, total: 200, cached: 24 },
            Message::LeaseRequest { worker: "w1".into(), capacity: 8 },
            Message::LeaseGranted {
                job: 3,
                lease: 17,
                indexes: vec![0, 4, 9],
                expires_in_ms: 60_000,
                drained: false,
                spec: spec(),
            },
            Message::LeaseGranted {
                job: 0,
                lease: 0,
                indexes: vec![],
                expires_in_ms: 0,
                drained: true,
                spec: BTreeMap::new(),
            },
            Message::ResultBatch {
                job: 3,
                lease: 17,
                index: 4,
                record: r#"{"id":"line/n16/s1/paper","gathered":true}"#.into(),
                secs: 0.25,
            },
            Message::JobDone {
                job: 3,
                total: 200,
                cached: 24,
                executed: 176,
                panicked: 1,
                secs: 9.5,
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for message in samples() {
            let line = message.to_json_line();
            assert!(line.contains("\"v\":1"), "{line}");
            assert_eq!(Message::from_json_line(&line).unwrap(), message, "line {line}");
        }
    }

    #[test]
    fn truncations_never_parse() {
        for message in samples() {
            let line = message.to_json_line();
            for cut in 1..line.len() {
                assert!(Message::from_json_line(&line[..cut]).is_err(), "cut {cut} of {line}");
            }
        }
    }

    #[test]
    fn newer_schema_and_unknown_kinds_are_rejected() {
        let err =
            Message::from_json_line(r#"{"v":2,"msg":"lease_request","worker":"w","capacity":1}"#)
                .unwrap_err();
        assert!(err.contains("newer"), "{err}");
        let err = Message::from_json_line(r#"{"v":1,"msg":"job_paused"}"#).unwrap_err();
        assert!(err.contains("unknown message kind"), "{err}");
        let err = Message::from_json_line(r#"{"msg":"lease_request","worker":"w","capacity":1}"#)
            .unwrap_err();
        assert!(err.contains("missing schema version"), "{err}");
    }

    #[test]
    fn missing_fields_name_message_and_field() {
        let err = Message::from_json_line(r#"{"v":1,"msg":"job_accepted","job":1,"total":4}"#)
            .unwrap_err();
        assert!(err.contains("job_accepted") && err.contains("cached"), "{err}");
        let err = Message::from_json_line(
            r#"{"v":1,"msg":"lease_granted","job":1,"lease":2,"indexes":"3,x","expires_in_ms":1,"drained":false}"#,
        )
        .unwrap_err();
        assert!(err.contains("non-numeric"), "{err}");
    }

    #[test]
    fn frames_dispatch_on_the_kind_key() {
        let event = Event::Heartbeat { done: 1, total: 2, eta_secs: 0.5 };
        let message = Message::LeaseRequest { worker: "w".into(), capacity: 4 };
        assert_eq!(
            Frame::from_json_line(&event.to_json_line()).unwrap(),
            Frame::Event(event.clone())
        );
        assert_eq!(
            Frame::from_json_line(&message.to_json_line()).unwrap(),
            Frame::Message(message)
        );
        let err =
            Frame::from_json_line(r#"{"v":1,"event":"heartbeat","msg":"job_done"}"#).unwrap_err();
        assert!(err.contains("both"), "{err}");
        let err = Frame::from_json_line(r#"{"v":1,"done":3}"#).unwrap_err();
        assert!(err.contains("neither"), "{err}");
    }

    fn submission() -> Vec<Frame> {
        vec![
            Frame::Message(Message::JobAccepted { job: 7, total: 2, cached: 1 }),
            Frame::Event(Event::JobStarted { job: "j".into(), total: 2 }),
            Frame::Event(Event::ScenarioStarted { id: "a".into() }),
            Frame::Event(Event::ScenarioFinished {
                id: "a".into(),
                status: Status::Gathered,
                rounds: 3,
                secs: 0.0,
                robot_rounds_per_s: 0.0,
            }),
            Frame::Event(Event::ScenarioStarted { id: "b".into() }),
            Frame::Event(Event::ScenarioFinished {
                id: "b".into(),
                status: Status::Stalled,
                rounds: 9,
                secs: 0.2,
                robot_rounds_per_s: 100.0,
            }),
            Frame::Event(Event::JobFinished { done: 2, panicked: 0, secs: 0.2 }),
            Frame::Message(Message::JobDone {
                job: 7,
                total: 2,
                cached: 1,
                executed: 1,
                panicked: 0,
                secs: 0.2,
            }),
        ]
    }

    #[test]
    fn a_clean_submission_validates() {
        let summary = validate_submission(&submission()).unwrap();
        assert_eq!(summary.job, 7);
        assert_eq!(summary.total, 2);
        assert_eq!(summary.cached, 1);
        assert_eq!(summary.executed, 1);
        assert_eq!(summary.stream.finished, 2);
        assert!(summary.stream.complete);
    }

    #[test]
    fn submission_violations_are_rejected() {
        // Missing job_accepted.
        let frames = submission()[1..].to_vec();
        assert!(validate_submission(&frames).unwrap_err().contains("begin with job_accepted"));
        // Missing job_done.
        let frames = submission()[..submission().len() - 1].to_vec();
        assert!(validate_submission(&frames).unwrap_err().contains("end with job_done"));
        // Counter mismatch between accept and done.
        let mut frames = submission();
        let last = frames.last_mut().unwrap();
        *last = Frame::Message(Message::JobDone {
            job: 7,
            total: 2,
            cached: 0,
            executed: 1,
            panicked: 0,
            secs: 0.2,
        });
        assert!(validate_submission(&frames).unwrap_err().contains("contradict"));
        // A control message where only events may appear.
        let mut frames = submission();
        frames.insert(2, Frame::Message(Message::LeaseRequest { worker: "w".into(), capacity: 1 }));
        assert!(validate_submission(&frames).unwrap_err().contains("inside the progress stream"));
        // The event stream must actually cover the job.
        let mut frames = submission();
        frames.remove(5); // drop b's scenario_finished
        frames.remove(4); // drop b's scenario_started
        assert!(validate_submission(&frames).unwrap_err().contains("finished 1 scenarios"));
        assert!(validate_submission(&[]).unwrap_err().contains("empty"));
    }
}
