//! Property tests for the event stream: scripted campaign histories —
//! resumes, crashes, panics included — always validate with the counts
//! they were built from, survive the file round trip byte-exactly, and
//! torn tails are detected, dropped, and repaired by a resume's append.

use std::collections::BTreeSet;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};

use gather_obs::{read_events, validate, Event, EventWriter, Status};
use proptest::prelude::*;

/// A fresh temp path per test case (cases run sequentially, but leaked
/// files from a failed case must not collide with the next run).
fn tmp(name: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("gather-obs-props-{}-{name}-{seq}.ndjson", std::process::id()))
}

/// One scripted segment: which scenario slots run (with a status
/// selector each), and whether the segment "crashes" leaving a
/// scenario in flight for the next segment to abandon.
type Segment = (Vec<(usize, u8)>, bool);

fn status_for(sel: u8) -> Status {
    match sel % 4 {
        0 => Status::Gathered,
        1 => Status::Stalled,
        2 => Status::Disconnected,
        _ => Status::Panicked,
    }
}

/// Expand a script into the event list a well-behaved campaign would
/// emit, plus the ground truth the validator must recover: distinct
/// finished scenarios, panic count, and completeness.
fn build_history(
    total: usize,
    segments: &[Segment],
    last_clean: bool,
) -> (Vec<Event>, BTreeSet<usize>, usize) {
    let mut events = Vec::new();
    let mut finished: BTreeSet<usize> = BTreeSet::new();
    let mut panicked = 0usize;
    for (s, (runs, crash)) in segments.iter().enumerate() {
        events.push(Event::JobStarted { job: "prop".into(), total });
        let mut done_in_segment = 0usize;
        for &(slot, sel) in runs {
            let slot = slot % total;
            // A resume never re-runs finished work, and a segment never
            // runs the same scenario twice.
            if !finished.insert(slot) {
                continue;
            }
            let id = format!("s{slot}");
            events.push(Event::ScenarioStarted { id: id.clone() });
            let status = status_for(sel);
            if status == Status::Panicked {
                panicked += 1;
            }
            events.push(Event::ScenarioFinished {
                id,
                status,
                rounds: u64::from(sel),
                secs: f64::from(sel) / 8.0,
                robot_rounds_per_s: f64::from(sel) * 3.0,
            });
            done_in_segment += 1;
            events.push(Event::Heartbeat {
                done: done_in_segment,
                total,
                eta_secs: f64::from(sel) / 2.0,
            });
        }
        let last = s + 1 == segments.len();
        if *crash && !last {
            // The crash tears mid-scenario: a started-but-unfinished
            // scenario the next segment's job_started must abandon.
            if let Some(slot) = (0..total).find(|sl| !finished.contains(sl)) {
                events.push(Event::ScenarioStarted { id: format!("s{slot}") });
            }
        }
        if last && last_clean {
            events.push(Event::JobFinished { done: done_in_segment, panicked, secs: 1.5 });
        }
    }
    (events, finished, panicked)
}

fn segments_strategy() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        (prop::collection::vec((0usize..12, 0u8..8), 0..10), prop::bool::ANY),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn scripted_histories_validate_with_matching_counts(
        total in 1usize..12,
        segments in segments_strategy(),
        last_clean in prop::bool::ANY,
    ) {
        let (events, finished, panicked) = build_history(total, &segments, last_clean);
        let summary = validate(&events).expect("a well-behaved history validates");
        prop_assert_eq!(summary.finished, finished.len());
        prop_assert_eq!(summary.panicked, panicked);
        prop_assert_eq!(summary.complete, last_clean);
        prop_assert_eq!(summary.total, total);
        prop_assert_eq!(summary.job.as_str(), "prop");
    }

    #[test]
    fn histories_survive_the_file_round_trip(
        total in 1usize..12,
        segments in segments_strategy(),
        last_clean in prop::bool::ANY,
    ) {
        let (events, _, _) = build_history(total, &segments, last_clean);
        let path = tmp("roundtrip");
        // Each job_started after the first is a resume: append, like the
        // campaign's ProgressReporter does.
        let mut writer: Option<EventWriter> = None;
        for event in &events {
            if matches!(event, Event::JobStarted { .. }) {
                writer = Some(if writer.is_none() {
                    EventWriter::create(&path).unwrap()
                } else {
                    EventWriter::append(&path).unwrap()
                });
            }
            writer.as_mut().unwrap().emit(event).unwrap();
        }
        let stream = read_events(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(!stream.torn);
        prop_assert_eq!(stream.skipped, 0usize);
        prop_assert_eq!(stream.events, events);
    }

    #[test]
    fn torn_tails_are_detected_dropped_and_repaired(
        total in 1usize..12,
        segments in segments_strategy(),
        frac in 1u32..1000,
    ) {
        let (events, _, _) = build_history(total, &segments, true);
        let path = tmp("torn");
        let mut w = EventWriter::create(&path).unwrap();
        for event in &events {
            w.emit(event).unwrap();
        }
        drop(w);
        // A writer killed mid-line leaves a strict prefix of an event
        // with no trailing newline.
        let line = Event::ScenarioStarted { id: "victim".into() }.to_json_line();
        let cut = 1 + (line.len() - 2) * frac as usize / 1000;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&line.as_bytes()[..cut]).unwrap();
        drop(f);

        let stream = read_events(&path).unwrap();
        prop_assert!(stream.torn, "unterminated tail must mark the stream torn");
        prop_assert_eq!(&stream.events, &events);

        // Resume: append repairs the tail; the terminated tear sits
        // right before the new segment and is skipped, not fatal.
        let mut w = EventWriter::append(&path).unwrap();
        w.emit(&Event::JobStarted { job: "prop".into(), total }).unwrap();
        w.emit(&Event::JobFinished { done: 0, panicked: 0, secs: 0.1 }).unwrap();
        drop(w);
        let stream = read_events(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(!stream.torn);
        prop_assert_eq!(stream.skipped, 1usize);
        prop_assert_eq!(stream.events.len(), events.len() + 2);
        let summary = validate(&stream.events).expect("repaired stream validates");
        prop_assert!(summary.complete);
    }

    #[test]
    fn duplicated_finish_events_are_rejected(
        total in 1usize..12,
        segments in segments_strategy(),
        last_clean in prop::bool::ANY,
    ) {
        let (mut events, finished, _) = build_history(total, &segments, last_clean);
        if finished.is_empty() {
            return Ok(()); // nothing finished, nothing to duplicate
        }
        let at = events
            .iter()
            .position(|e| matches!(e, Event::ScenarioFinished { .. }))
            .expect("a finished scenario has a finish event");
        let dup = events[at].clone();
        events.insert(at + 1, dup);
        let err = validate(&events).expect_err("a double finish is a protocol violation");
        prop_assert!(err.contains("without starting"), "unexpected error: {}", err);
    }
}
