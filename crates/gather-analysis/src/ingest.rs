//! Flat-JSON ingestion and emission for streamed experiment results.
//!
//! Campaign runs (the `gather-campaign` crate) stream one JSON object
//! per line; this module owns the wire format so every consumer —
//! summaries, future dashboards, ad-hoc scripts — parses it the same
//! way. Hand-rolled like the table renderers: the schema is flat
//! (scalar fields only), so a full JSON tree is not needed and the
//! dependency footprint stays at the pre-approved set.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A scalar field value of a flat JSON object. Integer-looking tokens
/// are kept as integers so 64-bit values (seeds, round counts) round
/// trip exactly instead of losing precision through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonScalar {
    Str(String),
    Int(i128),
    Num(f64),
    Bool(bool),
    Null,
}

impl JsonScalar {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Int(v) => Some(*v as f64),
            JsonScalar::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::Int(v) => u64::try_from(*v).ok(),
            JsonScalar::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v < u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonScalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Incremental writer for one flat JSON object. Field order is the
/// insertion order, so emission is byte-deterministic.
pub struct JsonObjWriter {
    buf: String,
}

impl Default for JsonObjWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObjWriter {
    pub fn new() -> Self {
        JsonObjWriter { buf: String::from("{") }
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", escape_json(key), escape_json(value));
        self
    }

    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", escape_json(key), value);
        self
    }

    pub fn field_usize(self, key: &str, value: usize) -> Self {
        self.field_u64(key, value as u64)
    }

    /// Emit `value` via Rust's shortest-round-trip float formatting, so
    /// the parser recovers it bit-exactly. Non-finite values have no
    /// JSON literal and are written as `0` — callers measuring durations
    /// never produce them.
    pub fn field_f64(mut self, key: &str, value: f64) -> Self {
        self.sep();
        let value = if value.is_finite() { value } else { 0.0 };
        // Bare integral floats ("3") would parse back as Int; that still
        // satisfies as_f64, so no decoration is needed.
        let _ = write!(self.buf, "{}:{}", escape_json(key), value);
        self
    }

    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", escape_json(key), value);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Quote and escape a string as a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse one line holding a flat JSON object (scalar values only).
///
/// Returns an error for malformed input — including a line truncated by
/// a killed writer, which is how campaign resume detects an incomplete
/// trailing record.
pub fn parse_flat_json(line: &str) -> Result<BTreeMap<String, JsonScalar>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            out.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("unterminated \\u escape")?;
                            let d = (d as char).to_digit(16).ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s =
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonScalar, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonScalar::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonScalar::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonScalar::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonScalar::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                // Exact integers first (u64 seeds exceed f64's 2^53
                // mantissa); fall back to f64 for fractions/exponents.
                if let Ok(v) = text.parse::<i128>() {
                    return Ok(JsonScalar::Int(v));
                }
                text.parse::<f64>()
                    .map(JsonScalar::Num)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonScalar) -> Result<JsonScalar, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_record() {
        let line = JsonObjWriter::new()
            .field_str("id", "line/n64/s3/paper")
            .field_u64("rounds", 123)
            .field_usize("n", 64)
            .field_bool("gathered", true)
            .finish();
        assert_eq!(line, r#"{"id":"line/n64/s3/paper","rounds":123,"n":64,"gathered":true}"#);
        let map = parse_flat_json(&line).unwrap();
        assert_eq!(map["id"].as_str(), Some("line/n64/s3/paper"));
        assert_eq!(map["rounds"].as_u64(), Some(123));
        assert_eq!(map["gathered"].as_bool(), Some(true));
        assert_eq!(map["n"].as_f64(), Some(64.0));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f→";
        let line = JsonObjWriter::new().field_str("k", nasty).finish();
        let map = parse_flat_json(&line).unwrap();
        assert_eq!(map["k"].as_str(), Some(nasty));
    }

    #[test]
    fn truncated_lines_are_rejected() {
        let full = JsonObjWriter::new().field_str("id", "x").field_u64("n", 9).finish();
        for cut in 1..full.len() {
            assert!(parse_flat_json(&full[..cut]).is_err(), "cut at {cut} parsed");
        }
        assert!(parse_flat_json(&full).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse_flat_json(r#"{"a":1} extra"#).is_err());
        assert!(parse_flat_json(r#"{"a":nope}"#).is_err());
        assert!(parse_flat_json("").is_err());
        assert!(parse_flat_json("{}").unwrap().is_empty());
    }

    #[test]
    fn numbers_parse_with_sign_and_exponent() {
        let map = parse_flat_json(r#"{"a":-2.5e2,"b":0}"#).unwrap();
        assert_eq!(map["a"].as_f64(), Some(-250.0));
        assert_eq!(map["b"].as_u64(), Some(0));
        assert_eq!(map["a"].as_u64(), None);
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        // 2^53 + 1 and u64::MAX are not representable in f64; the
        // integer path must preserve them bit-exactly.
        for v in [9_007_199_254_740_993u64, u64::MAX, u64::MAX - 1] {
            let line = JsonObjWriter::new().field_u64("seed", v).finish();
            let map = parse_flat_json(&line).unwrap();
            assert_eq!(map["seed"].as_u64(), Some(v));
        }
        // Negative integers are Int but not u64.
        let map = parse_flat_json(r#"{"x":-3}"#).unwrap();
        assert_eq!(map["x"], JsonScalar::Int(-3));
        assert_eq!(map["x"].as_u64(), None);
        assert_eq!(map["x"].as_f64(), Some(-3.0));
    }

    #[test]
    fn f64_fields_round_trip_bit_exactly() {
        for v in [0.0f64, 1.5, 0.1 + 0.2, 1e-9, 12345.6789, f64::MAX] {
            let line = JsonObjWriter::new().field_f64("secs", v).finish();
            let map = parse_flat_json(&line).unwrap();
            assert_eq!(map["secs"].as_f64(), Some(v), "line {line}");
        }
        // Integral floats come out as bare integers and still read back.
        let line = JsonObjWriter::new().field_f64("secs", 3.0).finish();
        assert_eq!(line, r#"{"secs":3}"#);
        assert_eq!(parse_flat_json(&line).unwrap()["secs"].as_f64(), Some(3.0));
        // Non-finite values degrade to zero instead of breaking the line.
        let line = JsonObjWriter::new().field_f64("secs", f64::NAN).finish();
        assert_eq!(parse_flat_json(&line).unwrap()["secs"].as_f64(), Some(0.0));
    }

    #[test]
    fn default_writer_matches_new() {
        assert_eq!(JsonObjWriter::default().field_u64("a", 1).finish(), r#"{"a":1}"#);
    }
}
