//! # gather-analysis
//!
//! Statistics and table emission for the experiment suite: least-squares
//! fits that discriminate linear from quadratic round growth (E1/E8),
//! log–log slope estimation, and Markdown/CSV table rendering for
//! EXPERIMENTS.md.

mod fit;
mod table;

pub use fit::{linear_fit, loglog_slope, quadratic_fit, FitResult};
pub use table::{render_csv, render_markdown, Table};
