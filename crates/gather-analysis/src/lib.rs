//! # gather-analysis
//!
//! Statistics and table emission for the experiment suite: least-squares
//! fits that discriminate linear from quadratic round growth (E1/E8),
//! log–log slope estimation, Markdown/CSV table rendering for
//! EXPERIMENTS.md, and ingestion of the streamed JSONL records that
//! campaign runs produce ([`ingest`]).

mod fit;
pub mod ingest;
mod table;

pub use fit::{linear_fit, loglog_slope, quadratic_fit, FitResult};
pub use ingest::{escape_json, parse_flat_json, JsonObjWriter, JsonScalar};
pub use table::{render_csv, render_markdown, Table};
