//! Least-squares fits on (n, rounds) series.

/// Result of a one-parameter-family regression.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitResult {
    /// Leading coefficient (slope for linear, `a` for `a·x²` term).
    pub coefficient: f64,
    /// Intercept / constant term.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r2: f64,
}

fn r_squared(ys: &[f64], predicted: impl Fn(usize) -> f64) -> f64 {
    let n = ys.len() as f64;
    let mean = ys.iter().sum::<f64>() / n;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = ys.iter().enumerate().map(|(i, y)| (y - predicted(i)).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        // `1 - ss_res/ss_tot` can dip below 0 for a model that predicts
        // worse than the mean (and float error can push a perfect fit a
        // hair past 1); [`FitResult::r2`] documents `[0, 1]`, so clamp.
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    }
}

/// Ordinary least squares `y = a·x + b`.
///
/// # Panics
/// Panics with fewer than two points.
pub fn linear_fit(points: &[(f64, f64)]) -> FitResult {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let a = if denom == 0.0 { 0.0 } else { (n * sxy - sx * sy) / denom };
    let b = (sy - a * sx) / n;
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let r2 = r_squared(&ys, |i| a * points[i].0 + b);
    FitResult { coefficient: a, intercept: b, r2 }
}

/// Least squares on `y = a·x² + b` (no linear term: discriminates pure
/// quadratic growth from linear growth when compared with
/// [`linear_fit`]'s r²).
pub fn quadratic_fit(points: &[(f64, f64)]) -> FitResult {
    assert!(points.len() >= 2, "need at least two points");
    let transformed: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x * x, y)).collect();
    let fit = linear_fit(&transformed);
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let r2 = r_squared(&ys, |i| fit.coefficient * points[i].0 * points[i].0 + fit.intercept);
    FitResult { coefficient: fit.coefficient, intercept: fit.intercept, r2 }
}

/// Slope of the log–log regression: the empirical scaling exponent
/// (≈ 1 for Θ(n), ≈ 2 for Θ(n²)). Points with non-positive coordinates
/// are skipped.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    assert!(logs.len() >= 2, "need at least two positive points");
    linear_fit(&logs).coefficient
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.coefficient - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discriminates_linear_from_quadratic() {
        let quad: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, 0.5 * (i * i) as f64)).collect();
        let lin_fit = linear_fit(&quad);
        let quad_fit = quadratic_fit(&quad);
        assert!(quad_fit.r2 > lin_fit.r2);
        assert!((quad_fit.coefficient - 0.5).abs() < 1e-9);
        assert!((loglog_slope(&quad) - 2.0).abs() < 0.01);

        let lin: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, 7.0 * i as f64)).collect();
        assert!((loglog_slope(&lin) - 1.0).abs() < 0.01);
        assert!(linear_fit(&lin).r2 > quadratic_fit(&lin).r2);
    }

    #[test]
    fn constant_series_r2() {
        let flat: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 4.0)).collect();
        let fit = linear_fit(&flat);
        assert!(fit.coefficient.abs() < 1e-9);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_points_panics() {
        linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    fn r2_stays_in_unit_interval_even_for_bad_models() {
        // Regression: quadratic_fit forces y = a·x² + b, which can model
        // awkward series (decreasing, sign-flipping, degenerate x²)
        // arbitrarily badly; the documented contract is r2 ∈ [0, 1].
        let awkward: Vec<Vec<(f64, f64)>> = vec![
            (1..=20).map(|i| (i as f64, 100.0 - 5.0 * i as f64)).collect(),
            (1..=10).map(|i| (i as f64, if i % 2 == 0 { 50.0 } else { -50.0 })).collect(),
            // x = ±1 collapses the transformed x² axis entirely.
            vec![(-1.0, 0.0), (1.0, 10.0)],
            vec![(-2.0, 3.0), (-1.0, -4.0), (1.0, 4.0), (2.0, -3.0)],
        ];
        for pts in &awkward {
            for fit in [linear_fit(pts), quadratic_fit(pts)] {
                assert!((0.0..=1.0).contains(&fit.r2), "r2 = {} out of [0, 1] for {pts:?}", fit.r2);
            }
        }
    }
}
