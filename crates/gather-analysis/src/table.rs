//! Tiny table model with Markdown and CSV renderers (hand-rolled; both
//! formats are trivial and this keeps the dependency footprint at the
//! pre-approved set).

#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "ragged row");
        self.rows.push(row);
    }
}

/// GitHub-flavoured Markdown rendering.
pub fn render_markdown(t: &Table) -> String {
    let mut out = String::new();
    if !t.title.is_empty() {
        out.push_str(&format!("### {}\n\n", t.title));
    }
    out.push_str(&format!("| {} |\n", t.headers.join(" | ")));
    out.push_str(&format!("|{}\n", t.headers.iter().map(|_| "---|").collect::<String>()));
    for row in &t.rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// RFC-4180-ish CSV (quotes fields containing commas or quotes).
pub fn render_csv(t: &Table) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(&t.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in &t.rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["n", "rounds"]);
        t.push(vec!["16".into(), "9".into()]);
        t.push(vec!["32".into(), "17".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = render_markdown(&sample());
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| n | rounds |"));
        assert!(md.contains("| 32 | 17 |"));
        assert_eq!(md.lines().count(), 6);
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new("", &["a", "b"]);
        t.push(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = render_csv(&t);
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }
}
