//! # gather-viz
//!
//! Rendering for swarm traces: ASCII frames for terminals and examples,
//! SVG snapshots for reports. Both renderers understand the algorithm's
//! run states (runners are highlighted), which makes the reshapement
//! waves of Fig. 13–15 visible.

use gather_core::GatherState;
use grid_engine::{Bounds, Point, RobotState, Swarm};

/// Render any swarm as ASCII art: `o` robot, `.` empty. The viewport is
/// the swarm's bounding box (optionally padded).
pub fn ascii<S: RobotState>(swarm: &Swarm<S>, pad: i32) -> String {
    ascii_with(swarm, pad, |_| 'o')
}

/// Render the paper algorithm's swarm: `o` robot, `R` one run state,
/// `D` two run states.
pub fn ascii_runs(swarm: &Swarm<GatherState>, pad: i32) -> String {
    ascii_with(swarm, pad, |i| match swarm.robots()[i].state.run_count() {
        0 => 'o',
        1 => 'R',
        _ => 'D',
    })
}

fn ascii_with<S: RobotState>(swarm: &Swarm<S>, pad: i32, glyph: impl Fn(usize) -> char) -> String {
    let b: Bounds = swarm.bounds().inflated(pad.max(0));
    let mut out = String::with_capacity((b.width() as usize + 1) * b.height() as usize);
    for y in (b.min.y..=b.max.y).rev() {
        for x in b.min.x..=b.max.x {
            match swarm.robot_at(Point::new(x, y)) {
                Some(i) => out.push(glyph(i)),
                None => out.push('.'),
            }
        }
        out.push('\n');
    }
    out
}

/// Minimal SVG snapshot (one rect per robot; runners tinted). The
/// output is a complete standalone SVG document.
pub fn svg(swarm: &Swarm<GatherState>, cell: u32) -> String {
    let b = swarm.bounds().inflated(1);
    let cell = cell.max(1);
    let w = b.width() as u32 * cell;
    let h = b.height() as u32 * cell;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"#ffffff\"/>\n"
    ));
    for robot in swarm.robots() {
        let x = (robot.pos.x - b.min.x) as u32 * cell;
        // SVG's y axis points down; the grid's points up.
        let y = (b.max.y - robot.pos.y) as u32 * cell;
        let fill = match robot.state.run_count() {
            0 => "#37474f",
            1 => "#e53935",
            _ => "#8e24aa",
        };
        out.push_str(&format!(
            "<rect x=\"{x}\" y=\"{y}\" width=\"{cell}\" height=\"{cell}\" fill=\"{fill}\"/>\n"
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// A recorded run: selected ASCII frames with round labels, for the
/// movie-style examples.
pub struct Trace {
    pub frames: Vec<(u64, String)>,
}

impl Trace {
    pub fn new() -> Self {
        Trace { frames: Vec::new() }
    }

    pub fn record(&mut self, round: u64, swarm: &Swarm<GatherState>) {
        self.frames.push((round, ascii_runs(swarm, 0)));
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for (round, frame) in &self.frames {
            out.push_str(&format!("--- round {round} ---\n{frame}\n"));
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::OrientationMode;

    fn swarm() -> Swarm<GatherState> {
        Swarm::new(
            &[Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)],
            OrientationMode::Aligned,
        )
    }

    #[test]
    fn ascii_geometry() {
        let s = swarm();
        let art = ascii(&s, 0);
        // 2x2 viewport, y rendered top-down:
        // .o
        // oo
        assert_eq!(art, ".o\noo\n");
    }

    #[test]
    fn ascii_padding() {
        let art = ascii(&swarm(), 1);
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.len() == 4));
    }

    #[test]
    fn svg_contains_all_robots() {
        let s = swarm();
        let doc = svg(&s, 8);
        assert!(doc.starts_with("<svg"));
        assert_eq!(doc.matches("<rect").count(), 1 + s.len()); // bg + robots
        assert!(doc.ends_with("</svg>\n"));
    }

    #[test]
    fn trace_accumulates() {
        let s = swarm();
        let mut t = Trace::new();
        t.record(0, &s);
        t.record(5, &s);
        let rendered = t.render();
        assert!(rendered.contains("--- round 0 ---"));
        assert!(rendered.contains("--- round 5 ---"));
    }
}
