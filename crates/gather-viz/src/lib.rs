//! # gather-viz
//!
//! Rendering for swarm traces: ASCII frames for terminals and examples,
//! SVG snapshots for reports. The live-swarm renderers understand the
//! algorithm's run states (runners are highlighted), which makes the
//! reshapement waves of Fig. 13–15 visible; movie-style frame sequences
//! ([`Trace`]) are built by replaying `gather-trace` round records, so
//! any recorded `.gtrc` campaign trace renders without re-running its
//! controller.

use gather_core::GatherState;
use gather_trace::{read_all_rounds, Playback, PlaybackError, TraceReader};
use grid_engine::{Bounds, Point, RobotState, RoundRecord, Swarm};

/// Render any swarm as ASCII art: `o` robot, `.` empty. The viewport is
/// the swarm's bounding box (optionally padded).
pub fn ascii<S: RobotState>(swarm: &Swarm<S>, pad: i32) -> String {
    ascii_with(swarm, pad, |_| 'o')
}

/// Render the paper algorithm's swarm: `o` robot, `R` one run state,
/// `D` two run states.
pub fn ascii_runs(swarm: &Swarm<GatherState>, pad: i32) -> String {
    ascii_with(swarm, pad, |i| match swarm.states()[i].run_count() {
        0 => 'o',
        1 => 'R',
        _ => 'D',
    })
}

fn ascii_with<S: RobotState>(swarm: &Swarm<S>, pad: i32, glyph: impl Fn(usize) -> char) -> String {
    let b: Bounds = swarm.bounds().inflated(pad.max(0));
    let mut out = String::with_capacity((b.width() as usize + 1) * b.height() as usize);
    for y in (b.min.y..=b.max.y).rev() {
        for x in b.min.x..=b.max.x {
            match swarm.robot_at(Point::new(x, y)) {
                Some(i) => out.push(glyph(i)),
                None => out.push('.'),
            }
        }
        out.push('\n');
    }
    out
}

/// Minimal SVG snapshot (one rect per robot; runners tinted). The
/// output is a complete standalone SVG document.
pub fn svg(swarm: &Swarm<GatherState>, cell: u32) -> String {
    let b = swarm.bounds().inflated(1);
    let cell = cell.max(1);
    let w = b.width() as u32 * cell;
    let h = b.height() as u32 * cell;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"#ffffff\"/>\n"
    ));
    for (pos, state) in swarm.positions().iter().zip(swarm.states()) {
        let x = (pos.x - b.min.x) as u32 * cell;
        // SVG's y axis points down; the grid's points up.
        let y = (b.max.y - pos.y) as u32 * cell;
        let fill = match state.run_count() {
            0 => "#37474f",
            1 => "#e53935",
            _ => "#8e24aa",
        };
        out.push_str(&format!(
            "<rect x=\"{x}\" y=\"{y}\" width=\"{cell}\" height=\"{cell}\" fill=\"{fill}\"/>\n"
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Render a bare point set as ASCII art (`o` robot, `.` empty), in the
/// set's own bounding box inflated by `pad` — the positions-only
/// analogue of [`ascii`], used by trace frames which carry no states.
pub fn ascii_points(points: &[Point], pad: i32) -> String {
    let b = Bounds::of(points.iter().copied()).expect("non-empty frame").inflated(pad.max(0));
    let set: std::collections::BTreeSet<Point> = points.iter().copied().collect();
    let mut out = String::with_capacity((b.width() as usize + 1) * b.height() as usize);
    for y in (b.min.y..=b.max.y).rev() {
        for x in b.min.x..=b.max.x {
            out.push(if set.contains(&Point::new(x, y)) { 'o' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// One sampled frame of a replayed trace: the swarm's positions after
/// `round` rounds (round 0 is the initial configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFrame {
    pub round: u64,
    pub points: Vec<Point>,
}

/// A rendered run: sampled position frames with round labels, for the
/// movie-style examples and `campaign render`.
///
/// Frames are *derived from the trace subsystem's round records*, not
/// captured live: any recorded `.gtrc` file (or in-memory record
/// stream from an engine observer) renders the same way, so a movie of
/// a historical campaign run needs only its trace. Playback uses the
/// engine's own merge semantics and verifies every round's digest — a
/// frame sequence cannot silently drift from what actually happened.
/// Frames keep raw positions, so one replay pays for every output
/// format ([`Trace::render`] ASCII movie, [`Trace::render_svg_strip`]).
pub struct Trace {
    pub frames: Vec<TraceFrame>,
}

impl Trace {
    /// Build frames by replaying round records over `initial`
    /// positions. A frame is emitted for the initial state, for every
    /// `every`-th round boundary (`every = 1` keeps all, `0` keeps only
    /// the endpoints), and for the final state.
    pub fn from_rounds<'a>(
        initial: &[Point],
        rounds: impl IntoIterator<Item = &'a RoundRecord>,
        every: u64,
    ) -> Result<Trace, PlaybackError> {
        let mut playback = Playback::new(initial);
        let frame = |round: u64, pb: &Playback| TraceFrame {
            round,
            points: pb.swarm().positions().to_vec(),
        };
        let mut frames = vec![frame(0, &playback)];
        let mut last = 0u64;
        let mut end = 0u64;
        for rec in rounds {
            playback.apply(rec)?;
            end = rec.round + 1;
            if every != 0 && end.is_multiple_of(every) {
                frames.push(frame(end, &playback));
                last = end;
            }
        }
        // Always close with the final state — unless the stream was
        // empty (the initial frame is the final state) or the sampling
        // cadence already landed on it.
        if end > 0 && last != end {
            frames.push(frame(end, &playback));
        }
        Ok(Trace { frames })
    }

    /// Render a recorded `.gtrc` stream (see `gather-trace`), verifying
    /// it as it plays.
    pub fn from_reader<R: std::io::Read>(
        reader: &mut TraceReader<R>,
        every: u64,
    ) -> Result<Trace, String> {
        let initial = reader.header().initial.clone();
        let rounds = read_all_rounds(reader).map_err(|e| e.to_string())?;
        Trace::from_rounds(&initial, &rounds, every).map_err(|e| e.to_string())
    }

    /// The ASCII movie: one labelled frame per sampled round.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            out.push_str(&format!(
                "--- round {} ---\n{}\n",
                frame.round,
                ascii_points(&frame.points, 0)
            ));
        }
        out
    }

    /// A single SVG document laying the sampled frames out left to
    /// right in a shared viewport (the union of all frame bounds), so
    /// the swarm's contraction is visible at a glance.
    pub fn render_svg_strip(&self, cell: u32) -> String {
        let cell = cell.max(1);
        let union = Bounds::of(self.frames.iter().flat_map(|f| f.points.iter().copied()))
            .expect("traces have at least one frame")
            .inflated(1);
        let (fw, fh) = (union.width() as u32 * cell, union.height() as u32 * cell);
        let gap = cell * 2;
        let total_w = (fw + gap) * self.frames.len() as u32 - gap.min(fw);
        let label_h = 12u32;
        let total_h = fh + label_h;
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w}\" height=\"{total_h}\" \
             viewBox=\"0 0 {total_w} {total_h}\">\n"
        );
        for (i, frame) in self.frames.iter().enumerate() {
            let x0 = (fw + gap) * i as u32;
            out.push_str(&format!(
                "<g transform=\"translate({x0} {label_h})\">\n\
                 <rect width=\"{fw}\" height=\"{fh}\" fill=\"#ffffff\" stroke=\"#b0bec5\"/>\n"
            ));
            for p in &frame.points {
                let x = (p.x - union.min.x) as u32 * cell;
                let y = (union.max.y - p.y) as u32 * cell;
                out.push_str(&format!(
                    "<rect x=\"{x}\" y=\"{y}\" width=\"{cell}\" height=\"{cell}\" \
                     fill=\"#37474f\"/>\n"
                ));
            }
            out.push_str(&format!(
                "</g>\n<text x=\"{x0}\" y=\"10\" font-size=\"10\" \
                 font-family=\"monospace\">round {}</text>\n",
                frame.round
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_engine::OrientationMode;

    fn swarm() -> Swarm<GatherState> {
        Swarm::new(
            &[Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)],
            OrientationMode::Aligned,
        )
    }

    #[test]
    fn ascii_geometry() {
        let s = swarm();
        let art = ascii(&s, 0);
        // 2x2 viewport, y rendered top-down:
        // .o
        // oo
        assert_eq!(art, ".o\noo\n");
    }

    #[test]
    fn ascii_padding() {
        let art = ascii(&swarm(), 1);
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.len() == 4));
    }

    #[test]
    fn svg_contains_all_robots() {
        let s = swarm();
        let doc = svg(&s, 8);
        assert!(doc.starts_with("<svg"));
        assert_eq!(doc.matches("<rect").count(), 1 + s.len()); // bg + robots
        assert!(doc.ends_with("</svg>\n"));
    }

    #[test]
    fn trace_renders_round_records() {
        use grid_engine::{Activation, RobotMove};
        // Three robots; round 0 folds the corner robot onto its
        // neighbour (one merge), round 1 moves nobody.
        let initial = [Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)];
        let mut probe: Swarm<()> = Swarm::new(&initial, grid_engine::OrientationMode::Aligned);
        probe.apply(vec![
            grid_engine::Action { step: grid_engine::V2::E, state: () },
            grid_engine::Action::stay(()),
            grid_engine::Action::stay(()),
        ]);
        let rounds = [
            RoundRecord {
                round: 0,
                activated: Activation::All,
                moves: vec![RobotMove { robot: 0, dx: 1, dy: 0 }],
                merged: 1,
                population: 2,
                digest: probe.position_digest(),
                pending: vec![],
            },
            RoundRecord {
                round: 1,
                activated: Activation::All,
                moves: vec![],
                merged: 0,
                population: 2,
                digest: probe.position_digest(),
                pending: vec![],
            },
        ];
        let t = Trace::from_rounds(&initial, &rounds, 1).unwrap();
        let rendered = t.render();
        assert!(rendered.contains("--- round 0 ---"));
        assert!(rendered.contains("--- round 1 ---"));
        assert!(rendered.contains("--- round 2 ---"));
        assert!(rendered.starts_with("--- round 0 ---\n.o\noo\n"), "{rendered}");
        // Frames carry positions, so any renderer can consume them.
        assert_eq!(t.frames[0].points.len(), 3);
        assert_eq!(t.frames[1].points.len(), 2);
        let strip = t.render_svg_strip(4);
        assert!(strip.starts_with("<svg") && strip.ends_with("</svg>\n"));
        // 3 frame backgrounds + 3 + 2 + 2 robots.
        assert_eq!(strip.matches("<rect").count(), 3 + 3 + 2 + 2);
        assert_eq!(strip.matches("round ").count(), 3);
        // A doctored digest is a loud playback error, not a wrong movie.
        let mut bad = rounds.to_vec();
        bad[1].digest ^= 1;
        assert!(Trace::from_rounds(&initial, &bad, 1).is_err());
    }

    #[test]
    fn trace_from_reader_renders_a_recorded_stream() {
        use gather_trace::{TraceHeader, TraceWriter};
        let initial = vec![Point::new(0, 0), Point::new(1, 0)];
        let header = TraceHeader {
            scenario_id: "viz-test".into(),
            seed: 0,
            config_digest: 0,
            initial: initial.clone(),
        };
        let mut probe: Swarm<()> = Swarm::new(&initial, grid_engine::OrientationMode::Aligned);
        probe.apply(vec![
            grid_engine::Action { step: grid_engine::V2::E, state: () },
            grid_engine::Action::stay(()),
        ]);
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        w.write_round(&RoundRecord {
            round: 0,
            activated: grid_engine::Activation::All,
            moves: vec![grid_engine::RobotMove { robot: 0, dx: 1, dy: 0 }],
            merged: 1,
            population: 1,
            digest: probe.position_digest(),
            pending: vec![],
        })
        .unwrap();
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let t = Trace::from_reader(&mut reader, 1).unwrap();
        assert_eq!(t.frames.len(), 2, "initial + final frame");
        assert_eq!(t.frames[1].points, vec![Point::new(1, 0)], "two robots merged into one cell");
        assert_eq!(ascii_points(&t.frames[1].points, 0), "o\n");
    }
}
