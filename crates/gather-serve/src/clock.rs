//! The service's single wall-clock site.
//!
//! Lease expiry and heartbeat pacing need real elapsed time, but the
//! determinism audit (rightly) refuses ad-hoc clock reads: a clock leak
//! into anything content-addressed would poison the result cache. So
//! every milliseconds-read in the service goes through [`ServiceClock`],
//! this file is the one entry on the audit's wall-clock allowlist for
//! the crate, and everything downstream (the lease table, the queue)
//! takes `now_ms` as an argument — making expiry logic pure, and
//! testable with a hand-rolled timeline instead of real sleeps.

use std::time::Instant;

/// Monotonic milliseconds since the clock was constructed.
#[derive(Debug)]
pub struct ServiceClock {
    origin: Instant,
}

impl ServiceClock {
    pub fn new() -> ServiceClock {
        ServiceClock { origin: Instant::now() }
    }

    pub fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

impl Default for ServiceClock {
    fn default() -> ServiceClock {
        ServiceClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_clock_is_monotone_from_zero() {
        let clock = ServiceClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}
