//! Content-addressed result cache.
//!
//! A scenario's result record is pure data: the engine is deterministic
//! (statically enforced by `gather-audit`), so a record is fully
//! determined by *which* scenario ran (`scenario ID`), *how* it was
//! configured (`config digest`: seed, actual swarm size, round budget),
//! and *what code* ran it (`engine version`). Those three form the
//! [`CacheKey`]; the cache maps its 64-bit digest to the exact record
//! line a batch run would have written.
//!
//! Layout: one file per key under the cache directory, fanned out by
//! the first two hex digits of the key digest so a large cache never
//! puts millions of entries in one directory:
//!
//! ```text
//! <dir>/ab/abcdef0123456789.json   # one JSONL record line + '\n'
//! ```
//!
//! Eviction is deliberately manual (`rm -r <dir>` or per-fanout): every
//! entry is a few hundred bytes, keys never collide with live entries
//! (same key ⇒ same bytes), and a stale engine version simply stops
//! being looked up — so the only reason to evict is disk pressure,
//! which the operator sees before the service does.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use gather_trace::digest_bytes;

/// What a result is addressed by. Any change to the scenario identity,
/// its engine configuration, or the engine build must change the key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Canonical scenario ID, e.g. `line/n64/s3/paper` — itself encoding
    /// family, size, seed, controller, and scheduler.
    pub scenario_id: String,
    /// The campaign config digest: seed, realized swarm size, and round
    /// budget folded to 64 bits.
    pub config_digest: u64,
    /// The engine build tag (crate version), so results never survive an
    /// engine change they might disagree with.
    pub engine_version: String,
}

impl CacheKey {
    /// The 64-bit address of this key, as 16 lowercase hex digits.
    pub fn digest_hex(&self) -> String {
        let canonical = format!(
            "{}|cfg={:016x}|engine={}",
            self.scenario_id, self.config_digest, self.engine_version
        );
        format!("{:016x}", digest_bytes(canonical.as_bytes()))
    }
}

/// An open cache directory.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        let hex = key.digest_hex();
        self.dir.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// The cached record line for `key`, without its trailing newline.
    pub fn lookup(&self, key: &CacheKey) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let line = text.strip_suffix('\n').unwrap_or(&text);
        // An empty or torn entry (no terminator) is treated as absent:
        // the scenario just reruns and the entry is rewritten whole.
        (!line.is_empty() && text.ends_with('\n')).then(|| line.to_string())
    }

    /// Store the record line for `key`. Written to a temporary file and
    /// renamed into place, so a crash can never leave a half-written
    /// entry under the final name; concurrent stores of the same key are
    /// benign because both write identical bytes.
    pub fn store(&self, key: &CacheKey, record_line: &str) -> io::Result<()> {
        let path = self.entry_path(key);
        let parent = path.parent().expect("cache entries always live under a fanout dir");
        fs::create_dir_all(parent)?;
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(record_line.as_bytes())?;
            file.write_all(b"\n")?;
            file.flush()?;
        }
        fs::rename(&tmp, &path)
    }

    /// Number of entries currently on disk (walks the fanout dirs; for
    /// stats and tests, not the hot path).
    pub fn len(&self) -> usize {
        let Ok(fanouts) = fs::read_dir(&self.dir) else { return 0 };
        fanouts
            .flatten()
            .filter(|e| e.path().is_dir())
            .filter_map(|e| fs::read_dir(e.path()).ok())
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: &str) -> CacheKey {
        CacheKey {
            scenario_id: id.to_string(),
            config_digest: 0x1234_5678_9abc_def0,
            engine_version: "grid-engine/0.1.0".to_string(),
        }
    }

    fn tmp_cache(name: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("gather-serve-cache-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn store_then_lookup_round_trips_exact_bytes() {
        let cache = tmp_cache("roundtrip");
        let k = key("line/n16/s1/paper");
        assert_eq!(cache.lookup(&k), None);
        let record = r#"{"id":"line/n16/s1/paper","rounds":9,"gathered":true}"#;
        cache.store(&k, record).unwrap();
        assert_eq!(cache.lookup(&k).as_deref(), Some(record));
        assert_eq!(cache.len(), 1);
        // Overwrite is idempotent.
        cache.store(&k, record).unwrap();
        assert_eq!(cache.len(), 1);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn distinct_key_components_address_distinct_entries() {
        let base = key("line/n16/s1/paper");
        let mut other_id = base.clone();
        other_id.scenario_id = "line/n16/s2/paper".into();
        let mut other_cfg = base.clone();
        other_cfg.config_digest ^= 1;
        let mut other_engine = base.clone();
        other_engine.engine_version = "grid-engine/0.2.0".into();
        let hexes = [&base, &other_id, &other_cfg, &other_engine]
            .iter()
            .map(|k| k.digest_hex())
            .collect::<std::collections::BTreeSet<_>>();
        assert_eq!(hexes.len(), 4, "every component must feed the address");
        let cache = tmp_cache("distinct");
        cache.store(&base, "base").unwrap();
        assert_eq!(cache.lookup(&other_id), None);
        assert_eq!(cache.lookup(&other_cfg), None);
        assert_eq!(cache.lookup(&other_engine), None);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn torn_entries_read_as_absent() {
        let cache = tmp_cache("torn");
        let k = key("square/n32/s2/center");
        cache.store(&k, "whole line").unwrap();
        let path = cache.dir().join(&k.digest_hex()[..2]).join(format!("{}.json", k.digest_hex()));
        fs::write(&path, "torn line without newline").unwrap();
        assert_eq!(cache.lookup(&k), None, "an unterminated entry must not be served");
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
