//! # gather-serve
//!
//! The mechanism layer of the resident campaign service: everything
//! `campaign serve` needs that is not campaign policy.
//!
//! * [`JobQueue`] — FIFO queue of submitted sweeps with per-scenario
//!   pending/leased/done bookkeeping.
//! * [`LeaseTable`] — pull-leases with expiry: workers claim scenario
//!   index ranges, and a dead worker's claim is re-issued instead of
//!   stranding the job.
//! * [`ResultCache`] — content-addressed record store keyed by
//!   (scenario ID, config digest, engine version); repeated sweeps are
//!   served from disk instead of recomputed.
//! * [`Conn`] — line-oriented NDJSON over a Unix socket.
//! * [`ServiceClock`] — the crate's single wall-clock site; lease and
//!   queue logic take `now_ms` as data, so expiry stays a pure,
//!   hand-testable function.
//!
//! The protocol vocabulary itself lives in `gather-obs` (`proto`), and
//! the server/worker/submitter loops that tie these pieces to spec
//! expansion and scenario execution live in `gather-campaign` — this
//! crate knows nothing about what a scenario *is*.

pub mod cache;
pub mod clock;
pub mod lease;
pub mod queue;
pub mod wire;

pub use cache::{CacheKey, ResultCache};
pub use clock::ServiceClock;
pub use lease::{Lease, LeaseTable};
pub use queue::{Job, JobQueue};
pub use wire::Conn;
