//! Line-oriented Unix-socket connection.
//!
//! Everything the service speaks is flat NDJSON — one frame per line —
//! so the wire layer is just that: write a line and flush, read a line
//! or see EOF. Parsing lives with the vocabulary (`gather-obs`), not
//! here.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One NDJSON connection (either end).
#[derive(Debug)]
pub struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Conn {
    pub fn connect(path: &Path) -> io::Result<Conn> {
        Conn::from_stream(UnixStream::connect(path)?)
    }

    pub fn from_stream(stream: UnixStream) -> io::Result<Conn> {
        let writer = stream.try_clone()?;
        Ok(Conn { reader: BufReader::new(stream), writer })
    }

    /// Write one frame line (the newline is added here) and flush.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read the next frame line, without its terminator. `None` is a
    /// clean EOF (the peer closed its write side).
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Stop sending: the peer's next `recv_line` sees EOF once buffered
    /// lines drain, while this end can still read.
    pub fn shutdown_write(&self) -> io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_cross_a_socket_pair_and_eof_is_clean() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut a = Conn::from_stream(a).unwrap();
        let mut b = Conn::from_stream(b).unwrap();
        a.send_line(r#"{"v":1,"msg":"lease_request"}"#).unwrap();
        a.send_line("second").unwrap();
        assert_eq!(b.recv_line().unwrap().as_deref(), Some(r#"{"v":1,"msg":"lease_request"}"#));
        assert_eq!(b.recv_line().unwrap().as_deref(), Some("second"));
        b.send_line("reply").unwrap();
        assert_eq!(a.recv_line().unwrap().as_deref(), Some("reply"));
        a.shutdown_write().unwrap();
        assert_eq!(b.recv_line().unwrap(), None, "write shutdown reads as EOF");
    }
}
