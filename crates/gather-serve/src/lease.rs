//! Pull-lease table.
//!
//! Workers *pull* scenario ranges instead of being statically assigned
//! a `--shard I/M` slice: a lease is a short-lived claim on a set of
//! expansion indexes of one job. Claims expire — a killed or wedged
//! worker never strands work, because [`LeaseTable::expire`] hands the
//! indexes back to the queue for re-issue. The table itself never reads
//! a clock: every operation takes `now_ms` (milliseconds from the
//! service's [`ServiceClock`](crate::ServiceClock)), so expiry is a
//! pure function of its arguments and tests drive time by hand.

use std::collections::BTreeMap;

/// One outstanding claim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lease {
    pub id: u64,
    pub job: u64,
    pub worker: String,
    /// Expansion indexes still owed by this lease. Completed indexes
    /// are removed one by one; the lease dies when the set empties.
    pub indexes: Vec<usize>,
    pub expires_at_ms: u64,
}

/// All outstanding leases, keyed by lease id.
#[derive(Debug, Default)]
pub struct LeaseTable {
    next_id: u64,
    leases: BTreeMap<u64, Lease>,
}

impl LeaseTable {
    pub fn new() -> LeaseTable {
        LeaseTable { next_id: 1, leases: BTreeMap::new() }
    }

    /// Issue a fresh lease on `indexes` of `job`, valid for `ttl_ms`
    /// from `now_ms`.
    pub fn issue(
        &mut self,
        job: u64,
        worker: &str,
        indexes: Vec<usize>,
        now_ms: u64,
        ttl_ms: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.leases.insert(
            id,
            Lease {
                id,
                job,
                worker: worker.to_string(),
                indexes,
                expires_at_ms: now_ms.saturating_add(ttl_ms),
            },
        );
        id
    }

    /// Remove and return every lease whose deadline has passed; the
    /// caller re-queues their indexes.
    pub fn expire(&mut self, now_ms: u64) -> Vec<Lease> {
        let dead: Vec<u64> =
            self.leases.values().filter(|l| l.expires_at_ms <= now_ms).map(|l| l.id).collect();
        dead.into_iter().filter_map(|id| self.leases.remove(&id)).collect()
    }

    /// Remove and return every lease held by `worker` (its connection
    /// closed); the caller re-queues their indexes immediately instead
    /// of waiting out the TTL.
    pub fn release_worker(&mut self, worker: &str) -> Vec<Lease> {
        let dead: Vec<u64> =
            self.leases.values().filter(|l| l.worker == worker).map(|l| l.id).collect();
        dead.into_iter().filter_map(|id| self.leases.remove(&id)).collect()
    }

    /// Mark one index of a lease complete. Returns the owning job id if
    /// the lease is still live, or `None` for a stale lease id (already
    /// expired and re-issued — the result itself may still be usable,
    /// that is the caller's call). An emptied lease is dropped.
    pub fn complete(&mut self, lease_id: u64, index: usize) -> Option<u64> {
        let lease = self.leases.get_mut(&lease_id)?;
        lease.indexes.retain(|&i| i != index);
        let job = lease.job;
        if lease.indexes.is_empty() {
            self.leases.remove(&lease_id);
        }
        Some(job)
    }

    pub fn outstanding(&self) -> usize {
        self.leases.len()
    }

    pub fn get(&self, id: u64) -> Option<&Lease> {
        self.leases.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_expire_exactly_on_their_deadline() {
        let mut table = LeaseTable::new();
        let a = table.issue(1, "w1", vec![0, 1], 1_000, 500);
        let b = table.issue(1, "w2", vec![2], 1_200, 500);
        assert_eq!(table.expire(1_499), vec![]);
        let dead = table.expire(1_500);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, a);
        assert_eq!(dead[0].indexes, vec![0, 1]);
        assert_eq!(table.outstanding(), 1);
        assert!(table.get(b).is_some());
        let dead = table.expire(10_000);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, b);
        assert_eq!(table.outstanding(), 0);
    }

    #[test]
    fn completing_every_index_retires_the_lease() {
        let mut table = LeaseTable::new();
        let id = table.issue(7, "w", vec![3, 5], 0, 1_000);
        assert_eq!(table.complete(id, 5), Some(7));
        assert_eq!(table.get(id).unwrap().indexes, vec![3]);
        assert_eq!(table.complete(id, 3), Some(7));
        assert_eq!(table.get(id), None, "an emptied lease is dropped");
        assert_eq!(table.complete(id, 3), None, "a dead lease id is stale");
    }

    #[test]
    fn a_closed_workers_leases_release_immediately() {
        let mut table = LeaseTable::new();
        table.issue(1, "w1", vec![0], 0, 60_000);
        table.issue(1, "w2", vec![1], 0, 60_000);
        table.issue(2, "w1", vec![0], 0, 60_000);
        let released = table.release_worker("w1");
        assert_eq!(released.len(), 2);
        assert!(released.iter().all(|l| l.worker == "w1"));
        assert_eq!(table.outstanding(), 1);
    }

    #[test]
    fn stale_completions_do_not_resurrect_leases() {
        let mut table = LeaseTable::new();
        let id = table.issue(1, "w", vec![0], 0, 100);
        assert_eq!(table.expire(100).len(), 1);
        assert_eq!(table.complete(id, 0), None);
        assert_eq!(table.outstanding(), 0);
    }
}
