//! FIFO job queue.
//!
//! A job is one submitted sweep: its opaque spec fields (the worker
//! re-expands them deterministically), its output path, and the
//! per-index bookkeeping of where every scenario stands — pending
//! (grantable), leased (claimed by a live lease), or done (its record
//! line is held). Grants drain jobs strictly in submission order:
//! a later job gets work only when every earlier job has nothing left
//! to lease.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::cache::CacheKey;

/// One submitted sweep and its progress.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub name: String,
    /// Flat spec axes exactly as submitted (and as re-sent in grants).
    pub spec: BTreeMap<String, String>,
    pub out: PathBuf,
    /// Canonical scenario IDs in expansion order; index positions are
    /// the currency of leases and results.
    pub scenario_ids: Vec<String>,
    /// Content-cache address of each index, parallel to `scenario_ids`.
    pub cache_keys: Vec<CacheKey>,
    /// Indexes not yet done and not currently leased.
    pub pending: BTreeSet<usize>,
    /// Indexes claimed by a live lease.
    pub leased: BTreeSet<usize>,
    /// Record lines by index (cache hits and worker results alike).
    pub results: BTreeMap<usize, String>,
    /// Indexes whose `scenario_started` event has been emitted — a
    /// re-issued lease must not announce a scenario twice.
    pub announced: BTreeSet<usize>,
    pub cached: usize,
    pub executed: usize,
    pub panicked: usize,
    pub submitted_ms: u64,
}

impl Job {
    pub fn total(&self) -> usize {
        self.scenario_ids.len()
    }

    pub fn is_complete(&self) -> bool {
        self.results.len() == self.scenario_ids.len()
    }
}

/// All jobs the service currently holds, granted FIFO.
#[derive(Debug, Default)]
pub struct JobQueue {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
}

impl JobQueue {
    pub fn new() -> JobQueue {
        JobQueue { next_id: 1, jobs: BTreeMap::new() }
    }

    /// Enqueue a job; every index starts pending (the caller settles
    /// cache hits by recording their results immediately after).
    pub fn submit(
        &mut self,
        name: String,
        spec: BTreeMap<String, String>,
        out: PathBuf,
        scenario_ids: Vec<String>,
        cache_keys: Vec<CacheKey>,
        now_ms: u64,
    ) -> u64 {
        assert_eq!(scenario_ids.len(), cache_keys.len());
        let id = self.next_id;
        self.next_id += 1;
        let pending: BTreeSet<usize> = (0..scenario_ids.len()).collect();
        self.jobs.insert(
            id,
            Job {
                id,
                name,
                spec,
                out,
                scenario_ids,
                cache_keys,
                pending,
                leased: BTreeSet::new(),
                results: BTreeMap::new(),
                announced: BTreeSet::new(),
                cached: 0,
                executed: 0,
                panicked: 0,
                submitted_ms: now_ms,
            },
        );
        id
    }

    /// Claim up to `capacity` indexes from the oldest job that has any
    /// pending. The claimed indexes move to `leased`; the caller issues
    /// the actual lease.
    pub fn grant(&mut self, capacity: usize) -> Option<(u64, Vec<usize>)> {
        if capacity == 0 {
            return None;
        }
        let job = self.jobs.values_mut().find(|j| !j.pending.is_empty())?;
        let take: Vec<usize> = job.pending.iter().take(capacity).copied().collect();
        for &index in &take {
            job.pending.remove(&index);
            job.leased.insert(index);
        }
        Some((job.id, take))
    }

    /// Hand indexes of an expired or released lease back for re-issue.
    /// Indexes that raced to completion stay done.
    pub fn requeue(&mut self, job: u64, indexes: &[usize]) {
        let Some(job) = self.jobs.get_mut(&job) else { return };
        for index in indexes {
            if job.leased.remove(index) && !job.results.contains_key(index) {
                job.pending.insert(*index);
            }
        }
    }

    /// Record one scenario's result line. Returns `false` (and changes
    /// nothing) if the index is out of range or already done — a
    /// duplicate from a stale lease is dropped, first write wins.
    pub fn record_result(&mut self, job: u64, index: usize, record_line: String) -> bool {
        let Some(job) = self.jobs.get_mut(&job) else { return false };
        if index >= job.scenario_ids.len() || job.results.contains_key(&index) {
            return false;
        }
        job.pending.remove(&index);
        job.leased.remove(&index);
        job.results.insert(index, record_line);
        true
    }

    pub fn get(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut Job> {
        self.jobs.get_mut(&id)
    }

    /// Remove a finalized job, returning it.
    pub fn remove(&mut self, id: u64) -> Option<Job> {
        self.jobs.remove(&id)
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(queue: &mut JobQueue, name: &str, n: usize) -> u64 {
        let ids: Vec<String> = (0..n).map(|i| format!("{name}/{i}")).collect();
        let keys = ids
            .iter()
            .map(|id| CacheKey {
                scenario_id: id.clone(),
                config_digest: 0,
                engine_version: "e".into(),
            })
            .collect();
        queue.submit(name.into(), BTreeMap::new(), PathBuf::from("/tmp/x"), ids, keys, 0)
    }

    #[test]
    fn grants_drain_jobs_in_submission_order() {
        let mut queue = JobQueue::new();
        let first = submit(&mut queue, "first", 3);
        let second = submit(&mut queue, "second", 2);
        assert_eq!(queue.grant(2), Some((first, vec![0, 1])));
        assert_eq!(queue.grant(5), Some((first, vec![2])));
        assert_eq!(queue.grant(5), Some((second, vec![0, 1])));
        assert_eq!(queue.grant(5), None, "everything is leased");
        assert_eq!(queue.grant(0), None);
    }

    #[test]
    fn requeue_makes_lost_indexes_grantable_again() {
        let mut queue = JobQueue::new();
        let job = submit(&mut queue, "j", 2);
        assert_eq!(queue.grant(2), Some((job, vec![0, 1])));
        // Index 1 completed before the lease died; only 0 comes back.
        assert!(queue.record_result(job, 1, "line".into()));
        queue.requeue(job, &[0, 1]);
        assert_eq!(queue.grant(2), Some((job, vec![0])));
        assert!(queue.record_result(job, 0, "line".into()));
        assert!(queue.get(job).unwrap().is_complete());
    }

    #[test]
    fn duplicate_and_out_of_range_results_are_dropped() {
        let mut queue = JobQueue::new();
        let job = submit(&mut queue, "j", 1);
        assert!(queue.record_result(job, 0, "first".into()));
        assert!(!queue.record_result(job, 0, "second".into()), "first write wins");
        assert_eq!(queue.get(job).unwrap().results[&0], "first");
        assert!(!queue.record_result(job, 9, "oob".into()));
        assert!(!queue.record_result(job + 1, 0, "no such job".into()));
    }
}
