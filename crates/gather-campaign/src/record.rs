//! The per-scenario result record and its JSONL wire format.

use gather_analysis::{parse_flat_json, JsonObjWriter};
use gather_bench::Measurement;
use grid_engine::{Phase, ProfileTotals, PHASE_COUNT};

use crate::spec::Scenario;

/// Aggregated phase profile of one scenario run, attached to its record
/// by `campaign run --perf`. All durations in seconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfSummary {
    /// Wall time spent inside the engine's `step()` calls.
    pub wall_s: f64,
    /// Rounds the profile covers.
    pub rounds: u64,
    /// Per-phase attributed time, indexed by `Phase as usize`.
    pub phase_s: [f64; PHASE_COUNT],
    /// Accumulated slowest-minus-fastest shard gap in the sharded
    /// merge-detect section (parallel imbalance).
    pub shard_gap_s: f64,
    /// Allocation events over the run; `Some` only when the engine was
    /// built with the `count-alloc` feature.
    pub allocs: Option<u64>,
}

impl PerfSummary {
    /// Convert the engine's accumulated totals (nanoseconds) into the
    /// record's second-denominated summary.
    pub fn from_totals(t: &ProfileTotals) -> Self {
        let mut phase_s = [0.0; PHASE_COUNT];
        for phase in Phase::ALL {
            phase_s[phase as usize] = t.phase_ns[phase as usize] as f64 / 1e9;
        }
        PerfSummary {
            wall_s: t.wall_ns as f64 / 1e9,
            rounds: t.rounds,
            phase_s,
            shard_gap_s: t.shard_imbalance_ns as f64 / 1e9,
            allocs: t.allocs_counted.then_some(t.allocs),
        }
    }

    /// Fraction of engine wall time attributed to named phases.
    pub fn coverage(&self) -> f64 {
        if self.wall_s == 0.0 {
            1.0
        } else {
            self.phase_s.iter().sum::<f64>() / self.wall_s
        }
    }
}

/// Outcome of one scenario, as streamed to the result file. The default
/// fields are a pure function of the scenario, so default records are
/// byte-identical across runs and thread counts. The timing fields
/// (`secs`, `perf`) are strictly opt-in — they serialize only when set,
/// so plain runs keep byte-reproducible result files and `--perf`
/// explicitly trades that for wall-clock data.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// Stable scenario ID (`family/n<size>/s<seed>/<controller>` for
    /// FSYNC, with a fifth `/<scheduler>` segment otherwise).
    pub id: String,
    pub family: String,
    pub controller: String,
    /// Activation policy name (`fsync`, `ssync-p50`, `rr4`). Absent in
    /// pre-scheduler result files, which parse as `fsync`.
    pub scheduler: String,
    /// Requested swarm size (the generator's target).
    pub n_requested: usize,
    pub seed: u64,
    /// Actual swarm size.
    pub n: usize,
    /// Rounds until gathered, or until the run stopped.
    pub rounds: u64,
    pub merges: usize,
    /// Total robot activations (the scheduler-honest work measure).
    /// Absent in pre-scheduler result files, which parse as 0.
    pub activations: u64,
    pub gathered: bool,
    /// Whether the swarm was still connected when the run ended.
    pub connected: bool,
    /// True when the job panicked (isolated by the executor); all
    /// numeric result fields are zero in that case (`secs` still
    /// carries the real elapsed time under `--perf`).
    pub panicked: bool,
    /// Executor-measured wall time of the job, seconds. `0.0` means
    /// "not measured" and is omitted from the JSON line, keeping
    /// default records byte-identical with pre-perf result files.
    pub secs: f64,
    /// Engine phase breakdown, present only under `--perf` (and only
    /// when the run had engine rounds — the greedy baseline has none).
    pub perf: Option<PerfSummary>,
}

impl ScenarioRecord {
    pub fn from_measurement(sc: &Scenario, m: &Measurement) -> Self {
        ScenarioRecord {
            id: sc.id(),
            family: sc.family.name().to_string(),
            controller: sc.controller.name().to_string(),
            scheduler: sc.scheduler.name(),
            n_requested: sc.n,
            seed: sc.seed,
            n: m.n,
            rounds: m.rounds,
            merges: m.merges,
            activations: m.activations,
            gathered: m.gathered,
            connected: m.connected,
            panicked: false,
            secs: 0.0,
            perf: None,
        }
    }

    /// Record for a job whose controller panicked.
    pub fn for_panic(sc: &Scenario) -> Self {
        ScenarioRecord {
            id: sc.id(),
            family: sc.family.name().to_string(),
            controller: sc.controller.name().to_string(),
            scheduler: sc.scheduler.name(),
            n_requested: sc.n,
            seed: sc.seed,
            n: 0,
            rounds: 0,
            merges: 0,
            activations: 0,
            gathered: false,
            connected: false,
            panicked: true,
            secs: 0.0,
            perf: None,
        }
    }

    /// One line of the campaign JSONL stream (no trailing newline).
    /// The timing fields serialize only when set, so a record produced
    /// without `--perf` emits exactly the pre-perf byte layout.
    pub fn to_json_line(&self) -> String {
        let mut w = JsonObjWriter::new()
            .field_str("id", &self.id)
            .field_str("family", &self.family)
            .field_str("controller", &self.controller)
            .field_str("scheduler", &self.scheduler)
            .field_usize("n_requested", self.n_requested)
            .field_u64("seed", self.seed)
            .field_usize("n", self.n)
            .field_u64("rounds", self.rounds)
            .field_usize("merges", self.merges)
            .field_u64("activations", self.activations)
            .field_bool("gathered", self.gathered)
            .field_bool("connected", self.connected)
            .field_bool("panicked", self.panicked);
        if self.secs != 0.0 {
            w = w.field_f64("secs", self.secs);
        }
        if let Some(perf) = &self.perf {
            w = w.field_f64("perf_wall_s", perf.wall_s).field_u64("perf_rounds", perf.rounds);
            for phase in Phase::ALL {
                w = w.field_f64(&format!("perf_{}_s", phase.name()), perf.phase_s[phase as usize]);
            }
            w = w.field_f64("perf_shard_gap_s", perf.shard_gap_s);
            if let Some(allocs) = perf.allocs {
                w = w.field_u64("perf_allocs", allocs);
            }
        }
        w.finish()
    }

    /// Parse one line; `Err` covers malformed and truncated lines.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let map = parse_flat_json(line)?;
        let str_field = |key: &str| -> Result<String, String> {
            map.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            map.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let bool_field = |key: &str| -> Result<bool, String> {
            map.get(key)
                .and_then(|v| v.as_bool())
                .ok_or_else(|| format!("missing bool field {key:?}"))
        };
        let f64_field = |key: &str| map.get(key).and_then(|v| v.as_f64());
        // A record carries a perf block iff its anchor field is present
        // (phase fields default to 0.0 so the format can grow phases).
        let perf = f64_field("perf_wall_s").map(|wall_s| {
            let mut phase_s = [0.0; PHASE_COUNT];
            for phase in Phase::ALL {
                phase_s[phase as usize] =
                    f64_field(&format!("perf_{}_s", phase.name())).unwrap_or(0.0);
            }
            PerfSummary {
                wall_s,
                rounds: map.get("perf_rounds").and_then(|v| v.as_u64()).unwrap_or(0),
                phase_s,
                shard_gap_s: f64_field("perf_shard_gap_s").unwrap_or(0.0),
                allocs: map.get("perf_allocs").and_then(|v| v.as_u64()),
            }
        });
        Ok(ScenarioRecord {
            id: str_field("id")?,
            family: str_field("family")?,
            controller: str_field("controller")?,
            // Written before the scheduler axis existed? FSYNC, 0 work
            // recorded — old result files must keep resuming.
            scheduler: str_field("scheduler").unwrap_or_else(|_| "fsync".to_string()),
            n_requested: u64_field("n_requested")? as usize,
            seed: u64_field("seed")?,
            n: u64_field("n")? as usize,
            rounds: u64_field("rounds")?,
            merges: u64_field("merges")? as usize,
            activations: u64_field("activations").unwrap_or(0),
            gathered: bool_field("gathered")?,
            connected: bool_field("connected")?,
            panicked: bool_field("panicked")?,
            secs: f64_field("secs").unwrap_or(0.0),
            perf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_bench::ControllerKind;
    use gather_workloads::Family;

    fn sample() -> ScenarioRecord {
        let sc = Scenario {
            family: Family::RandomBlob,
            n: 96,
            seed: 7,
            controller: ControllerKind::Center,
            scheduler: gather_bench::SchedulerKind::Ssync { p: 50 },
        };
        let m = Measurement {
            n: 96,
            rounds: 412,
            merges: 95,
            gathered: true,
            connected: true,
            activations: 19_776,
        };
        ScenarioRecord::from_measurement(&sc, &m)
    }

    #[test]
    fn json_round_trip() {
        let rec = sample();
        let line = rec.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(ScenarioRecord::from_json_line(&line).unwrap(), rec);
    }

    #[test]
    fn truncated_lines_fail_to_parse() {
        let line = sample().to_json_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(ScenarioRecord::from_json_line(&line[..cut]).is_err());
        }
    }

    #[test]
    fn panic_record_is_marked() {
        let sc = Scenario {
            family: Family::Line,
            n: 10,
            seed: 0,
            controller: ControllerKind::Paper,
            scheduler: gather_bench::SchedulerKind::Fsync,
        };
        let rec = ScenarioRecord::for_panic(&sc);
        assert!(rec.panicked && !rec.gathered);
        let back = ScenarioRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(ScenarioRecord::from_json_line(r#"{"id":"x"}"#).is_err());
    }

    #[test]
    fn default_records_keep_the_pre_perf_byte_layout() {
        // The opt-in contract: a record without timing must serialize
        // with no `secs`/`perf_*` fields at all — byte-for-byte the
        // pre-perf format, so byte-comparing result files stays valid.
        let line = sample().to_json_line();
        assert!(!line.contains("secs"), "{line}");
        assert!(!line.contains("perf"), "{line}");
        assert!(line.ends_with(r#""panicked":false}"#), "{line}");
    }

    #[test]
    fn perf_fields_round_trip() {
        let mut rec = sample();
        rec.secs = 1.25;
        let mut perf = PerfSummary {
            wall_s: 1.2,
            rounds: 412,
            phase_s: [0.0; PHASE_COUNT],
            shard_gap_s: 0.03,
            allocs: Some(1234),
        };
        for (i, slot) in perf.phase_s.iter_mut().enumerate() {
            *slot = 0.125 * (i as f64 + 1.0);
        }
        rec.perf = Some(perf);
        let line = rec.to_json_line();
        assert!(line.contains(r#""secs":1.25"#), "{line}");
        assert!(line.contains(r#""perf_compute_s":0.25"#), "{line}");
        assert!(line.contains(r#""perf_allocs":1234"#), "{line}");
        assert_eq!(ScenarioRecord::from_json_line(&line).unwrap(), rec);

        // Without allocation counting the field is simply absent.
        rec.perf.as_mut().unwrap().allocs = None;
        let line = rec.to_json_line();
        assert!(!line.contains("perf_allocs"), "{line}");
        assert_eq!(ScenarioRecord::from_json_line(&line).unwrap(), rec);
    }

    #[test]
    fn perf_summary_from_totals_converts_ns_to_seconds() {
        let mut totals = ProfileTotals { rounds: 10, wall_ns: 2_000_000_000, ..Default::default() };
        totals.phase_ns[Phase::Compute as usize] = 1_500_000_000;
        totals.shard_imbalance_ns = 40_000_000;
        let perf = PerfSummary::from_totals(&totals);
        assert_eq!(perf.rounds, 10);
        assert!((perf.wall_s - 2.0).abs() < 1e-9);
        assert!((perf.phase_s[Phase::Compute as usize] - 1.5).abs() < 1e-9);
        assert!((perf.shard_gap_s - 0.04).abs() < 1e-9);
        assert_eq!(perf.allocs, None, "allocs not counted");
        assert!((perf.coverage() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn legacy_pre_scheduler_lines_parse_as_fsync() {
        // A verbatim line from a result file written before the
        // scheduler axis existed: no `scheduler`, no `activations`.
        let line = r#"{"id":"line/n16/s1/paper","family":"line","controller":"paper","n_requested":16,"seed":1,"n":16,"rounds":7,"merges":14,"gathered":true,"connected":true,"panicked":false}"#;
        let rec = ScenarioRecord::from_json_line(line).unwrap();
        assert_eq!(rec.scheduler, "fsync");
        assert_eq!(rec.activations, 0);
        assert_eq!(rec.id, "line/n16/s1/paper");
        assert_eq!(rec.rounds, 7);
        // And the legacy ID is exactly what the FSYNC scenario produces
        // today, so resume skips it.
        let sc = Scenario {
            family: Family::Line,
            n: 16,
            seed: 1,
            controller: ControllerKind::Paper,
            scheduler: gather_bench::SchedulerKind::Fsync,
        };
        assert_eq!(sc.id(), rec.id);
    }
}
