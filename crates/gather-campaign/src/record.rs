//! The per-scenario result record and its JSONL wire format.

use gather_analysis::{parse_flat_json, JsonObjWriter};
use gather_bench::Measurement;

use crate::spec::Scenario;

/// Outcome of one scenario, as streamed to the result file. Every field
/// is a pure function of the scenario, so records are byte-identical
/// across runs and thread counts (wall-clock timing is deliberately
/// excluded for exactly that reason).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioRecord {
    /// Stable scenario ID (`family/n<size>/s<seed>/<controller>` for
    /// FSYNC, with a fifth `/<scheduler>` segment otherwise).
    pub id: String,
    pub family: String,
    pub controller: String,
    /// Activation policy name (`fsync`, `ssync-p50`, `rr4`). Absent in
    /// pre-scheduler result files, which parse as `fsync`.
    pub scheduler: String,
    /// Requested swarm size (the generator's target).
    pub n_requested: usize,
    pub seed: u64,
    /// Actual swarm size.
    pub n: usize,
    /// Rounds until gathered, or until the run stopped.
    pub rounds: u64,
    pub merges: usize,
    /// Total robot activations (the scheduler-honest work measure).
    /// Absent in pre-scheduler result files, which parse as 0.
    pub activations: u64,
    pub gathered: bool,
    /// Whether the swarm was still connected when the run ended.
    pub connected: bool,
    /// True when the job panicked (isolated by the executor); all
    /// numeric fields are zero in that case.
    pub panicked: bool,
}

impl ScenarioRecord {
    pub fn from_measurement(sc: &Scenario, m: &Measurement) -> Self {
        ScenarioRecord {
            id: sc.id(),
            family: sc.family.name().to_string(),
            controller: sc.controller.name().to_string(),
            scheduler: sc.scheduler.name(),
            n_requested: sc.n,
            seed: sc.seed,
            n: m.n,
            rounds: m.rounds,
            merges: m.merges,
            activations: m.activations,
            gathered: m.gathered,
            connected: m.connected,
            panicked: false,
        }
    }

    /// Record for a job whose controller panicked.
    pub fn for_panic(sc: &Scenario) -> Self {
        ScenarioRecord {
            id: sc.id(),
            family: sc.family.name().to_string(),
            controller: sc.controller.name().to_string(),
            scheduler: sc.scheduler.name(),
            n_requested: sc.n,
            seed: sc.seed,
            n: 0,
            rounds: 0,
            merges: 0,
            activations: 0,
            gathered: false,
            connected: false,
            panicked: true,
        }
    }

    /// One line of the campaign JSONL stream (no trailing newline).
    pub fn to_json_line(&self) -> String {
        JsonObjWriter::new()
            .field_str("id", &self.id)
            .field_str("family", &self.family)
            .field_str("controller", &self.controller)
            .field_str("scheduler", &self.scheduler)
            .field_usize("n_requested", self.n_requested)
            .field_u64("seed", self.seed)
            .field_usize("n", self.n)
            .field_u64("rounds", self.rounds)
            .field_usize("merges", self.merges)
            .field_u64("activations", self.activations)
            .field_bool("gathered", self.gathered)
            .field_bool("connected", self.connected)
            .field_bool("panicked", self.panicked)
            .finish()
    }

    /// Parse one line; `Err` covers malformed and truncated lines.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let map = parse_flat_json(line)?;
        let str_field = |key: &str| -> Result<String, String> {
            map.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            map.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let bool_field = |key: &str| -> Result<bool, String> {
            map.get(key)
                .and_then(|v| v.as_bool())
                .ok_or_else(|| format!("missing bool field {key:?}"))
        };
        Ok(ScenarioRecord {
            id: str_field("id")?,
            family: str_field("family")?,
            controller: str_field("controller")?,
            // Written before the scheduler axis existed? FSYNC, 0 work
            // recorded — old result files must keep resuming.
            scheduler: str_field("scheduler").unwrap_or_else(|_| "fsync".to_string()),
            n_requested: u64_field("n_requested")? as usize,
            seed: u64_field("seed")?,
            n: u64_field("n")? as usize,
            rounds: u64_field("rounds")?,
            merges: u64_field("merges")? as usize,
            activations: u64_field("activations").unwrap_or(0),
            gathered: bool_field("gathered")?,
            connected: bool_field("connected")?,
            panicked: bool_field("panicked")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_bench::ControllerKind;
    use gather_workloads::Family;

    fn sample() -> ScenarioRecord {
        let sc = Scenario {
            family: Family::RandomBlob,
            n: 96,
            seed: 7,
            controller: ControllerKind::Center,
            scheduler: gather_bench::SchedulerKind::Ssync { p: 50 },
        };
        let m = Measurement {
            n: 96,
            rounds: 412,
            merges: 95,
            gathered: true,
            connected: true,
            activations: 19_776,
        };
        ScenarioRecord::from_measurement(&sc, &m)
    }

    #[test]
    fn json_round_trip() {
        let rec = sample();
        let line = rec.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(ScenarioRecord::from_json_line(&line).unwrap(), rec);
    }

    #[test]
    fn truncated_lines_fail_to_parse() {
        let line = sample().to_json_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(ScenarioRecord::from_json_line(&line[..cut]).is_err());
        }
    }

    #[test]
    fn panic_record_is_marked() {
        let sc = Scenario {
            family: Family::Line,
            n: 10,
            seed: 0,
            controller: ControllerKind::Paper,
            scheduler: gather_bench::SchedulerKind::Fsync,
        };
        let rec = ScenarioRecord::for_panic(&sc);
        assert!(rec.panicked && !rec.gathered);
        let back = ScenarioRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(ScenarioRecord::from_json_line(r#"{"id":"x"}"#).is_err());
    }

    #[test]
    fn legacy_pre_scheduler_lines_parse_as_fsync() {
        // A verbatim line from a result file written before the
        // scheduler axis existed: no `scheduler`, no `activations`.
        let line = r#"{"id":"line/n16/s1/paper","family":"line","controller":"paper","n_requested":16,"seed":1,"n":16,"rounds":7,"merges":14,"gathered":true,"connected":true,"panicked":false}"#;
        let rec = ScenarioRecord::from_json_line(line).unwrap();
        assert_eq!(rec.scheduler, "fsync");
        assert_eq!(rec.activations, 0);
        assert_eq!(rec.id, "line/n16/s1/paper");
        assert_eq!(rec.rounds, 7);
        // And the legacy ID is exactly what the FSYNC scenario produces
        // today, so resume skips it.
        let sc = Scenario {
            family: Family::Line,
            n: 16,
            seed: 1,
            controller: ControllerKind::Paper,
            scheduler: gather_bench::SchedulerKind::Fsync,
        };
        assert_eq!(sc.id(), rec.id);
    }
}
