//! Deterministic sharding of a campaign across machines.
//!
//! A shard is `I/M`: one of `M` disjoint slices of a spec's expansion.
//! The default `hash` strategy assigns each scenario by an FNV-1a hash
//! of its stable ID, so *any* machine partitions *any* spec identically
//! — no coordination, no shared state, just the spec file and a shard
//! argument. The `stride` strategy assigns by expansion index instead
//! (shard I gets jobs I, I+M, I+2M, …), an escape hatch for specs whose
//! cost gradient along the expansion order (sizes grow outward) should
//! be spread evenly across shards.
//!
//! Every shard run writes a [`ShardManifest`] next to its result JSONL:
//! the spec digest, the shard coordinates, an order-free coverage digest
//! of the scenario IDs the shard owns, and a completion marker. The
//! `campaign merge` subcommand ([`crate::merge`]) uses the manifests to
//! *prove* a set of shard outputs covers the full spec exactly once
//! before emitting a merged result file.

use std::fmt;
use std::path::{Path, PathBuf};

use gather_analysis::{parse_flat_json, JsonObjWriter};

use crate::spec::CampaignSpec;

/// FNV-1a, 64-bit. The point is *stability*, not quality: the value for
/// a given scenario ID must never change across builds, platforms, or
/// refactors, because independently-launched shard runs rely on hashing
/// identically. (`gather_trace::digest_bytes` mixes better but is our
/// own construction; FNV-1a is a published constant-for-life algorithm,
/// so a reimplementation anywhere — even a shell script — agrees.)
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How scenarios are assigned to shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardStrategy {
    /// FNV-1a of the scenario ID, mod shard count. Machine-independent
    /// and insensitive to expansion order; the default.
    #[default]
    Hash,
    /// Expansion index mod shard count: shard I gets jobs I, I+M, ….
    /// Spreads the cost gradient of ordered axes evenly across shards.
    Stride,
}

impl ShardStrategy {
    pub fn name(self) -> &'static str {
        match self {
            ShardStrategy::Hash => "hash",
            ShardStrategy::Stride => "stride",
        }
    }

    pub fn parse(s: &str) -> Option<ShardStrategy> {
        match s {
            "hash" => Some(ShardStrategy::Hash),
            "stride" => Some(ShardStrategy::Stride),
            _ => None,
        }
    }
}

/// One slice of a spec: shard `index` of `count`. The full (unsharded)
/// campaign is the degenerate `0/1` shard, so every run — sharded or
/// not — goes through the same partition and manifest path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    pub index: u32,
    pub count: u32,
}

impl ShardSpec {
    /// The whole spec as a single shard.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    pub fn is_full(self) -> bool {
        self.count == 1
    }

    /// Parse the CLI shape `I/M` (e.g. `2/4`); requires `I < M`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, m) = s.split_once('/').ok_or_else(|| format!("shard {s:?} is not I/M"))?;
        let index: u32 = i.trim().parse().map_err(|e| format!("shard index {i:?}: {e}"))?;
        let count: u32 = m.trim().parse().map_err(|e| format!("shard count {m:?}: {e}"))?;
        if count == 0 {
            return Err("shard count must be >= 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for {count} shard(s)"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Does this shard own the job at `job_index` in the expansion,
    /// whose stable ID is `id`? Exactly one shard of any `count`-way
    /// split answers yes for a given job, under either strategy.
    pub fn owns(self, strategy: ShardStrategy, job_index: usize, id: &str) -> bool {
        match strategy {
            ShardStrategy::Hash => {
                fnv1a_64(id.as_bytes()) % u64::from(self.count) == u64::from(self.index)
            }
            ShardStrategy::Stride => job_index % self.count as usize == self.index as usize,
        }
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The sidecar proof written next to each shard's result JSONL
/// ([`crate::sink::write_manifest`] puts it at `<out>.manifest.json`).
/// The `name` field is recorded for humans only; merge compatibility is
/// decided by the digests (see [`ShardManifest::mismatch_against`]).
///
/// `spec_digest` pins the exact spec the shard was cut from (an
/// order-sensitive digest of the full expanded ID list), `shard_coverage`
/// is the order-free XOR fold of the ID digests this shard owns, and
/// `spec_coverage` is the same fold over the whole spec — so a merge can
/// verify that N shards cover the spec exactly once by pure digest
/// arithmetic, without re-expanding (or even having) the spec file.
/// `complete` flips to true only after the shard's last scenario is on
/// disk; a manifest without it is a shard that is still running or died.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Campaign name, recorded for humans only (never compared).
    pub name: String,
    pub strategy: ShardStrategy,
    pub shard_index: u32,
    pub shard_count: u32,
    /// Order-sensitive digest of the full expanded scenario-ID list.
    pub spec_digest: u64,
    /// Scenario count of the full spec.
    pub spec_len: usize,
    /// Order-free coverage digest (XOR of ID digests) of the full spec.
    pub spec_coverage: u64,
    /// Scenario count this shard owns.
    pub shard_len: usize,
    /// Order-free coverage digest of the IDs this shard owns.
    pub shard_coverage: u64,
    /// True once every owned scenario's record is on disk.
    pub complete: bool,
}

impl ShardManifest {
    /// The manifest a fresh (not yet complete) run of `shard` under
    /// `strategy` should write for `spec`. All five digest/length fields
    /// come from a single expansion pass (every ID built and digested
    /// once), matching [`CampaignSpec::spec_digest`] /
    /// [`CampaignSpec::coverage_digest`] bit for bit — a 2000-scenario
    /// spec is expanded once here, not once per field.
    pub fn for_shard(spec: &CampaignSpec, shard: ShardSpec, strategy: ShardStrategy) -> Self {
        Self::build(spec, shard, strategy, |_| true)
    }

    /// The manifest for a shard's *trace set* (`campaign record --shard`):
    /// identical construction, but counted over the traced scenarios only
    /// — the greedy strawman drives itself and leaves no `.gtrc`, so a
    /// trace-dir coverage proof must not expect one. Note the spec digest
    /// therefore differs from [`ShardManifest::for_shard`]'s, which is
    /// exactly right: a result merge and a trace merge verify different
    /// artifact sets and must not accept each other's manifests.
    pub fn for_traced_shard(
        spec: &CampaignSpec,
        shard: ShardSpec,
        strategy: ShardStrategy,
    ) -> Self {
        Self::build(spec, shard, strategy, |sc| {
            sc.controller != gather_bench::ControllerKind::Greedy
        })
    }

    fn build(
        spec: &CampaignSpec,
        shard: ShardSpec,
        strategy: ShardStrategy,
        counted: impl Fn(&crate::spec::Scenario) -> bool,
    ) -> Self {
        let mut joined = String::new();
        let mut spec_len = 0usize;
        let mut spec_coverage = 0u64;
        let mut shard_len = 0usize;
        let mut shard_coverage = 0u64;
        for (job_index, sc) in spec.expand().iter().enumerate() {
            if !counted(sc) {
                continue;
            }
            let id = sc.id();
            joined.push_str(&id);
            joined.push('\n');
            let digest = gather_trace::digest_bytes(id.as_bytes());
            spec_len += 1;
            spec_coverage ^= digest;
            if shard.owns(strategy, job_index, &id) {
                shard_len += 1;
                shard_coverage ^= digest;
            }
        }
        ShardManifest {
            name: spec.name.clone(),
            strategy,
            shard_index: shard.index,
            shard_count: shard.count,
            spec_digest: gather_trace::digest_bytes(joined.as_bytes()),
            spec_len,
            spec_coverage,
            shard_len,
            shard_coverage,
            complete: false,
        }
    }

    /// The shard coordinates as a [`ShardSpec`].
    pub fn shard(&self) -> ShardSpec {
        ShardSpec { index: self.shard_index, count: self.shard_count }
    }

    /// One-line JSON (the manifest file's entire content, newline
    /// terminated by the writer). Digests are exact u64s — the flat-JSON
    /// parser keeps integers out of f64, so they round trip bit-exactly.
    pub fn to_json(&self) -> String {
        JsonObjWriter::new()
            .field_str("kind", "shard-manifest")
            .field_str("name", &self.name)
            .field_str("strategy", self.strategy.name())
            .field_u64("shard_index", u64::from(self.shard_index))
            .field_u64("shard_count", u64::from(self.shard_count))
            .field_u64("spec_digest", self.spec_digest)
            .field_usize("spec_len", self.spec_len)
            .field_u64("spec_coverage", self.spec_coverage)
            .field_usize("shard_len", self.shard_len)
            .field_u64("shard_coverage", self.shard_coverage)
            .field_bool("complete", self.complete)
            .finish()
    }

    pub fn from_json(text: &str) -> Result<ShardManifest, String> {
        let map = parse_flat_json(text.trim())?;
        let str_field = |key: &str| -> Result<&str, String> {
            map.get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("manifest is missing string field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            map.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("manifest is missing integer field {key:?}"))
        };
        if str_field("kind")? != "shard-manifest" {
            return Err("not a shard manifest (kind mismatch)".into());
        }
        let strategy = str_field("strategy")?;
        let strategy = ShardStrategy::parse(strategy)
            .ok_or_else(|| format!("unknown shard strategy {strategy:?}"))?;
        let shard_index = u32::try_from(u64_field("shard_index")?)
            .map_err(|_| "shard_index out of range".to_string())?;
        let shard_count = u32::try_from(u64_field("shard_count")?)
            .map_err(|_| "shard_count out of range".to_string())?;
        if shard_count == 0 || shard_index >= shard_count {
            return Err(format!("shard {shard_index}/{shard_count} is not a valid slice"));
        }
        let complete = map
            .get("complete")
            .and_then(|v| v.as_bool())
            .ok_or("manifest is missing bool field \"complete\"")?;
        Ok(ShardManifest {
            name: str_field("name")?.to_string(),
            strategy,
            shard_index,
            shard_count,
            spec_digest: u64_field("spec_digest")?,
            spec_len: u64_field("spec_len")? as usize,
            spec_coverage: u64_field("spec_coverage")?,
            shard_len: u64_field("shard_len")? as usize,
            shard_coverage: u64_field("shard_coverage")?,
            complete,
        })
    }

    /// Do two manifests describe shards of the same partitioned spec?
    /// Returns the first disagreeing field name, or `None` when they
    /// are mergeable siblings. The campaign name is deliberately *not*
    /// compared — it is cosmetic and excluded from `spec_digest` for
    /// the same reason: renaming a spec file (or planning shards under
    /// a default name) must not strand completed shard outputs.
    pub fn mismatch_against(&self, other: &ShardManifest) -> Option<&'static str> {
        if self.spec_digest != other.spec_digest {
            Some("spec_digest")
        } else if self.spec_len != other.spec_len {
            Some("spec_len")
        } else if self.spec_coverage != other.spec_coverage {
            Some("spec_coverage")
        } else if self.shard_count != other.shard_count {
            Some("shard_count")
        } else if self.strategy != other.strategy {
            Some("strategy")
        } else {
            None
        }
    }
}

/// Default per-shard result path: `c.jsonl` + shard `2/4` →
/// `c.shard2of4.jsonl` (suffix appended before the extension so a glob
/// like `c.shard*.jsonl` collects exactly one campaign's shards). A
/// stem that already carries a shard tag is stripped first, so feeding
/// a shard's own output path back in (replanning, resubmitting) yields
/// `c.shard1of2.jsonl` → `c.shard2of4.jsonl`, never a stacked
/// `c.shard1of2.shard2of4.jsonl`.
pub fn shard_out_path(out: &Path, shard: ShardSpec) -> PathBuf {
    let tag = format!("shard{}of{}", shard.index, shard.count);
    // Strip a trailing tag first: an extensionless shard output like
    // `bare.shard3of8` would otherwise read its old tag as the
    // extension and keep it.
    let name = strip_shard_tag(&out.file_name().unwrap_or_default().to_string_lossy());
    match name.rsplit_once('.') {
        Some((stem, ext)) => out.with_file_name(format!("{}.{tag}.{ext}", strip_shard_tag(stem))),
        None => out.with_file_name(format!("{name}.{tag}")),
    }
}

/// Drop a trailing `.shardIofM` tag from a file stem, if present. Only
/// a well-formed tag (both coordinates pure digits) is stripped — a
/// stem like `data.shardXofY` or `offshard3of4` passes through intact.
fn strip_shard_tag(stem: &str) -> String {
    if let Some((prefix, tail)) = stem.rsplit_once('.') {
        if let Some(rest) = tail.strip_prefix("shard") {
            if let Some((i, m)) = rest.split_once("of") {
                let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
                if digits(i) && digits(m) {
                    return prefix.to_string();
                }
            }
        }
    }
    stem.to_string()
}

/// Quote one word for copy-paste into a POSIX shell: passed through
/// untouched when it word-splits cleanly, single-quoted (with embedded
/// quotes escaped) otherwise — an `--out 'my results/w.jsonl'` must not
/// shatter into two arguments when the printed plan is pasted.
fn sh_word(s: &str) -> String {
    let clean = !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'/' | b',' | b'-'));
    if clean {
        s.to_string()
    } else {
        format!("'{}'", s.replace('\'', r"'\''"))
    }
}

/// The exact command lines that execute `spec` as `count` shards and
/// merge the results — what `campaign plan --shards M` prints. Axis
/// flags are emitted explicitly (never a `--spec` reference), so each
/// line is self-contained and runs on a machine that has only the
/// binary. The final line is the merge.
pub fn plan_lines(
    spec: &CampaignSpec,
    count: u32,
    strategy: ShardStrategy,
    out: &Path,
    threads: usize,
) -> Vec<String> {
    let join = |items: Vec<String>| items.join(",");
    let mut axes = format!(
        "--families {} --sizes {} --seeds {} --controllers {} --schedulers {}",
        join(spec.families.iter().map(|f| f.name().to_string()).collect()),
        join(spec.sizes.iter().map(|n| n.to_string()).collect()),
        join(spec.seeds.iter().map(|s| s.to_string()).collect()),
        join(spec.controllers.iter().map(|c| c.name().to_string()).collect()),
        join(spec.schedulers.iter().map(|s| s.name()).collect()),
    );
    // The name is cosmetic but user-controlled: quote it like the
    // paths so a hostile or merely awkward spec name cannot inject
    // into the copy-paste lines.
    if !spec.name.is_empty() {
        axes.push_str(&format!(" --name {}", sh_word(&spec.name)));
    }
    if threads != 0 {
        axes.push_str(&format!(" --threads {threads}"));
    }
    let mut lines = Vec::with_capacity(count as usize + 1);
    let mut shard_outs = Vec::with_capacity(count as usize);
    for index in 0..count {
        let shard = ShardSpec { index, count };
        let shard_out = sh_word(&shard_out_path(out, shard).display().to_string());
        lines.push(format!(
            "campaign run --shard {shard} --shard-strategy {} --out {shard_out} {axes}",
            strategy.name(),
        ));
        shard_outs.push(shard_out);
    }
    lines.push(format!(
        "campaign merge --out {} {}",
        sh_word(&out.display().to_string()),
        shard_outs.join(" ")
    ));
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_published_vectors() {
        // The FNV-1a 64-bit reference values; if these ever change, every
        // previously-cut shard partition silently reshuffles.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_parse_accepts_slices_and_rejects_junk() {
        assert_eq!(ShardSpec::parse("0/1").unwrap(), ShardSpec::FULL);
        assert_eq!(ShardSpec::parse("2/4").unwrap(), ShardSpec { index: 2, count: 4 });
        assert_eq!(ShardSpec::parse("2/4").unwrap().to_string(), "2/4");
        for bad in ["", "3", "4/4", "5/4", "x/4", "1/x", "1/0", "-1/4"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn every_job_is_owned_by_exactly_one_shard() {
        let ids = ["line/n64/s3/paper", "square/n16/s1/center/rr4", "clusters/n2048/s0/paper"];
        for strategy in [ShardStrategy::Hash, ShardStrategy::Stride] {
            for count in 1..=8u32 {
                for (job_index, id) in ids.iter().enumerate() {
                    let owners = (0..count)
                        .filter(|&index| ShardSpec { index, count }.owns(strategy, job_index, id))
                        .count();
                    assert_eq!(owners, 1, "{strategy:?} {count} shards, job {id}");
                }
            }
        }
    }

    #[test]
    fn the_full_shard_owns_everything() {
        for strategy in [ShardStrategy::Hash, ShardStrategy::Stride] {
            assert!(ShardSpec::FULL.owns(strategy, 7, "line/n64/s3/paper"));
        }
    }

    #[test]
    fn manifest_json_round_trips() {
        let spec = CampaignSpec::standard();
        let shard = ShardSpec { index: 1, count: 4 };
        let mut m = ShardManifest::for_shard(&spec, shard, ShardStrategy::Hash);
        m.complete = true;
        let back = ShardManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.shard(), shard);
        assert!(ShardManifest::from_json("{").is_err());
        assert!(ShardManifest::from_json(r#"{"kind":"something-else"}"#).is_err());
        assert!(
            ShardManifest::from_json(
                &m.to_json().replace("\"shard_index\":1", "\"shard_index\":9")
            )
            .is_err(),
            "out-of-range shard index must be rejected"
        );
    }

    #[test]
    fn sibling_manifests_agree_and_strangers_do_not() {
        let spec = CampaignSpec::standard();
        let a =
            ShardManifest::for_shard(&spec, ShardSpec { index: 0, count: 2 }, ShardStrategy::Hash);
        let b =
            ShardManifest::for_shard(&spec, ShardSpec { index: 1, count: 2 }, ShardStrategy::Hash);
        assert_eq!(a.mismatch_against(&b), None);
        let mut other = CampaignSpec::standard();
        other.sizes.push(256);
        let c =
            ShardManifest::for_shard(&other, ShardSpec { index: 1, count: 2 }, ShardStrategy::Hash);
        assert_eq!(a.mismatch_against(&c), Some("spec_digest"));
        let d = ShardManifest::for_shard(
            &spec,
            ShardSpec { index: 1, count: 2 },
            ShardStrategy::Stride,
        );
        assert_eq!(a.mismatch_against(&d), Some("strategy"));
        // The name is cosmetic: a renamed spec file (or shards planned
        // under a default name) must still merge.
        let renamed = ShardManifest { name: "renamed".into(), ..b.clone() };
        assert_eq!(a.mismatch_against(&renamed), None);
    }

    #[test]
    fn shard_out_paths_keep_the_extension() {
        let shard = ShardSpec { index: 2, count: 4 };
        assert_eq!(shard_out_path(Path::new("c.jsonl"), shard), PathBuf::from("c.shard2of4.jsonl"));
        assert_eq!(
            shard_out_path(Path::new("/tmp/results/weak.jsonl"), shard),
            PathBuf::from("/tmp/results/weak.shard2of4.jsonl")
        );
        assert_eq!(shard_out_path(Path::new("bare"), shard), PathBuf::from("bare.shard2of4"));
    }

    #[test]
    fn shard_out_paths_do_not_stack_suffixes() {
        // Regression: resubmitting a path that is already a shard output
        // used to produce `c.shard1of2.shard2of4.jsonl`.
        let shard = ShardSpec { index: 2, count: 4 };
        assert_eq!(
            shard_out_path(Path::new("c.shard1of2.jsonl"), shard),
            PathBuf::from("c.shard2of4.jsonl")
        );
        assert_eq!(
            shard_out_path(Path::new("/tmp/r/weak.shard0of4.jsonl"), shard),
            PathBuf::from("/tmp/r/weak.shard2of4.jsonl")
        );
        assert_eq!(
            shard_out_path(Path::new("bare.shard3of8"), shard),
            PathBuf::from("bare.shard2of4"),
            "extensionless shard outputs are re-tagged, not stacked"
        );
        // Near-miss tags are data, not shard suffixes: leave them alone.
        assert_eq!(
            shard_out_path(Path::new("c.shardXofY.jsonl"), shard),
            PathBuf::from("c.shardXofY.shard2of4.jsonl")
        );
        assert_eq!(
            shard_out_path(Path::new("offshard3of4.jsonl"), shard),
            PathBuf::from("offshard3of4.shard2of4.jsonl")
        );
    }

    #[test]
    fn manifest_digests_match_the_spec_methods() {
        // for_shard computes all five digest/length fields in one
        // expansion pass; they must agree bit for bit with the (multi-
        // expansion) CampaignSpec methods merge verification leans on.
        let spec = CampaignSpec::standard();
        let shard = ShardSpec { index: 1, count: 3 };
        for strategy in [ShardStrategy::Hash, ShardStrategy::Stride] {
            let m = ShardManifest::for_shard(&spec, shard, strategy);
            assert_eq!(m.spec_digest, spec.spec_digest());
            assert_eq!(m.spec_len, spec.len());
            assert_eq!(m.spec_coverage, spec.coverage_digest());
            let ids: Vec<String> =
                spec.expand_shard(shard, strategy).iter().map(|sc| sc.id()).collect();
            assert_eq!(m.shard_len, ids.len());
            assert_eq!(m.shard_coverage, crate::spec::coverage_xor(ids.iter().map(String::as_str)));
        }
    }

    #[test]
    fn plan_quotes_paths_that_would_word_split() {
        assert_eq!(sh_word("out.shard0of4.jsonl"), "out.shard0of4.jsonl");
        assert_eq!(sh_word("/tmp/r/c.jsonl"), "/tmp/r/c.jsonl");
        assert_eq!(sh_word("my results/w.jsonl"), "'my results/w.jsonl'");
        assert_eq!(sh_word("it's.jsonl"), r"'it'\''s.jsonl'");
        assert_eq!(sh_word(""), "''");

        let lines = plan_lines(
            &CampaignSpec::standard(),
            2,
            ShardStrategy::Hash,
            Path::new("my results/w.jsonl"),
            0,
        );
        assert!(
            lines[0].contains("--out 'my results/w.shard0of2.jsonl'"),
            "spaced paths must survive copy-paste: {}",
            lines[0]
        );
        assert!(lines[2].contains("--out 'my results/w.jsonl'"), "{}", lines[2]);
    }

    #[test]
    fn plan_covers_every_shard_and_ends_with_the_merge() {
        let mut spec = CampaignSpec::standard();
        spec.name = "mini".into();
        let lines = plan_lines(&spec, 4, ShardStrategy::Hash, Path::new("out.jsonl"), 0);
        assert_eq!(lines.len(), 5);
        for (i, line) in lines[..4].iter().enumerate() {
            assert!(line.contains(&format!("--shard {i}/4")), "{line}");
            assert!(line.contains(&format!("out.shard{i}of4.jsonl")), "{line}");
            assert!(line.contains("--families"), "self-contained axes: {line}");
            assert!(!line.contains("--spec"), "plan lines must not need the spec file: {line}");
        }
        assert!(lines[4].starts_with("campaign merge --out out.jsonl "));
        assert!(lines[4].contains("out.shard3of4.jsonl"));
    }
}
