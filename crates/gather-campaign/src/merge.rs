//! Verified merge of shard result files into one campaign result set.
//!
//! `campaign merge` ingests N shard outputs (each a JSONL result file
//! with a [`ShardManifest`] sidecar) and refuses to emit anything until
//! it has *proved* the set covers the spec exactly once:
//!
//! 1. every input has a manifest, all manifests describe the same
//!    partitioned spec (digest, length, coverage, shard count,
//!    strategy), and every one carries the completion marker;
//! 2. the shard indexes are exactly `0..count` — a duplicated index is
//!    an overlapping shard, a gap is a missing one;
//! 3. the per-shard coverage digests XOR-fold to the spec coverage and
//!    the per-shard lengths sum to the spec length;
//! 4. each shard's *records* (deduplicated by scenario ID, keeping the
//!    last occurrence — a resumed shard legitimately re-emits lines)
//!    match its manifest's length and coverage digest exactly, so a
//!    torn line, a lost record, or a foreign record is caught;
//! 5. no scenario ID appears in two different shard files.
//!
//! Only then is the merged JSONL written — records sorted by scenario
//! ID, each the *last* occurrence from its shard, re-serialized by the
//! current writer (older files with extra or reordered fields come out
//! normalized, not byte-copied) — plus a manifest marking the merged
//! file as a complete `0/1` shard, so a merged file passes the same
//! verification an unsharded run would.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::record::ScenarioRecord;
use crate::shard::{ShardManifest, ShardSpec};
use crate::sink::{self, JsonlSink};
use crate::spec::coverage_xor;

/// What one shard contributed to a merge, for the provenance report.
#[derive(Clone, Debug)]
pub struct ShardContribution {
    pub path: PathBuf,
    pub shard_index: u32,
    /// Distinct scenarios after dedup.
    pub records: usize,
    /// Resumed-duplicate lines dropped (last occurrence kept).
    pub duplicates: usize,
    /// Malformed / torn lines skipped by the reader.
    pub skipped_lines: usize,
}

/// The verified outcome of a merge.
#[derive(Clone, Debug)]
pub struct MergeReport {
    /// Campaign name from the manifests.
    pub name: String,
    pub shard_count: u32,
    /// Scenarios in the merged output (== the spec length).
    pub total: usize,
    /// Resumed duplicates dropped across all shards.
    pub duplicates: usize,
    pub shards: Vec<ShardContribution>,
}

/// Steps 1.–3. of the merge proof, shared by the result-file and
/// trace-directory merges: manifests consistent and complete, shard
/// indexes exactly `0..count`, and the per-shard digests folding to the
/// spec's. (Step 4. — matching what is actually *on disk* against each
/// manifest — is artifact-specific and stays with the callers.)
fn verify_shard_set(inputs: &[PathBuf], manifests: &[ShardManifest]) -> Result<(), String> {
    let reference = &manifests[0];
    for (path, manifest) in inputs.iter().zip(manifests).skip(1) {
        if let Some(field) = reference.mismatch_against(manifest) {
            return Err(format!(
                "mixed-spec shards: {} disagrees with {} on {field} — these outputs were not \
                 cut from the same partitioned spec",
                path.display(),
                inputs[0].display(),
            ));
        }
    }
    for (path, manifest) in inputs.iter().zip(manifests) {
        if !manifest.complete {
            return Err(format!(
                "shard {} ({}) has no completion marker — still running, or its run died",
                manifest.shard(),
                path.display(),
            ));
        }
    }

    // 2. Indexes are exactly 0..count: no overlap, no gap.
    let count = reference.shard_count;
    let mut owner_of_index: Vec<Option<&Path>> = vec![None; count as usize];
    for (path, manifest) in inputs.iter().zip(manifests) {
        let slot = &mut owner_of_index[manifest.shard_index as usize];
        if let Some(first) = slot {
            return Err(format!(
                "overlapping shards: {} and {} both claim shard {}",
                first.display(),
                path.display(),
                manifest.shard(),
            ));
        }
        *slot = Some(path);
    }
    let missing: Vec<String> = owner_of_index
        .iter()
        .enumerate()
        .filter(|(_, owner)| owner.is_none())
        .map(|(index, _)| ShardSpec { index: index as u32, count }.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "missing shard(s) {}: only {} of {count} shard outputs present",
            missing.join(", "),
            inputs.len(),
        ));
    }

    // 3. Digest arithmetic: the manifests must cover the spec exactly.
    let folded = manifests.iter().fold(0u64, |acc, m| acc ^ m.shard_coverage);
    let summed: usize = manifests.iter().map(|m| m.shard_len).sum();
    if folded != reference.spec_coverage || summed != reference.spec_len {
        return Err(format!(
            "shard manifests do not cover the spec exactly once ({summed} scenarios claimed, \
             spec has {}; coverage digests fold to {folded:#018x}, spec is {:#018x})",
            reference.spec_len, reference.spec_coverage,
        ));
    }
    Ok(())
}

/// Merge `inputs` into `out` after full verification; any hole in the
/// proof is an `Err` and nothing is written. See the module docs for
/// the exact checks.
pub fn merge_shards(inputs: &[PathBuf], out: &Path) -> Result<MergeReport, String> {
    if inputs.is_empty() {
        return Err("merge needs at least one shard result file".into());
    }

    // 1. Manifests: present, consistent, complete.
    let mut manifests = Vec::with_capacity(inputs.len());
    for path in inputs {
        let manifest = sink::read_manifest(path)?.ok_or_else(|| {
            format!(
                "{} has no shard manifest (expected {}) — was it written by `campaign run`?",
                path.display(),
                sink::manifest_path(path).display(),
            )
        })?;
        manifests.push(manifest);
    }
    verify_shard_set(inputs, &manifests)?;
    let reference = &manifests[0];
    let count = reference.shard_count;

    // 4.–5. Records: dedup per shard, verify against the manifest,
    // reject cross-shard duplicates.
    let mut merged: BTreeMap<String, ScenarioRecord> = BTreeMap::new();
    let mut contributions = Vec::with_capacity(inputs.len());
    let mut duplicates_total = 0usize;
    for (path, manifest) in inputs.iter().zip(&manifests) {
        let (records, skipped_lines) =
            sink::load_records(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let lines = records.len();
        let mut distinct: BTreeMap<String, ScenarioRecord> = BTreeMap::new();
        for rec in records {
            distinct.insert(rec.id.clone(), rec); // last occurrence wins
        }
        let duplicates = lines - distinct.len();
        let observed = coverage_xor(distinct.keys().map(String::as_str));
        if distinct.len() != manifest.shard_len || observed != manifest.shard_coverage {
            return Err(format!(
                "shard {} ({}) does not match its manifest: {} distinct record(s) on disk, \
                 manifest claims {}{} — the file is torn, incomplete, or holds foreign records",
                manifest.shard(),
                path.display(),
                distinct.len(),
                manifest.shard_len,
                if skipped_lines > 0 {
                    format!(" ({skipped_lines} malformed line(s) skipped)")
                } else {
                    String::new()
                },
            ));
        }
        for (id, rec) in distinct {
            if merged.insert(id.clone(), rec).is_some() {
                return Err(format!(
                    "scenario {id:?} appears in more than one shard file (second copy in {})",
                    path.display(),
                ));
            }
        }
        duplicates_total += duplicates;
        contributions.push(ShardContribution {
            path: path.clone(),
            shard_index: manifest.shard_index,
            records: manifest.shard_len,
            duplicates,
            skipped_lines,
        });
    }
    contributions.sort_by_key(|c| c.shard_index);

    // Emit: sorted by scenario ID (deterministic regardless of shard
    // arrival order), then the merged manifest — a complete 0/1 shard,
    // so the output verifies exactly like an unsharded run's would.
    let mut sink_out =
        JsonlSink::create(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    for rec in merged.values() {
        sink_out.write(rec).map_err(|e| format!("writing {}: {e}", out.display()))?;
    }
    let merged_manifest = ShardManifest {
        name: reference.name.clone(),
        strategy: reference.strategy,
        shard_index: 0,
        shard_count: 1,
        spec_digest: reference.spec_digest,
        spec_len: reference.spec_len,
        spec_coverage: reference.spec_coverage,
        shard_len: reference.spec_len,
        shard_coverage: reference.spec_coverage,
        complete: true,
    };
    sink::write_manifest(out, &merged_manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", out.display()))?;

    Ok(MergeReport {
        name: reference.name.clone(),
        shard_count: count,
        total: merged.len(),
        duplicates: duplicates_total,
        shards: contributions,
    })
}

/// Merge sharded *trace directories* (`campaign record --shard`) into
/// one trace set, under the same proof obligations as the result merge:
/// every input directory must carry a complete trace manifest, the
/// manifests must describe the same partitioned spec with indexes
/// exactly `0..count`, and each directory's `.gtrc` files must match
/// its manifest's traced-scenario count and coverage digest (file names
/// are cross-checked against the scenario IDs in the trace headers, so
/// a renamed or foreign file is caught). Only then are the traces
/// byte-copied into `out` — recording is deterministic, so the merged
/// set is bit-identical to what an unsharded `campaign record` writes —
/// and `out` gains a complete `0/1` manifest of its own.
pub fn merge_trace_dirs(inputs: &[PathBuf], out: &Path) -> Result<MergeReport, String> {
    use gather_trace::{TraceError, TraceReader};
    use std::fs::File;
    use std::io::BufReader;

    use crate::trace_ops::{self, trace_file_name};

    if inputs.is_empty() {
        return Err("merge needs at least one shard trace directory".into());
    }

    // 1. Manifests: present, consistent, complete; indexes and digest
    // arithmetic verified exactly like the result merge.
    let mut manifests = Vec::with_capacity(inputs.len());
    for dir in inputs {
        let manifest = trace_ops::read_trace_manifest(dir)?.ok_or_else(|| {
            format!(
                "{} has no trace manifest (expected {}) — was it written by `campaign record`?",
                dir.display(),
                trace_ops::trace_manifest_path(dir).display(),
            )
        })?;
        manifests.push(manifest);
    }
    verify_shard_set(inputs, &manifests)?;
    let reference = &manifests[0];

    // 4.–5. Traces on disk: each directory's files must match its
    // manifest exactly, and no scenario may be traced by two shards.
    let mut merged: BTreeMap<String, PathBuf> = BTreeMap::new();
    let mut contributions = Vec::with_capacity(inputs.len());
    for (dir, manifest) in inputs.iter().zip(&manifests) {
        let files = trace_ops::list_trace_files(dir)
            .map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let mut coverage = 0u64;
        for path in &files {
            let reader = File::open(path)
                .map_err(TraceError::Io)
                .and_then(|f| TraceReader::new(BufReader::new(f)))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let id = reader.header().scenario_id.clone();
            let expected = trace_file_name(&id);
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if name.as_deref() != Some(expected.as_str()) {
                return Err(format!(
                    "{} holds scenario {id:?} but is not named {expected:?} — the file was \
                     renamed or substituted since it was recorded",
                    path.display(),
                ));
            }
            coverage ^= gather_trace::digest_bytes(id.as_bytes());
            if let Some(first) = merged.insert(expected, path.clone()) {
                return Err(format!(
                    "scenario {id:?} is traced by more than one shard ({} and {})",
                    first.display(),
                    path.display(),
                ));
            }
        }
        if files.len() != manifest.shard_len || coverage != manifest.shard_coverage {
            return Err(format!(
                "shard {} ({}) does not match its manifest: {} trace(s) on disk, manifest \
                 claims {} — the set is torn, incomplete, or holds foreign traces",
                manifest.shard(),
                dir.display(),
                files.len(),
                manifest.shard_len,
            ));
        }
        contributions.push(ShardContribution {
            path: dir.clone(),
            shard_index: manifest.shard_index,
            records: manifest.shard_len,
            duplicates: 0,
            skipped_lines: 0,
        });
    }
    contributions.sort_by_key(|c| c.shard_index);

    // Emit: a clean output directory (stale traces from an earlier
    // merge removed, like `record` does), every verified trace
    // byte-copied, then the full-cover manifest.
    std::fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    trace_ops::clean_trace_dir(out).map_err(|e| format!("cleaning {}: {e}", out.display()))?;
    for (name, src) in &merged {
        std::fs::copy(src, out.join(name))
            .map_err(|e| format!("copying {} into {}: {e}", src.display(), out.display()))?;
    }
    let merged_manifest = ShardManifest {
        name: reference.name.clone(),
        strategy: reference.strategy,
        shard_index: 0,
        shard_count: 1,
        spec_digest: reference.spec_digest,
        spec_len: reference.spec_len,
        spec_coverage: reference.spec_coverage,
        shard_len: reference.spec_len,
        shard_coverage: reference.spec_coverage,
        complete: true,
    };
    trace_ops::write_trace_manifest(out, &merged_manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", out.display()))?;

    Ok(MergeReport {
        name: reference.name.clone(),
        shard_count: reference.shard_count,
        total: merged.len(),
        duplicates: 0,
        shards: contributions,
    })
}

#[cfg(test)]
mod tests {
    //! Unit coverage for the report shape; the edge-case matrix
    //! (missing/overlapping/torn/duplicated shards and the
    //! sharded-equals-unsharded acceptance property) lives in
    //! `tests/shard_merge.rs` where real shard runs are cheap.

    use super::*;

    #[test]
    fn empty_input_list_is_rejected() {
        let err = merge_shards(&[], Path::new("/tmp/never-written.jsonl")).unwrap_err();
        assert!(err.contains("at least one"), "{err}");
    }

    #[test]
    fn missing_manifest_is_rejected_by_name() {
        let path = std::env::temp_dir()
            .join(format!("gather-merge-nomanifest-{}.jsonl", std::process::id()));
        std::fs::write(&path, "").unwrap();
        let err = merge_shards(std::slice::from_ref(&path), Path::new("/tmp/never-written.jsonl"))
            .unwrap_err();
        assert!(err.contains("manifest"), "{err}");
        assert!(err.contains(&path.display().to_string()), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
