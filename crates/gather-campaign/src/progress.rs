//! The campaign's progress surface: one reporter that owns both the
//! `--events FILE` NDJSON stream and the stderr status lines.
//!
//! The stderr renderer derives every number it prints from the event it
//! just emitted, so the CLI and the event file can never disagree — the
//! invariant the `campaign serve` protocol inherits. `--quiet` only
//! silences stderr; the event stream (when requested) always gets the
//! full history.

use std::io;
use std::path::Path;
use std::time::Instant;

use gather_obs::{Event, EventWriter, Status};

use crate::record::ScenarioRecord;

/// Maps a finished record onto its event-stream status token.
pub fn record_status(rec: &ScenarioRecord) -> Status {
    if rec.panicked {
        Status::Panicked
    } else if rec.gathered {
        Status::Gathered
    } else if !rec.connected {
        Status::Disconnected
    } else {
        Status::Stalled
    }
}

/// Emits the campaign lifecycle to an optional event file and renders
/// progress lines to stderr (unless quiet). Event-file write failures
/// surface as `Err` so the caller can abort the campaign — a requested
/// event stream that silently stops mid-run would be worse than none.
pub struct ProgressReporter {
    events: Option<EventWriter>,
    quiet: bool,
    started_at: Instant,
    total: usize,
    done: usize,
    panicked: usize,
}

impl ProgressReporter {
    /// Open the reporter for a job of `total` scenarios, emitting
    /// `job_started`. With `append` (resume), events are appended to the
    /// existing file as a new segment — in-flight scenarios of the
    /// killed run are implicitly abandoned at the segment boundary.
    pub fn start(
        job: &str,
        total: usize,
        events: Option<&Path>,
        append: bool,
        quiet: bool,
    ) -> io::Result<ProgressReporter> {
        let mut reporter = ProgressReporter {
            events: match events {
                Some(path) if append => Some(EventWriter::append(path)?),
                Some(path) => Some(EventWriter::create(path)?),
                None => None,
            },
            quiet,
            started_at: Instant::now(),
            total,
            done: 0,
            panicked: 0,
        };
        reporter.emit(&Event::JobStarted { job: job.to_string(), total })?;
        Ok(reporter)
    }

    /// A worker picked up `id`.
    pub fn scenario_started(&mut self, id: &str) -> io::Result<()> {
        self.emit(&Event::ScenarioStarted { id: id.to_string() })
    }

    /// A scenario finished with `rec` after `secs` seconds of wall
    /// time; emits `scenario_finished` + `heartbeat` and renders the
    /// stderr line from those events' own values.
    pub fn scenario_finished(&mut self, rec: &ScenarioRecord, secs: f64) -> io::Result<()> {
        self.done += 1;
        let status = record_status(rec);
        if status == Status::Panicked {
            self.panicked += 1;
        }
        let robot_rounds_per_s =
            if secs > 0.0 { (rec.n as f64 * rec.rounds as f64) / secs } else { 0.0 };
        let finished = Event::ScenarioFinished {
            id: rec.id.clone(),
            status,
            rounds: rec.rounds,
            secs,
            robot_rounds_per_s,
        };
        let heartbeat =
            Event::Heartbeat { done: self.done, total: self.total, eta_secs: self.eta_secs() };
        self.emit(&finished)?;
        self.emit(&heartbeat)?;
        if !self.quiet {
            if let (
                Event::ScenarioFinished { id, status, rounds, .. },
                Event::Heartbeat { done, total, eta_secs },
            ) = (&finished, &heartbeat)
            {
                let status = match status {
                    Status::Panicked => "PANIC",
                    other => other.as_str(),
                };
                eprintln!("[{done}/{total}] {id} {status} rounds={rounds} eta={eta_secs:.0}s");
            }
        }
        Ok(())
    }

    /// The run completed (all scenarios done, or a clean abort after
    /// the ones already counted); emits the terminating `job_finished`.
    pub fn finish(&mut self) -> io::Result<()> {
        let event = Event::JobFinished {
            done: self.done,
            panicked: self.panicked,
            secs: self.started_at.elapsed().as_secs_f64(),
        };
        self.emit(&event)
    }

    /// Scenarios finished so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Of which panicked.
    pub fn panicked(&self) -> usize {
        self.panicked
    }

    /// Elapsed-rate estimate of the time remaining (0 when nothing has
    /// finished yet — no rate to extrapolate from).
    fn eta_secs(&self) -> f64 {
        if self.done == 0 || self.done >= self.total {
            return 0.0;
        }
        let elapsed = self.started_at.elapsed().as_secs_f64();
        elapsed / self.done as f64 * (self.total - self.done) as f64
    }

    fn emit(&mut self, event: &Event) -> io::Result<()> {
        match &mut self.events {
            Some(writer) => writer.emit(event),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gather_bench::{ControllerKind, SchedulerKind};
    use gather_obs::{read_events, validate};
    use gather_workloads::Family;

    fn rec(id: &str, gathered: bool, connected: bool, panicked: bool) -> ScenarioRecord {
        let sc = crate::spec::Scenario {
            family: Family::Line,
            n: 16,
            seed: 1,
            controller: ControllerKind::Paper,
            scheduler: SchedulerKind::Fsync,
        };
        let mut rec = ScenarioRecord::for_panic(&sc);
        rec.id = id.to_string();
        rec.n = 16;
        rec.rounds = 9;
        rec.gathered = gathered;
        rec.connected = connected;
        rec.panicked = panicked;
        rec
    }

    #[test]
    fn statuses_map_like_the_aggregator() {
        assert_eq!(record_status(&rec("a", true, true, false)), Status::Gathered);
        assert_eq!(record_status(&rec("a", false, true, false)), Status::Stalled);
        assert_eq!(record_status(&rec("a", false, false, false)), Status::Disconnected);
        // Panic wins over everything else.
        assert_eq!(record_status(&rec("a", false, false, true)), Status::Panicked);
    }

    #[test]
    fn reporter_emits_a_complete_validating_stream() {
        let dir = std::env::temp_dir().join("gather-progress-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.ndjson");
        let mut reporter = ProgressReporter::start("demo", 2, Some(&path), false, true).unwrap();
        for id in ["a", "b"] {
            reporter.scenario_started(id).unwrap();
            reporter.scenario_finished(&rec(id, id == "a", true, id == "b"), 0.5).unwrap();
        }
        reporter.finish().unwrap();
        assert_eq!(reporter.done(), 2);
        assert_eq!(reporter.panicked(), 1);

        let stream = read_events(&path).unwrap();
        assert!(!stream.torn);
        let summary = validate(&stream.events).unwrap();
        assert!(summary.complete);
        assert_eq!(summary.done, 2);
        assert_eq!(summary.panicked, 1);
        assert_eq!(summary.job, "demo");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn without_an_event_path_the_reporter_still_counts() {
        let mut reporter = ProgressReporter::start("demo", 1, None, false, true).unwrap();
        reporter.scenario_started("a").unwrap();
        reporter.scenario_finished(&rec("a", true, true, false), 0.0).unwrap();
        reporter.finish().unwrap();
        assert_eq!(reporter.done(), 1);
        assert_eq!(reporter.panicked(), 0);
    }

    #[test]
    fn throughput_guards_against_zero_elapsed() {
        // secs == 0.0 must not divide by zero; the event carries 0.
        let dir = std::env::temp_dir().join("gather-progress-test-zero");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.ndjson");
        let mut reporter = ProgressReporter::start("demo", 1, Some(&path), false, true).unwrap();
        reporter.scenario_started("a").unwrap();
        reporter.scenario_finished(&rec("a", true, true, false), 0.0).unwrap();
        reporter.finish().unwrap();
        let stream = read_events(&path).unwrap();
        let tput = stream.events.iter().find_map(|e| match e {
            Event::ScenarioFinished { robot_rounds_per_s, .. } => Some(*robot_rounds_per_s),
            _ => None,
        });
        assert_eq!(tput, Some(0.0));
        std::fs::remove_file(&path).ok();
    }
}
