//! Declarative campaign specification and its expansion into jobs.

use gather_bench::{ControllerKind, SchedulerKind};
use gather_workloads::Family;
use grid_engine::Point;

use crate::record::ScenarioRecord;
use crate::shard::{ShardSpec, ShardStrategy};

/// A declarative scenario matrix. Expansion order is the nested product
/// family → size → seed → controller → scheduler, so the job list (and
/// every job index) is a pure function of the spec.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name, recorded for humans only.
    pub name: String,
    /// Workload families to instantiate (see `gather_workloads::family`).
    pub families: Vec<Family>,
    /// Target swarm sizes, passed to the family generators.
    pub sizes: Vec<usize>,
    /// Orientation seeds; random families also derive their shape from
    /// the seed, and SSYNC activation draws from it too, so one seed
    /// pins the entire scenario.
    pub seeds: Vec<u64>,
    /// Strategies to run on every (family, size, seed) cell.
    pub controllers: Vec<ControllerKind>,
    /// Activation policies to run each cell under. Defaults to FSYNC
    /// only, which keeps legacy specs (and their scenario IDs)
    /// unchanged.
    pub schedulers: Vec<SchedulerKind>,
}

impl CampaignSpec {
    /// An empty spec with the given name; fill the axes before use
    /// (`schedulers` starts at the FSYNC default rather than empty, so
    /// pre-scheduler call sites keep working unchanged).
    pub fn named(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            families: Vec::new(),
            sizes: Vec::new(),
            seeds: Vec::new(),
            controllers: Vec::new(),
            schedulers: vec![SchedulerKind::Fsync],
        }
    }

    /// The standard acceptance sweep: lines, blocks, hollow shapes and
    /// random blobs × four sizes × three seeds × all three controllers,
    /// under FSYNC (144 scenarios).
    pub fn standard() -> Self {
        CampaignSpec {
            name: "standard".into(),
            families: vec![Family::Line, Family::Square, Family::HollowSquare, Family::RandomBlob],
            sizes: vec![16, 32, 64, 128],
            seeds: vec![1, 2, 3],
            controllers: ControllerKind::ALL.to_vec(),
            schedulers: vec![SchedulerKind::Fsync],
        }
    }

    /// Total number of scenarios the spec expands to. The greedy
    /// baseline is its own sequential scheduler, so the schedulers axis
    /// does not multiply it (see [`CampaignSpec::expand`]).
    pub fn len(&self) -> usize {
        let cells = self.families.len() * self.sizes.len() * self.seeds.len();
        let greedy = self.controllers.iter().filter(|&&c| c == ControllerKind::Greedy).count();
        let engine_controllers = self.controllers.len() - greedy;
        cells * (engine_controllers * self.schedulers.len() + greedy)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn validate(&self) -> Result<(), String> {
        fn has_duplicates<T: PartialEq>(items: &[T]) -> bool {
            items.iter().enumerate().any(|(i, item)| items[..i].contains(item))
        }
        for (axis, empty, repeated) in [
            ("families", self.families.is_empty(), has_duplicates(&self.families)),
            ("sizes", self.sizes.is_empty(), has_duplicates(&self.sizes)),
            ("seeds", self.seeds.is_empty(), has_duplicates(&self.seeds)),
            ("controllers", self.controllers.is_empty(), has_duplicates(&self.controllers)),
            ("schedulers", self.schedulers.is_empty(), has_duplicates(&self.schedulers)),
        ] {
            if empty {
                return Err(format!("campaign spec has no {axis}"));
            }
            // A repeated axis value expands to scenarios with identical
            // IDs: resume would treat the twin as already done, and the
            // shard coverage digests (XOR folds over IDs) would cancel
            // the pair — a sharded sweep would burn all its compute and
            // then unavoidably fail the merge. Reject it up front.
            if repeated {
                return Err(format!(
                    "campaign spec repeats a value in {axis}: duplicate scenario IDs would \
                     break resume and shard coverage"
                ));
            }
        }
        if self.sizes.contains(&0) {
            return Err("campaign spec has a zero size".into());
        }
        for &s in &self.schedulers {
            s.validate()?;
        }
        Ok(())
    }

    /// Expand the matrix into the deterministic, seeded job list.
    ///
    /// The greedy baseline runs its own sequential fair scheduler (that
    /// is the point of the strawman), so engine activation policies do
    /// not apply to it: each greedy cell expands exactly once, labeled
    /// `fsync`, instead of once per scheduler — otherwise a sweep would
    /// re-run identical greedy work and emit records claiming a
    /// scheduler that was never applied.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &family in &self.families {
            for &n in &self.sizes {
                for &seed in &self.seeds {
                    for &controller in &self.controllers {
                        if controller == ControllerKind::Greedy {
                            let scheduler = SchedulerKind::Fsync;
                            out.push(Scenario { family, n, seed, controller, scheduler });
                            continue;
                        }
                        for &scheduler in &self.schedulers {
                            out.push(Scenario { family, n, seed, controller, scheduler });
                        }
                    }
                }
            }
        }
        out
    }

    /// Expand only the scenarios `shard` owns under `strategy`, in
    /// expansion order. The `count`-way partition is a disjoint exact
    /// cover of [`CampaignSpec::expand`]: every job lands in exactly one
    /// shard, and the `hash` strategy places it identically on any
    /// machine (the ID hash is machine- and order-independent). This is
    /// the executor's own filter with an empty resume set, so the
    /// partition here cannot drift from the one runs actually execute.
    pub fn expand_shard(&self, shard: ShardSpec, strategy: ShardStrategy) -> Vec<Scenario> {
        crate::executor::select_pending(&self.expand(), shard, strategy, &Default::default())
    }

    /// Order-sensitive digest of the full expanded scenario-ID list:
    /// two specs share a digest iff they expand to the same jobs in the
    /// same order. This is what pins N shard outputs to one spec — a
    /// merge refuses shards whose spec digests differ.
    pub fn spec_digest(&self) -> u64 {
        let mut joined = String::new();
        for sc in self.expand() {
            joined.push_str(&sc.id());
            joined.push('\n');
        }
        gather_trace::digest_bytes(joined.as_bytes())
    }

    /// Order-free coverage digest of the full expansion — the XOR fold
    /// of per-ID digests ([`coverage_xor`]). Because XOR is commutative
    /// and self-inverse, the folds of N *disjoint* shards combine to
    /// exactly this value iff their union is the whole spec, which is
    /// how a merge proves coverage by digest arithmetic alone.
    pub fn coverage_digest(&self) -> u64 {
        let ids: Vec<String> = self.expand().iter().map(Scenario::id).collect();
        coverage_xor(ids.iter().map(String::as_str))
    }
}

/// XOR fold of [`gather_trace::digest_bytes`] over a set of scenario
/// IDs: an order-free set digest (the empty set folds to 0). Callers
/// must deduplicate first — XOR cancels pairs, so a duplicated ID would
/// vanish instead of being detected.
pub fn coverage_xor<'a>(ids: impl Iterator<Item = &'a str>) -> u64 {
    ids.fold(0u64, |acc, id| acc ^ gather_trace::digest_bytes(id.as_bytes()))
}

/// One fully-pinned experiment: everything needed to reproduce the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    pub family: Family,
    /// Requested swarm size (generators hit it approximately).
    pub n: usize,
    pub seed: u64,
    pub controller: ControllerKind,
    pub scheduler: SchedulerKind,
}

impl Scenario {
    /// Stable string ID — the resume key and the JSONL primary key.
    /// FSYNC scenarios keep the legacy 4-part
    /// `family/n<size>/s<seed>/<controller>` shape so result files
    /// written before the scheduler axis existed still resume
    /// correctly; other schedulers append a fifth segment
    /// (`…/ssync-p50`, `…/rr4`).
    pub fn id(&self) -> String {
        let base =
            format!("{}/n{}/s{}/{}", self.family.name(), self.n, self.seed, self.controller.name());
        match self.scheduler {
            SchedulerKind::Fsync => base,
            other => format!("{base}/{}", other.name()),
        }
    }

    /// Parse a scenario back out of its [`Scenario::id`] string — the
    /// inverse the trace subsystem uses to re-execute a recorded run
    /// from its header alone. Rejects anything `id()` cannot produce
    /// (including an explicit fifth `fsync` segment, which `id()` never
    /// emits).
    pub fn parse_id(id: &str) -> Option<Scenario> {
        let mut parts = id.split('/');
        let family = Family::parse(parts.next()?)?;
        let n = parts.next()?.strip_prefix('n')?.parse().ok()?;
        let seed = parts.next()?.strip_prefix('s')?.parse().ok()?;
        let controller = ControllerKind::parse(parts.next()?)?;
        let scheduler = match parts.next() {
            None => SchedulerKind::Fsync,
            Some(s) => match s.parse::<SchedulerKind>().ok()? {
                SchedulerKind::Fsync => return None,
                other => other,
            },
        };
        if parts.next().is_some() {
            return None;
        }
        let sc = Scenario { family, n, seed, controller, scheduler };
        (sc.id() == id).then_some(sc)
    }

    /// Digest of everything that pins this scenario's execution: the ID
    /// (family, size, seed, controller, scheduler), the actual swarm
    /// size the generator produced, and the round budget. Recorded in
    /// every trace header; replay refuses a trace whose digest no
    /// longer matches, which is how generator or budget drift is caught
    /// instead of being misreported as an algorithmic divergence.
    pub fn config_digest(&self) -> u64 {
        self.config_digest_with(self.points().len())
    }

    /// [`Scenario::config_digest`] for callers that already generated
    /// the swarm — the generator is deterministic but not free, and the
    /// record/replay paths always have the points in hand.
    pub fn config_digest_with(&self, n_actual: usize) -> u64 {
        let budget = self.budget(n_actual);
        gather_trace::digest_bytes(
            format!("{}|seed={}|n={}|budget={}", self.id(), self.seed, n_actual, budget).as_bytes(),
        )
    }

    /// The scenario's swarm (deterministic in family, n, seed).
    pub fn points(&self) -> Vec<Point> {
        gather_workloads::family(self.family, self.n, self.seed)
    }

    /// Round budget: the generous multiple of the theoretical O(n)
    /// bound the scaling experiments use, on the *actual* swarm size.
    /// Partial-activation schedulers stretch rounds by the activation
    /// rate, so budgets scale with the expected slowdown.
    pub fn budget(&self, points_len: usize) -> u64 {
        let base = gather_bench::budget_for(points_len);
        match self.scheduler {
            SchedulerKind::Fsync => base,
            // ~100/p rounds per FSYNC round's worth of activations.
            SchedulerKind::Ssync { p } => base.saturating_mul(100 / u64::from(p.clamp(1, 100)) + 1),
            // k-of-n needs ~n/k rounds per full pass.
            SchedulerKind::RoundRobin { k } => {
                base.saturating_mul((points_len as u64 / u64::from(k.max(1))).max(1) + 1)
            }
            // Survivors run at FSYNC rate; crashed robots cost nothing,
            // but a crashed obstacle can make gathering impossible, so
            // the base budget is also the cap on wasted work.
            SchedulerKind::Crash { .. } => base,
            // A look commits after ~s/2 rounds on average; budget for
            // the worst case of every look waiting the full staleness.
            SchedulerKind::Async { s } => base.saturating_mul(u64::from(s) + 1),
        }
    }

    /// Execute the scenario on one engine thread (campaigns parallelise
    /// across scenarios, not within them) and record the outcome.
    pub fn run(&self) -> ScenarioRecord {
        let points = self.points();
        let budget = self.budget(points.len());
        let m = gather_bench::RunSpec::new(self.controller, &points)
            .scheduler(self.scheduler)
            .seed(self.seed)
            .budget(budget)
            .run();
        ScenarioRecord::from_measurement(self, &m)
    }

    /// [`Scenario::run`] with the engine's phase profiler attached: the
    /// record carries its wall time and a [`crate::PerfSummary`]. The
    /// profiler only reads clocks, so the measured result fields are
    /// bit-identical with [`Scenario::run`]'s. The greedy baseline has
    /// no engine rounds — its record gets `secs` but no perf block.
    pub fn run_profiled(&self) -> ScenarioRecord {
        use std::cell::RefCell;
        use std::rc::Rc;
        use std::time::Instant;

        let points = self.points();
        let budget = self.budget(points.len());
        let totals: Rc<RefCell<grid_engine::ProfileTotals>> = Rc::default();
        let sink = totals.clone();
        // audit: allow(wall-clock) scenario wall-time fills the opt-in
        // perf fields of the profiled report; gathered results and
        // digests never depend on it
        let start = Instant::now();
        let m = gather_bench::RunSpec::new(self.controller, &points)
            .scheduler(self.scheduler)
            .seed(self.seed)
            .budget(budget)
            .profiler(Box::new(move |profile| sink.borrow_mut().add(profile)))
            .run();
        let secs = start.elapsed().as_secs_f64();
        let mut rec = ScenarioRecord::from_measurement(self, &m);
        rec.secs = secs;
        let totals = totals.borrow();
        if totals.rounds > 0 {
            rec.perf = Some(crate::record::PerfSummary::from_totals(&totals));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_ids_unique() {
        let spec = CampaignSpec::standard();
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.len());
        assert!(a.len() >= 100, "standard sweep must cover >= 100 scenarios");
        let ids: std::collections::HashSet<String> = a.iter().map(Scenario::id).collect();
        assert_eq!(ids.len(), a.len(), "duplicate scenario IDs");
    }

    #[test]
    fn scheduler_axis_multiplies_the_matrix_except_greedy() {
        let mut spec = CampaignSpec::standard();
        spec.schedulers = vec![
            SchedulerKind::Fsync,
            SchedulerKind::Ssync { p: 50 },
            SchedulerKind::RoundRobin { k: 4 },
        ];
        // 48 cells × (2 engine controllers × 3 schedulers + greedy × 1):
        // greedy is its own sequential scheduler, so the axis must not
        // multiply it into identical re-runs under fabricated labels.
        let cells = 4 * 4 * 3;
        assert_eq!(spec.len(), cells * (2 * 3 + 1));
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.len());
        let ids: std::collections::HashSet<String> = jobs.iter().map(Scenario::id).collect();
        assert_eq!(ids.len(), jobs.len(), "scheduler axis produced duplicate IDs");
        // Scheduler is the innermost axis: consecutive jobs share the
        // rest of the cell.
        assert_eq!(jobs[0].scheduler, SchedulerKind::Fsync);
        assert_eq!(jobs[1].scheduler, SchedulerKind::Ssync { p: 50 });
        assert_eq!(jobs[0].family, jobs[2].family);
        assert_eq!(jobs[0].controller, jobs[2].controller);
        // Every greedy job is pinned to the fsync label.
        for job in jobs.iter().filter(|j| j.controller == ControllerKind::Greedy) {
            assert_eq!(job.scheduler, SchedulerKind::Fsync, "{}", job.id());
        }
        assert_eq!(jobs.iter().filter(|j| j.controller == ControllerKind::Greedy).count(), cells);
    }

    #[test]
    fn shard_expansion_is_a_disjoint_exact_cover() {
        let spec = CampaignSpec::standard();
        let all = spec.expand();
        for strategy in [ShardStrategy::Hash, ShardStrategy::Stride] {
            for count in [1u32, 2, 3, 4, 7] {
                let mut seen = std::collections::HashSet::new();
                let mut union = 0usize;
                for index in 0..count {
                    let shard = spec.expand_shard(ShardSpec { index, count }, strategy);
                    union += shard.len();
                    for sc in &shard {
                        assert!(seen.insert(sc.id()), "{strategy:?} {count}: {} twice", sc.id());
                    }
                }
                assert_eq!(union, all.len(), "{strategy:?} {count}-way cover lost jobs");
            }
        }
        // Stride round-robins the expansion order exactly.
        let s0 = spec.expand_shard(ShardSpec { index: 0, count: 3 }, ShardStrategy::Stride);
        assert_eq!(s0[0], all[0]);
        assert_eq!(s0[1], all[3]);
    }

    #[test]
    fn spec_digest_pins_jobs_and_their_order() {
        let spec = CampaignSpec::standard();
        assert_eq!(spec.spec_digest(), CampaignSpec::standard().spec_digest());
        let mut resized = CampaignSpec::standard();
        resized.sizes.push(256);
        assert_ne!(spec.spec_digest(), resized.spec_digest());
        // The name is not part of the expansion, so it does not shift
        // the digest — renaming a spec file keeps its shards mergeable.
        let mut renamed = CampaignSpec::standard();
        renamed.name = "other".into();
        assert_eq!(spec.spec_digest(), renamed.spec_digest());
        // Reordering an axis reorders the expansion: order-sensitive.
        let mut reordered = CampaignSpec::standard();
        reordered.sizes.reverse();
        assert_ne!(spec.spec_digest(), reordered.spec_digest());
        // ...but the order-free coverage digest is reorder-invariant.
        assert_eq!(spec.coverage_digest(), reordered.coverage_digest());
    }

    #[test]
    fn shard_coverage_digests_fold_to_the_spec_coverage() {
        let spec = CampaignSpec::standard();
        for strategy in [ShardStrategy::Hash, ShardStrategy::Stride] {
            let mut folded = 0u64;
            let mut total = 0usize;
            for index in 0..4u32 {
                let ids: Vec<String> = spec
                    .expand_shard(ShardSpec { index, count: 4 }, strategy)
                    .iter()
                    .map(Scenario::id)
                    .collect();
                total += ids.len();
                folded ^= coverage_xor(ids.iter().map(String::as_str));
            }
            assert_eq!(folded, spec.coverage_digest(), "{strategy:?}");
            assert_eq!(total, spec.len());
        }
        assert_eq!(coverage_xor(std::iter::empty()), 0, "empty shard folds to zero");
    }

    #[test]
    fn validate_rejects_empty_axes() {
        assert!(CampaignSpec::standard().validate().is_ok());
        let mut spec = CampaignSpec::standard();
        spec.seeds.clear();
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::standard();
        spec.sizes = vec![16, 0];
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::standard();
        spec.schedulers.clear();
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::standard();
        spec.schedulers = vec![SchedulerKind::Ssync { p: 0 }];
        assert!(spec.validate().is_err(), "out-of-range ssync probability must be rejected");
    }

    #[test]
    fn validate_rejects_repeated_axis_values() {
        // A repeated value expands to duplicate scenario IDs, which
        // cancel in the XOR coverage digests: a sharded sweep would run
        // to completion and then always fail its merge. Loud and early.
        let mut spec = CampaignSpec::standard();
        spec.seeds = vec![1, 2, 1];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("seeds"), "{err}");
        let mut spec = CampaignSpec::standard();
        spec.sizes = vec![16, 16];
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::standard();
        spec.families.push(spec.families[0]);
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::standard();
        spec.schedulers = vec![SchedulerKind::Fsync, SchedulerKind::Fsync];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn id_shape() {
        let sc = Scenario {
            family: Family::Line,
            n: 64,
            seed: 3,
            controller: ControllerKind::Paper,
            scheduler: SchedulerKind::Fsync,
        };
        // FSYNC keeps the legacy 4-part ID: pre-scheduler JSONL files
        // must resume without re-running anything.
        assert_eq!(sc.id(), "line/n64/s3/paper");
        let ssync = Scenario { scheduler: SchedulerKind::Ssync { p: 50 }, ..sc };
        assert_eq!(ssync.id(), "line/n64/s3/paper/ssync-p50");
        let rr = Scenario { scheduler: SchedulerKind::RoundRobin { k: 4 }, ..sc };
        assert_eq!(rr.id(), "line/n64/s3/paper/rr4");
    }

    #[test]
    fn ids_parse_back_to_their_scenarios() {
        let mut spec = CampaignSpec::standard();
        spec.schedulers = vec![
            SchedulerKind::Fsync,
            SchedulerKind::Ssync { p: 50 },
            SchedulerKind::RoundRobin { k: 4 },
            SchedulerKind::Crash { f: 2 },
            SchedulerKind::Async { s: 4 },
        ];
        for sc in spec.expand() {
            assert_eq!(Scenario::parse_id(&sc.id()), Some(sc), "{}", sc.id());
        }
        for bad in [
            "",
            "line",
            "line/n64",
            "line/n64/s3",
            "line/n64/s3/nope",
            "line/nx/s3/paper",
            "line/n64/sx/paper",
            "mystery/n64/s3/paper",
            "line/n64/s3/paper/fsync", // id() never emits a 5th fsync segment
            "line/n64/s3/paper/ssync-p0",
            "line/n64/s3/paper/rr4/extra",
            "line/n64/s3/paper/async-s0", // zero staleness is spelled fsync
        ] {
            assert_eq!(Scenario::parse_id(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn async_budget_scales_with_staleness() {
        let sc = Scenario {
            family: Family::Line,
            n: 64,
            seed: 3,
            controller: ControllerKind::Paper,
            scheduler: SchedulerKind::Fsync,
        };
        let base = sc.budget(64);
        // Worst case: every look waits the full staleness before its
        // move commits, so the budget stretches by (s + 1).
        let async4 = Scenario { scheduler: SchedulerKind::Async { s: 4 }, ..sc };
        assert_eq!(async4.budget(64), base * 5);
        assert_eq!(async4.id(), "line/n64/s3/paper/async-s4");
    }

    #[test]
    fn config_digest_pins_the_scenario() {
        let sc = Scenario {
            family: Family::Line,
            n: 24,
            seed: 1,
            controller: ControllerKind::Paper,
            scheduler: SchedulerKind::Fsync,
        };
        assert_eq!(sc.config_digest(), sc.config_digest());
        let other = Scenario { seed: 2, ..sc };
        assert_ne!(sc.config_digest(), other.config_digest());
        let other = Scenario { scheduler: SchedulerKind::Ssync { p: 50 }, ..sc };
        assert_ne!(sc.config_digest(), other.config_digest());
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let sc = Scenario {
            family: Family::Line,
            n: 24,
            seed: 1,
            controller: ControllerKind::Paper,
            scheduler: SchedulerKind::Fsync,
        };
        let rec = sc.run();
        assert!(rec.gathered && !rec.panicked);
        assert_eq!(rec.n, 24);
        assert!(rec.rounds <= 24);
        assert_eq!(rec.scheduler, "fsync");
    }

    #[test]
    fn ssync_scenario_runs_end_to_end() {
        let sc = Scenario {
            family: Family::Line,
            n: 16,
            seed: 1,
            controller: ControllerKind::Paper,
            scheduler: SchedulerKind::Ssync { p: 50 },
        };
        let rec = sc.run();
        assert!(!rec.panicked);
        assert_eq!(rec.scheduler, "ssync-p50");
        assert!(rec.activations > 0);
    }
}
