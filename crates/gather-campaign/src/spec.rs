//! Declarative campaign specification and its expansion into jobs.

use gather_bench::ControllerKind;
use gather_workloads::Family;
use grid_engine::Point;

use crate::record::ScenarioRecord;

/// A declarative scenario matrix. Expansion order is the nested product
/// family → size → seed → controller, so the job list (and every job
/// index) is a pure function of the spec.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name, recorded for humans only.
    pub name: String,
    /// Workload families to instantiate (see `gather_workloads::family`).
    pub families: Vec<Family>,
    /// Target swarm sizes, passed to the family generators.
    pub sizes: Vec<usize>,
    /// Orientation seeds; random families also derive their shape from
    /// the seed, so one seed pins the entire scenario.
    pub seeds: Vec<u64>,
    /// Strategies to run on every (family, size, seed) cell.
    pub controllers: Vec<ControllerKind>,
}

impl CampaignSpec {
    /// An empty spec with the given name; fill the axes before use.
    pub fn named(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            families: Vec::new(),
            sizes: Vec::new(),
            seeds: Vec::new(),
            controllers: Vec::new(),
        }
    }

    /// The standard acceptance sweep: lines, blocks, hollow shapes and
    /// random blobs × four sizes × three seeds × all three controllers
    /// (144 scenarios).
    pub fn standard() -> Self {
        CampaignSpec {
            name: "standard".into(),
            families: vec![Family::Line, Family::Square, Family::HollowSquare, Family::RandomBlob],
            sizes: vec![16, 32, 64, 128],
            seeds: vec![1, 2, 3],
            controllers: ControllerKind::ALL.to_vec(),
        }
    }

    /// Total number of scenarios the spec expands to.
    pub fn len(&self) -> usize {
        self.families.len() * self.sizes.len() * self.seeds.len() * self.controllers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn validate(&self) -> Result<(), String> {
        for (axis, empty) in [
            ("families", self.families.is_empty()),
            ("sizes", self.sizes.is_empty()),
            ("seeds", self.seeds.is_empty()),
            ("controllers", self.controllers.is_empty()),
        ] {
            if empty {
                return Err(format!("campaign spec has no {axis}"));
            }
        }
        if self.sizes.contains(&0) {
            return Err("campaign spec has a zero size".into());
        }
        Ok(())
    }

    /// Expand the matrix into the deterministic, seeded job list.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &family in &self.families {
            for &n in &self.sizes {
                for &seed in &self.seeds {
                    for &controller in &self.controllers {
                        out.push(Scenario { family, n, seed, controller });
                    }
                }
            }
        }
        out
    }
}

/// One fully-pinned experiment: everything needed to reproduce the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    pub family: Family,
    /// Requested swarm size (generators hit it approximately).
    pub n: usize,
    pub seed: u64,
    pub controller: ControllerKind,
}

impl Scenario {
    /// Stable string ID — the resume key and the JSONL primary key.
    pub fn id(&self) -> String {
        format!("{}/n{}/s{}/{}", self.family.name(), self.n, self.seed, self.controller.name())
    }

    /// The scenario's swarm (deterministic in family, n, seed).
    pub fn points(&self) -> Vec<Point> {
        gather_workloads::family(self.family, self.n, self.seed)
    }

    /// Round budget: the generous multiple of the theoretical O(n)
    /// bound the scaling experiments use, on the *actual* swarm size.
    pub fn budget(points_len: usize) -> u64 {
        gather_bench::budget_for(points_len)
    }

    /// Execute the scenario on one engine thread (campaigns parallelise
    /// across scenarios, not within them) and record the outcome.
    pub fn run(&self) -> ScenarioRecord {
        let points = self.points();
        let budget = Self::budget(points.len());
        let m = gather_bench::run_measured(self.controller, &points, self.seed, budget, 1);
        ScenarioRecord::from_measurement(self, &m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_ids_unique() {
        let spec = CampaignSpec::standard();
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.len());
        assert!(a.len() >= 100, "standard sweep must cover >= 100 scenarios");
        let ids: std::collections::HashSet<String> = a.iter().map(Scenario::id).collect();
        assert_eq!(ids.len(), a.len(), "duplicate scenario IDs");
    }

    #[test]
    fn validate_rejects_empty_axes() {
        assert!(CampaignSpec::standard().validate().is_ok());
        let mut spec = CampaignSpec::standard();
        spec.seeds.clear();
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::standard();
        spec.sizes = vec![16, 0];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn id_shape() {
        let sc =
            Scenario { family: Family::Line, n: 64, seed: 3, controller: ControllerKind::Paper };
        assert_eq!(sc.id(), "line/n64/s3/paper");
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let sc =
            Scenario { family: Family::Line, n: 24, seed: 1, controller: ControllerKind::Paper };
        let rec = sc.run();
        assert!(rec.gathered && !rec.panicked);
        assert_eq!(rec.n, 24);
        assert!(rec.rounds <= 24);
    }
}
