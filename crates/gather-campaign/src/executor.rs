//! Work-stealing parallel job execution with per-job panic isolation.
//!
//! The scheduling idiom mirrors `grid_engine::parallel`: scoped threads
//! over an immutable job slice. Campaign jobs have wildly uneven costs
//! (a stalled GoToCenter run burns its whole budget while a paper run
//! finishes in O(n) rounds), so instead of pre-chunking, workers pull
//! the next job index from a shared atomic cursor — the classic
//! work-stealing counter — and runtimes balance automatically.
//!
//! Results stream back to the caller's callback on the submitting
//! thread, in completion order, while workers keep running.

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use grid_engine::parallel::resolve_threads;

use crate::record::ScenarioRecord;
use crate::shard::{ShardSpec, ShardStrategy};
use crate::spec::Scenario;

/// One lifecycle notification from the executor, delivered to the
/// caller's callback on the submitting thread. The progress/event layer
/// maps these 1:1 onto `scenario_started`/`scenario_finished` stream
/// events, which is why the executor — the only place that knows when a
/// worker actually picks a job up — emits them itself.
pub enum JobEvent<R> {
    /// A worker picked up job `i`.
    Started(usize),
    /// Job `i` completed (panics included, converted via `on_panic`);
    /// the `f64` is the job's measured wall time in seconds. Failure
    /// paths carry their real elapsed time, not zero.
    Finished(usize, R, f64),
}

/// Run every job and hand lifecycle events to `consume` on the calling
/// thread as they happen. `run` executes on worker threads; a panic
/// inside it is caught and converted via `on_panic(job, elapsed_secs)`
/// instead of tearing the campaign down. Returns the number of panicked
/// jobs.
///
/// `consume` returning [`ControlFlow::Break`] aborts the campaign:
/// workers stop pulling new jobs and in-flight results are discarded
/// (a sink failure must not burn cores computing results nobody can
/// persist).
///
/// `threads == 0` means available parallelism; `threads == 1` runs
/// inline, in job order, with the same panic isolation.
pub fn execute_jobs_observed<J, R, F, P, C>(
    jobs: &[J],
    threads: usize,
    run: F,
    on_panic: P,
    mut consume: C,
) -> usize
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
    P: Fn(&J, f64) -> R + Sync,
    C: FnMut(JobEvent<R>) -> ControlFlow<()>,
{
    let threads = resolve_threads(threads).min(jobs.len().max(1));
    let panics = AtomicUsize::new(0);
    let guarded = |job: &J| -> (R, f64) {
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| run(job))) {
            Ok(result) => (result, start.elapsed().as_secs_f64()),
            Err(_) => {
                panics.fetch_add(1, Ordering::Relaxed);
                let secs = start.elapsed().as_secs_f64();
                (on_panic(job, secs), secs)
            }
        }
    };

    if threads <= 1 {
        for (i, job) in jobs.iter().enumerate() {
            if consume(JobEvent::Started(i)).is_break() {
                break;
            }
            let (result, secs) = guarded(job);
            if consume(JobEvent::Finished(i, result, secs)).is_break() {
                break;
            }
        }
        return panics.into_inner();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<JobEvent<R>>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let guarded = &guarded;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                if tx.send(JobEvent::Started(i)).is_err() {
                    break;
                }
                let (result, secs) = guarded(job);
                if tx.send(JobEvent::Finished(i, result, secs)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for event in rx {
            if consume(event).is_break() {
                // Dropping the receiver makes every worker's next
                // send fail, so they stop pulling jobs.
                break;
            }
        }
    });
    panics.into_inner()
}

/// [`execute_jobs_observed`] for callers that only want completed
/// results: start notifications and timings are dropped, `on_panic`
/// sees just the job. The historical executor entry point.
pub fn execute_jobs<J, R, F, P, C>(
    jobs: &[J],
    threads: usize,
    run: F,
    on_panic: P,
    mut consume: C,
) -> usize
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
    P: Fn(&J) -> R + Sync,
    C: FnMut(usize, R) -> ControlFlow<()>,
{
    execute_jobs_observed(
        jobs,
        threads,
        run,
        |job: &J, _secs| on_panic(job),
        |event| match event {
            JobEvent::Started(_) => ControlFlow::Continue(()),
            JobEvent::Finished(i, result, _secs) => consume(i, result),
        },
    )
}

/// The jobs a worker should actually execute: those its shard owns
/// under `strategy` (job index taken in expansion order, as the
/// partitioner requires) minus the `completed` resume set. This is the
/// single filtering step shared by `run`, `resume` and `record`, so a
/// sharded resume cannot accidentally pick up another shard's work.
pub fn select_pending(
    jobs: &[Scenario],
    shard: ShardSpec,
    strategy: ShardStrategy,
    completed: &HashSet<String>,
) -> Vec<Scenario> {
    jobs.iter()
        .enumerate()
        .filter(|(i, sc)| {
            let id = sc.id();
            shard.owns(strategy, *i, &id) && !completed.contains(&id)
        })
        .map(|(_, &sc)| sc)
        .collect()
}

/// Execute scenarios; `progress(done, total, record)` fires on the
/// calling thread after each completion.
pub fn execute_scenarios(
    jobs: &[Scenario],
    threads: usize,
    mut progress: impl FnMut(usize, usize, &ScenarioRecord),
) -> Vec<ScenarioRecord> {
    let mut records = Vec::with_capacity(jobs.len());
    let mut done = 0usize;
    execute_jobs(jobs, threads, Scenario::run, ScenarioRecord::for_panic, |_i, rec| {
        done += 1;
        progress(done, jobs.len(), &rec);
        records.push(rec);
        ControlFlow::Continue(())
    });
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_run_exactly_once() {
        let jobs: Vec<usize> = (0..200).collect();
        for threads in [1usize, 2, 8] {
            let mut seen = vec![0u32; jobs.len()];
            let panics = execute_jobs(
                &jobs,
                threads,
                |&j| j * 3,
                |_| usize::MAX,
                |i, r| {
                    assert_eq!(r, jobs[i] * 3);
                    seen[i] += 1;
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(panics, 0);
            assert!(seen.iter().all(|&c| c == 1), "threads={threads}");
        }
    }

    #[test]
    fn break_from_consume_aborts_the_campaign() {
        let jobs: Vec<usize> = (0..10_000).collect();
        for threads in [1usize, 4] {
            let mut consumed = 0usize;
            execute_jobs(
                &jobs,
                threads,
                |&j| j,
                |_| 0,
                |_i, _r| {
                    consumed += 1;
                    if consumed == 5 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            assert_eq!(consumed, 5, "threads={threads}: consume ran after Break");
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let jobs: Vec<usize> = (0..50).collect();
        for threads in [1usize, 4] {
            let mut ok = 0usize;
            let mut poisoned = 0usize;
            let panics = execute_jobs(
                &jobs,
                threads,
                |&j| {
                    if j % 10 == 3 {
                        panic!("job {j} exploded");
                    }
                    j
                },
                |_| usize::MAX,
                |_i, r| {
                    if r == usize::MAX {
                        poisoned += 1;
                    } else {
                        ok += 1;
                    }
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(panics, 5, "threads={threads}");
            assert_eq!(poisoned, 5);
            assert_eq!(ok, 45);
        }
    }

    #[test]
    fn select_pending_filters_by_shard_and_resume_set() {
        use crate::spec::CampaignSpec;

        let jobs = CampaignSpec::standard().expand();
        let none = HashSet::new();
        // The union over a 4-way split, with nothing completed, is the
        // whole job list.
        let mut union = 0usize;
        for index in 0..4u32 {
            let shard = ShardSpec { index, count: 4 };
            union += select_pending(&jobs, shard, ShardStrategy::Hash, &none).len();
        }
        assert_eq!(union, jobs.len());
        // Completed IDs drop out of exactly their own shard.
        let shard = ShardSpec { index: 0, count: 4 };
        let owned = select_pending(&jobs, shard, ShardStrategy::Hash, &none);
        let completed: HashSet<String> = owned.iter().take(3).map(Scenario::id).collect();
        let pending = select_pending(&jobs, shard, ShardStrategy::Hash, &completed);
        assert_eq!(pending.len(), owned.len() - 3);
        assert!(pending.iter().all(|sc| !completed.contains(&sc.id())));
        // A completed ID from another shard changes nothing here.
        let foreign =
            select_pending(&jobs, ShardSpec { index: 1, count: 4 }, ShardStrategy::Hash, &none);
        let foreign_done: HashSet<String> = foreign.iter().take(1).map(Scenario::id).collect();
        assert_eq!(
            select_pending(&jobs, shard, ShardStrategy::Hash, &foreign_done).len(),
            owned.len(),
        );
    }

    #[test]
    fn observed_execution_pairs_started_and_finished_with_real_timings() {
        let jobs: Vec<u64> = (0..40).collect();
        for threads in [1usize, 4] {
            let mut started = vec![0u32; jobs.len()];
            let mut finished = vec![0u32; jobs.len()];
            let panics = execute_jobs_observed(
                &jobs,
                threads,
                |&j| {
                    if j == 7 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    if j % 13 == 3 {
                        panic!("job {j} exploded");
                    }
                    j
                },
                |&j, secs| {
                    assert!(secs >= 0.0);
                    j + 1000
                },
                |event| {
                    match event {
                        JobEvent::Started(i) => started[i] += 1,
                        JobEvent::Finished(i, r, secs) => {
                            assert_eq!(
                                started[i], 1,
                                "finished before started (threads={threads})"
                            );
                            assert!(secs >= 0.0);
                            if jobs[i] == 7 {
                                assert!(secs >= 0.004, "slow job must report real elapsed time");
                            }
                            let expected = if jobs[i] % 13 == 3 { jobs[i] + 1000 } else { jobs[i] };
                            assert_eq!(r, expected);
                            finished[i] += 1;
                        }
                    }
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(panics, 3, "threads={threads}");
            assert!(started.iter().all(|&c| c == 1), "threads={threads}");
            assert!(finished.iter().all(|&c| c == 1), "threads={threads}");
        }
    }

    #[test]
    fn panicked_jobs_report_their_real_elapsed_time() {
        // The failure-path timing contract: a panicking job's elapsed
        // time flows both to `on_panic` and to the Finished event.
        let jobs = [0u64];
        let mut event_secs = -1.0f64;
        execute_jobs_observed(
            &jobs,
            1,
            |_: &u64| -> f64 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                panic!("boom");
            },
            |_, secs| secs,
            |event| {
                if let JobEvent::Finished(_, panic_secs, secs) = event {
                    assert!(panic_secs >= 0.004, "on_panic saw {panic_secs}");
                    event_secs = secs;
                }
                ControlFlow::Continue(())
            },
        );
        assert!(event_secs >= 0.004, "event carried {event_secs}");
    }

    #[test]
    fn empty_job_list_is_fine() {
        let jobs: Vec<usize> = Vec::new();
        let panics = execute_jobs(&jobs, 8, |&j| j, |_| 0, |_, _| unreachable!());
        assert_eq!(panics, 0);
    }

    #[test]
    fn uneven_workloads_still_complete_with_many_threads() {
        // More threads than jobs, and costs spanning three orders of
        // magnitude — the cursor must not lose or duplicate work.
        let jobs: Vec<u64> = vec![1, 1000, 1, 500, 1, 1, 2000];
        let mut total = 0u64;
        execute_jobs(
            &jobs,
            16,
            |&j| (0..j).sum::<u64>(),
            |_| 0,
            |_i, r| {
                total += r;
                ControlFlow::Continue(())
            },
        );
        let expected: u64 = jobs.iter().map(|&j| (0..j).sum::<u64>()).sum();
        assert_eq!(total, expected);
    }
}
