//! Work-stealing parallel job execution with per-job panic isolation.
//!
//! The scheduling idiom mirrors `grid_engine::parallel`: scoped threads
//! over an immutable job slice. Campaign jobs have wildly uneven costs
//! (a stalled GoToCenter run burns its whole budget while a paper run
//! finishes in O(n) rounds), so instead of pre-chunking, workers pull
//! the next job index from a shared atomic cursor — the classic
//! work-stealing counter — and runtimes balance automatically.
//!
//! Results stream back to the caller's callback on the submitting
//! thread, in completion order, while workers keep running.

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use grid_engine::parallel::resolve_threads;

use crate::record::ScenarioRecord;
use crate::shard::{ShardSpec, ShardStrategy};
use crate::spec::Scenario;

/// Run every job and hand each result to `consume` on the calling
/// thread as it completes. `run` executes on worker threads; a panic
/// inside it is caught and converted via `on_panic` instead of tearing
/// the campaign down. Returns the number of panicked jobs.
///
/// `consume` returning [`ControlFlow::Break`] aborts the campaign:
/// workers stop pulling new jobs and in-flight results are discarded
/// (a sink failure must not burn cores computing results nobody can
/// persist).
///
/// `threads == 0` means available parallelism; `threads == 1` runs
/// inline, in job order, with the same panic isolation.
pub fn execute_jobs<J, R, F, P, C>(
    jobs: &[J],
    threads: usize,
    run: F,
    on_panic: P,
    mut consume: C,
) -> usize
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
    P: Fn(&J) -> R + Sync,
    C: FnMut(usize, R) -> ControlFlow<()>,
{
    let threads = resolve_threads(threads).min(jobs.len().max(1));
    let panics = AtomicUsize::new(0);
    let guarded = |job: &J| -> R {
        catch_unwind(AssertUnwindSafe(|| run(job))).unwrap_or_else(|_| {
            panics.fetch_add(1, Ordering::Relaxed);
            on_panic(job)
        })
    };

    if threads <= 1 {
        for (i, job) in jobs.iter().enumerate() {
            let result = guarded(job);
            if consume(i, result).is_break() {
                break;
            }
        }
        return panics.into_inner();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let guarded = &guarded;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                if tx.send((i, guarded(job))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            if consume(i, result).is_break() {
                // Dropping the receiver makes every worker's next
                // send fail, so they stop pulling jobs.
                break;
            }
        }
    });
    panics.into_inner()
}

/// The jobs a worker should actually execute: those its shard owns
/// under `strategy` (job index taken in expansion order, as the
/// partitioner requires) minus the `completed` resume set. This is the
/// single filtering step shared by `run`, `resume` and `record`, so a
/// sharded resume cannot accidentally pick up another shard's work.
pub fn select_pending(
    jobs: &[Scenario],
    shard: ShardSpec,
    strategy: ShardStrategy,
    completed: &HashSet<String>,
) -> Vec<Scenario> {
    jobs.iter()
        .enumerate()
        .filter(|(i, sc)| {
            let id = sc.id();
            shard.owns(strategy, *i, &id) && !completed.contains(&id)
        })
        .map(|(_, &sc)| sc)
        .collect()
}

/// Execute scenarios; `progress(done, total, record)` fires on the
/// calling thread after each completion.
pub fn execute_scenarios(
    jobs: &[Scenario],
    threads: usize,
    mut progress: impl FnMut(usize, usize, &ScenarioRecord),
) -> Vec<ScenarioRecord> {
    let mut records = Vec::with_capacity(jobs.len());
    let mut done = 0usize;
    execute_jobs(jobs, threads, Scenario::run, ScenarioRecord::for_panic, |_i, rec| {
        done += 1;
        progress(done, jobs.len(), &rec);
        records.push(rec);
        ControlFlow::Continue(())
    });
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_run_exactly_once() {
        let jobs: Vec<usize> = (0..200).collect();
        for threads in [1usize, 2, 8] {
            let mut seen = vec![0u32; jobs.len()];
            let panics = execute_jobs(
                &jobs,
                threads,
                |&j| j * 3,
                |_| usize::MAX,
                |i, r| {
                    assert_eq!(r, jobs[i] * 3);
                    seen[i] += 1;
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(panics, 0);
            assert!(seen.iter().all(|&c| c == 1), "threads={threads}");
        }
    }

    #[test]
    fn break_from_consume_aborts_the_campaign() {
        let jobs: Vec<usize> = (0..10_000).collect();
        for threads in [1usize, 4] {
            let mut consumed = 0usize;
            execute_jobs(
                &jobs,
                threads,
                |&j| j,
                |_| 0,
                |_i, _r| {
                    consumed += 1;
                    if consumed == 5 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            assert_eq!(consumed, 5, "threads={threads}: consume ran after Break");
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let jobs: Vec<usize> = (0..50).collect();
        for threads in [1usize, 4] {
            let mut ok = 0usize;
            let mut poisoned = 0usize;
            let panics = execute_jobs(
                &jobs,
                threads,
                |&j| {
                    if j % 10 == 3 {
                        panic!("job {j} exploded");
                    }
                    j
                },
                |_| usize::MAX,
                |_i, r| {
                    if r == usize::MAX {
                        poisoned += 1;
                    } else {
                        ok += 1;
                    }
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(panics, 5, "threads={threads}");
            assert_eq!(poisoned, 5);
            assert_eq!(ok, 45);
        }
    }

    #[test]
    fn select_pending_filters_by_shard_and_resume_set() {
        use crate::spec::CampaignSpec;

        let jobs = CampaignSpec::standard().expand();
        let none = HashSet::new();
        // The union over a 4-way split, with nothing completed, is the
        // whole job list.
        let mut union = 0usize;
        for index in 0..4u32 {
            let shard = ShardSpec { index, count: 4 };
            union += select_pending(&jobs, shard, ShardStrategy::Hash, &none).len();
        }
        assert_eq!(union, jobs.len());
        // Completed IDs drop out of exactly their own shard.
        let shard = ShardSpec { index: 0, count: 4 };
        let owned = select_pending(&jobs, shard, ShardStrategy::Hash, &none);
        let completed: HashSet<String> = owned.iter().take(3).map(Scenario::id).collect();
        let pending = select_pending(&jobs, shard, ShardStrategy::Hash, &completed);
        assert_eq!(pending.len(), owned.len() - 3);
        assert!(pending.iter().all(|sc| !completed.contains(&sc.id())));
        // A completed ID from another shard changes nothing here.
        let foreign =
            select_pending(&jobs, ShardSpec { index: 1, count: 4 }, ShardStrategy::Hash, &none);
        let foreign_done: HashSet<String> = foreign.iter().take(1).map(Scenario::id).collect();
        assert_eq!(
            select_pending(&jobs, shard, ShardStrategy::Hash, &foreign_done).len(),
            owned.len(),
        );
    }

    #[test]
    fn empty_job_list_is_fine() {
        let jobs: Vec<usize> = Vec::new();
        let panics = execute_jobs(&jobs, 8, |&j| j, |_| 0, |_, _| unreachable!());
        assert_eq!(panics, 0);
    }

    #[test]
    fn uneven_workloads_still_complete_with_many_threads() {
        // More threads than jobs, and costs spanning three orders of
        // magnitude — the cursor must not lose or duplicate work.
        let jobs: Vec<u64> = vec![1, 1000, 1, 500, 1, 1, 2000];
        let mut total = 0u64;
        execute_jobs(
            &jobs,
            16,
            |&j| (0..j).sum::<u64>(),
            |_| 0,
            |_i, r| {
                total += r;
                ControlFlow::Continue(())
            },
        );
        let expected: u64 = jobs.iter().map(|&j| (0..j).sum::<u64>()).sum();
        assert_eq!(total, expected);
    }
}
