//! # gather-campaign
//!
//! A parallel scenario-campaign engine for stress-testing the paper's
//! O(n) gathering claim at scale: declare a sweep once, fan it out over
//! every core, stream results to disk as they land, resume interrupted
//! runs, and fold the result set into the scaling tables the analysis
//! crate renders.
//!
//! The subsystem replaces the hand-written experiment loops that used to
//! live in `gather-bench` callers:
//!
//! * [`CampaignSpec`] — a declarative scenario matrix (workload families
//!   × swarm sizes × orientation seeds × controllers × activation
//!   schedulers) that expands to a deterministic list of [`Scenario`]
//!   jobs with stable string IDs.
//! * [`executor`] — a work-stealing multi-threaded executor (shared
//!   atomic job cursor + scoped threads, the same idiom as
//!   `grid_engine::parallel`) with per-job panic isolation and a
//!   streaming progress callback.
//! * [`JsonlSink`] — one JSON object per scenario, flushed per line, so
//!   a killed run loses at most the line being written; re-running the
//!   campaign skips every scenario already on disk ([`load_completed`]).
//! * [`aggregate`] — folds a result file into per-family rounds/n
//!   scaling tables via `gather-analysis`.
//! * [`shard`] / [`merge`] — distributed campaigns: `--shard I/M`
//!   splits any spec into M disjoint slices by a stable FNV-1a hash of
//!   the scenario ID (identical on every machine; `stride` spreads the
//!   size gradient instead), each shard run writes a digest-bearing
//!   manifest next to its JSONL, and `campaign merge` proves a set of
//!   shard outputs covers the spec exactly once — rejecting missing,
//!   overlapping, mixed-spec, torn, or incomplete shards — before
//!   emitting one merged result file. `campaign plan --shards M` prints
//!   the per-shard command lines.
//! * [`trace_ops`] — per-round trace recording, bit-exact replay, and
//!   trace-set diffing over the `gather-trace` binary format: `record`
//!   streams one compact `.gtrc` file per engine scenario, `replay`
//!   re-executes a trace's scenario and verifies every round is
//!   bit-identical (reporting the first divergent round and robot), and
//!   `diff` compares two trace sets scenario by scenario.
//! * [`smoke`] — the large-n determinism smoke: record a bounded-round
//!   trace at two engine thread counts, replay it through
//!   digest-verified playback, and require byte-identical files — CI's
//!   guard on the sharded parallel round-apply.
//! * The `campaign` binary — `run` / `resume` / `record` / `replay` /
//!   `diff` / `render` / `smoke` / `summarize` subcommands over all of
//!   the above, with `--spec FILE` loading a scenario matrix from a
//!   flat-JSON spec.
//!
//! Results are pure functions of the scenario, so a campaign executed
//! with 1 thread and with 8 threads produces the same result *set*
//! (only the arrival order differs — compare sorted lines).
//!
//! ```
//! use gather_campaign::{CampaignSpec, executor};
//!
//! let mut spec = CampaignSpec::named("doc");
//! spec.families = vec![gather_workloads::Family::Line];
//! spec.sizes = vec![24];
//! spec.seeds = vec![1, 2];
//! spec.controllers = vec![gather_bench::ControllerKind::Paper];
//! let jobs = spec.expand();
//! assert_eq!(jobs.len(), 2);
//! let records = executor::execute_scenarios(&jobs, 1, |_done, _total, _rec| {});
//! assert!(records.iter().all(|r| r.gathered));
//! ```

pub mod aggregate;
pub mod cli;
pub mod executor;
pub mod merge;
pub mod progress;
pub mod record;
pub mod service;
pub mod shard;
pub mod sink;
pub mod smoke;
pub mod spec;
pub mod trace_ops;

pub use aggregate::{provenance_table, summarize, summarize_perf};
pub use merge::{merge_shards, merge_trace_dirs, MergeReport, ShardContribution};
pub use progress::{record_status, ProgressReporter};
pub use record::{PerfSummary, ScenarioRecord};
pub use service::{serve, submit, work, SubmitReport, WorkReport};
pub use shard::{fnv1a_64, plan_lines, shard_out_path, ShardManifest, ShardSpec, ShardStrategy};
pub use sink::{
    load_completed, load_records, manifest_path, read_manifest, write_manifest, JsonlSink,
};
pub use smoke::{run_smoke, SmokeArgs, SmokeReport};
pub use spec::{coverage_xor, CampaignSpec, Scenario};
pub use trace_ops::{
    diff_trace_dirs, diff_trace_files, read_trace_manifest, record_scenario,
    record_scenario_profiled, replay_trace, write_trace_manifest, DiffReport, DiffStatus,
    ReplayReport, ReplayStatus, TraceJobOutcome,
};

// Axis types, re-exported so campaign callers need only this crate.
pub use gather_bench::{ControllerKind, SchedulerKind};
pub use gather_workloads::Family;
