//! Hand-rolled argument parsing for the `campaign` binary (no external
//! dependencies, same policy as `gather-bench/src/bin/report.rs`).

use std::path::PathBuf;

use gather_bench::{ControllerKind, SchedulerKind};
use gather_workloads::Family;

use crate::spec::CampaignSpec;

pub const USAGE: &str = "\
campaign — parallel scenario sweeps for the grid-gathering reproduction

USAGE:
    campaign run       [--threads N] [--out PATH] [axis flags]
    campaign resume    [--threads N] [--out PATH] [axis flags]
    campaign summarize [--in PATH]

SUBCOMMANDS:
    run        Execute the sweep from scratch (truncates --out)
    resume     Re-run the sweep, skipping scenarios already in --out
    summarize  Fold a result file into per-family scaling tables,
               grouped per (controller, scheduler)

OPTIONS:
    --threads N        Worker threads; 0 = all cores (default 0)
    --out PATH         Result JSONL file (default campaign.jsonl; run/resume only)
    --in PATH          Input for summarize (default campaign.jsonl)
    --families A,B     Workload families (default line,square,hollow-square,random-blob)
    --sizes N1,N2      Target swarm sizes (default 16,32,64,128)
    --seeds S1,S2      Orientation seeds, or LO..HI for a range (default 1,2,3)
    --controllers A,B  paper,center,greedy (default all three)
    --schedulers A,B   Activation policies: fsync, ssync-pP (P = activation
                       probability in percent, e.g. ssync-p50), rrK (round-robin
                       window of K robots, e.g. rr4). Default fsync.
                       FSYNC scenario IDs keep the legacy 4-part shape, so old
                       result files resume unchanged; other schedulers append a
                       fifth ID segment (line/n64/s3/paper/ssync-p50). The
                       greedy baseline is its own sequential scheduler and runs
                       once per cell regardless of this axis
    --name NAME        Campaign name recorded in logs (default standard)
    -h, --help         Show this help
";

/// A parsed invocation of the binary.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    Run(RunArgs),
    Resume(RunArgs),
    Summarize { input: PathBuf },
    Help,
}

#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    pub spec: CampaignSpec,
    pub threads: usize,
    pub out: PathBuf,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs { spec: CampaignSpec::standard(), threads: 0, out: PathBuf::from("campaign.jsonl") }
    }
}

/// Parse the process arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = match it.next() {
        None | Some("-h" | "--help" | "help") => return Ok(Command::Help),
        Some(s) => s,
    };
    let rest: Vec<&str> = it.collect();
    match sub {
        "run" => Ok(Command::Run(parse_run_args(&rest)?)),
        "resume" => Ok(Command::Resume(parse_run_args(&rest)?)),
        "summarize" => {
            let mut input = PathBuf::from("campaign.jsonl");
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--in" => {
                        input = PathBuf::from(value_of(flag, it.next().copied())?);
                    }
                    // `--out` used to be a silent, undocumented alias
                    // for `--in`; reject it so a run/summarize pipeline
                    // typo cannot silently read the wrong file.
                    "--out" => {
                        return Err("summarize reads its input from --in (--out is a run/resume \
                                    flag)"
                            .into());
                    }
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown summarize flag {other:?}")),
                }
            }
            Ok(Command::Summarize { input })
        }
        other => Err(format!("unknown subcommand {other:?} (try --help)")),
    }
}

fn value_of<'a>(flag: &str, value: Option<&'a str>) -> Result<&'a str, String> {
    value.ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_run_args(args: &[&str]) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--threads" => {
                let v = value_of(flag, it.next().copied())?;
                out.threads =
                    v.parse().map_err(|e| format!("--threads {v:?} is not a count: {e}"))?;
            }
            "--out" => out.out = PathBuf::from(value_of(flag, it.next().copied())?),
            "--name" => out.spec.name = value_of(flag, it.next().copied())?.to_string(),
            "--families" => {
                out.spec.families = split_list(value_of(flag, it.next().copied())?)
                    .map(|s| Family::parse(s).ok_or_else(|| format!("unknown family {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--sizes" => {
                out.spec.sizes = split_list(value_of(flag, it.next().copied())?)
                    .map(|s| s.parse().map_err(|e| format!("bad size {s:?}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => {
                out.spec.seeds = parse_seeds(value_of(flag, it.next().copied())?)?;
            }
            "--controllers" => {
                out.spec.controllers = split_list(value_of(flag, it.next().copied())?)
                    .map(|s| {
                        ControllerKind::parse(s).ok_or_else(|| format!("unknown controller {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--schedulers" => {
                out.spec.schedulers = split_list(value_of(flag, it.next().copied())?)
                    .map(|s| {
                        SchedulerKind::parse(s).ok_or_else(|| {
                            format!("unknown scheduler {s:?} (expected fsync, ssync-pP or rrK)")
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    out.spec.validate()?;
    Ok(out)
}

fn split_list(s: &str) -> impl Iterator<Item = &str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty())
}

/// Seeds: either a comma list (`1,5,9`) or an exclusive range (`0..8`).
fn parse_seeds(s: &str) -> Result<Vec<u64>, String> {
    if let Some((lo, hi)) = s.split_once("..") {
        let lo: u64 = lo.trim().parse().map_err(|e| format!("bad seed range start: {e}"))?;
        let hi: u64 = hi.trim().parse().map_err(|e| format!("bad seed range end: {e}"))?;
        if lo >= hi {
            return Err(format!("empty seed range {s:?}"));
        }
        Ok((lo..hi).collect())
    } else {
        split_list(s).map(|t| t.parse().map_err(|e| format!("bad seed {t:?}: {e}"))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_run_is_the_standard_sweep() {
        let cmd = parse(&strings(&["run"])).unwrap();
        let Command::Run(args) = cmd else { panic!("not run: {cmd:?}") };
        assert_eq!(args.spec, CampaignSpec::standard());
        assert_eq!(args.threads, 0);
        assert!(args.spec.len() >= 100);
    }

    #[test]
    fn axis_flags_override_the_matrix() {
        let cmd = parse(&strings(&[
            "run",
            "--threads",
            "4",
            "--out",
            "/tmp/x.jsonl",
            "--families",
            "line,table",
            "--sizes",
            "8,16",
            "--seeds",
            "0..4",
            "--controllers",
            "paper",
            "--name",
            "mini",
        ]))
        .unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(args.threads, 4);
        assert_eq!(args.out, PathBuf::from("/tmp/x.jsonl"));
        assert_eq!(args.spec.families, vec![Family::Line, Family::Table]);
        assert_eq!(args.spec.sizes, vec![8, 16]);
        assert_eq!(args.spec.seeds, vec![0, 1, 2, 3]);
        assert_eq!(args.spec.controllers, vec![ControllerKind::Paper]);
        assert_eq!(args.spec.name, "mini");
        assert_eq!(args.spec.len(), 2 * 2 * 4);
    }

    #[test]
    fn seed_lists_and_bad_input() {
        assert_eq!(parse_seeds("1, 5,9").unwrap(), vec![1, 5, 9]);
        assert_eq!(parse_seeds("2..5").unwrap(), vec![2, 3, 4]);
        assert!(parse_seeds("5..5").is_err());
        assert!(parse_seeds("x").is_err());
    }

    #[test]
    fn scheduler_axis_parses() {
        let cmd = parse(&strings(&["run", "--schedulers", "fsync,ssync-p50,rr4"])).unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(
            args.spec.schedulers,
            vec![
                SchedulerKind::Fsync,
                SchedulerKind::Ssync { p: 50 },
                SchedulerKind::RoundRobin { k: 4 },
            ]
        );
        // 48 cells × (paper + center under 3 schedulers each, greedy
        // once — it is its own sequential scheduler).
        assert_eq!(args.spec.len(), 4 * 4 * 3 * (2 * 3 + 1));
        for bad in ["mystery", "ssync-p0", "ssync-p200", "rr0", ""] {
            assert!(
                parse(&strings(&["run", "--schedulers", bad])).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn default_scheduler_axis_is_fsync_only() {
        let Command::Run(args) = parse(&strings(&["run"])).unwrap() else { panic!() };
        assert_eq!(args.spec.schedulers, vec![SchedulerKind::Fsync]);
    }

    #[test]
    fn resume_and_summarize_parse() {
        assert!(matches!(parse(&strings(&["resume"])).unwrap(), Command::Resume(_)));
        let Command::Summarize { input } =
            parse(&strings(&["summarize", "--in", "r.jsonl"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(input, PathBuf::from("r.jsonl"));
    }

    #[test]
    fn summarize_rejects_the_out_flag() {
        // `--out` was once silently accepted as an alias for `--in`.
        let err = parse(&strings(&["summarize", "--out", "r.jsonl"])).unwrap_err();
        assert!(err.contains("--in"), "error should point at --in: {err}");
        // And plain `--in` still works (regression guard for the fix).
        assert!(parse(&strings(&["summarize", "--in", "r.jsonl"])).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&strings(&["frobnicate"])).is_err());
        assert!(parse(&strings(&["run", "--families", "mystery"])).is_err());
        assert!(parse(&strings(&["run", "--controllers", ""])).is_err());
        assert!(parse(&strings(&["run", "--threads"])).is_err());
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }
}
