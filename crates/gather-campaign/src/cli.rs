//! Hand-rolled argument parsing for the `campaign` binary (no external
//! dependencies, same policy as `gather-bench/src/bin/report.rs`).

use std::collections::BTreeMap;
use std::path::PathBuf;

use gather_bench::{ControllerKind, SchedulerKind};
use gather_workloads::Family;

use crate::shard::{shard_out_path, ShardSpec, ShardStrategy};
use crate::spec::CampaignSpec;

pub const USAGE: &str = "\
campaign — parallel scenario sweeps for the grid-gathering reproduction

USAGE:
    campaign run       [--threads N] [--out PATH] [--spec FILE] [--shard I/M]
                       [--shard-strategy hash|stride] [--events FILE]
                       [--quiet] [--perf] [axis flags]
    campaign resume    [--threads N] [--out PATH] [--spec FILE] [--shard I/M]
                       [--shard-strategy hash|stride] [--events FILE]
                       [--quiet] [--perf] [axis flags]
    campaign record    [run flags]   [--trace-dir DIR]
    campaign merge     [--out PATH] SHARD.jsonl [SHARD.jsonl ...]
    campaign merge     --out DIR SHARD_TRACE_DIR [SHARD_TRACE_DIR ...]
    campaign plan      --shards M [--out PATH] [--spec FILE] [axis flags]
    campaign replay    [--trace-dir DIR]
    campaign diff      --a DIR --b DIR
    campaign render    TRACE.gtrc [--every K] [--svg PATH] [--cell N]
    campaign smoke     [--n N] [--rounds R] [--family F] [--seed S]
                       [--threads-a A] [--threads-b B] [--dir DIR]
                       [--scheduler fsync|ssync-pP|rrK|crash-fF|async-sS]
    campaign summarize [--in PATH] [--perf]
    campaign events tail FILE [--follow]
    campaign serve     --socket PATH [--cache DIR] [--jobs N]
                       [--lease-ttl-ms T] [--quiet]
    campaign submit    --socket PATH [--out PATH] [--spec FILE]
                       [--events FILE] [--quiet] [axis flags]
    campaign work      --socket PATH [--threads N] [--name ID]
                       [--lease K] [--poll-ms T]

SUBCOMMANDS:
    run        Execute the sweep from scratch (truncates --out)
    resume     Re-run the sweep, skipping scenarios already in --out
    merge      Verify that the given shard outputs cover their spec
               exactly once (manifests present, complete, same spec,
               indexes 0..M with no overlap or gap, records matching the
               per-shard coverage digests) and write one merged JSONL,
               dropping resumed duplicates (last record wins). Exits
               non-zero — writing nothing — on a missing shard, an
               overlapping shard, mixed specs, or a torn/incomplete file.
               When the inputs are trace directories (from `record
               --shard --trace-dir`), merges the trace sets instead:
               the same manifest proof over the traced scenarios, then
               every .gtrc byte-copied into --out DIR (recording is
               deterministic, so the merged set is bit-identical to an
               unsharded recording); requires an explicit --out
    plan       Print the exact per-shard `campaign run` command lines
               (plus the final merge) that execute the spec as M shards
    record     Run the sweep with per-round tracing on: results stream to
               --out as usual (truncated, like run), plus one binary .gtrc
               trace per engine scenario in --trace-dir, which is cleared
               of earlier traces first so the set always matches --out
               (the greedy strawman has no engine rounds and is not traced)
    replay     Re-execute every trace in --trace-dir and verify each round
               is bit-identical, reporting the first divergent round and
               robot; exits non-zero on any divergence, version mismatch,
               or config drift
    diff       Compare two trace sets file by file, summarizing drift per
               scenario; exits non-zero when the sets differ
    render     Replay a recorded .gtrc (digest-verified) and print it as
               an ASCII movie; --svg additionally writes a strip of the
               sampled frames as one SVG document. --every K samples a
               frame each K rounds (default: ~24 frames over the trace)
    smoke      Large-n determinism smoke: record --rounds engine rounds
               of the paper controller on a --n robot swarm at two
               thread counts, replay recording A through digest-verified
               playback, and require the two .gtrc files byte-identical;
               exits non-zero on any divergence (defaults: n=100000,
               rounds=12, family=clusters, threads 1 vs 8). A partial
               --scheduler (rr4, ssync-p50, ...) records through the
               engine's sparse round path while playback re-derives the
               rounds densely, cross-checking the two apply paths
    summarize  Fold a result file into per-family scaling tables,
               grouped per (controller, scheduler); --perf instead
               renders the engine phase-share table per (family, n,
               scheduler) from records written by `run --perf`
    events     `events tail FILE`: one-line status of an --events
               stream (done/total, panics, ETA or final wall time);
               exits non-zero when the stream is torn or has no
               terminating job_finished — the CI check that a streamed
               run really completed. With --follow, polls the file for
               appended events (the file may not exist yet) and exits
               cleanly once job_finished arrives
    serve      Run the resident campaign service on a Unix socket: FIFO
               job queue, worker pull-leases with expiry re-issue, and a
               content-addressed result cache keyed by (scenario ID,
               config digest, engine version) so repeated or overlapping
               sweeps never recompute a scenario. Workers and submitters
               speak flat NDJSON (the --events vocabulary plus a small
               request/response layer) over the same socket
    submit     Send a sweep spec to a running service and stream its
               progress until job_done. The server writes --out itself
               (ID-sorted merged JSONL plus a complete manifest) after
               folding the results through the shard coverage proof
    work       Pull-lease scenarios from a running service, execute them
               (panics isolated, like run), and stream record lines
               back; exits cleanly when the service drains or disappears

OPTIONS:
    --threads N        Worker threads; 0 = all cores (default 0)
    --events FILE      Also emit the run as a versioned NDJSON event stream
                       (job_started / scenario_started / scenario_finished /
                       heartbeat / job_finished; one flat JSON object per
                       line). run/record truncate FILE; resume appends a new
                       segment. The stderr progress lines are rendered from
                       these same events, so the two can never disagree
    --quiet            Suppress the per-scenario stderr progress lines
                       (the --events stream, when given, stays complete)
    --perf             Attach the engine phase profiler to every scenario:
                       records gain `secs` and a `perf_*` phase breakdown.
                       Trades result-file byte-reproducibility (timings
                       differ run to run) for observability; measured
                       result fields stay bit-identical
    --out PATH         Result JSONL file (default campaign.jsonl; run/resume/record;
                       when sharded, the default gains a .shardIofM suffix).
                       For merge/plan: the merged result path (default campaign.jsonl)
    --in PATH          Input for summarize (default campaign.jsonl)
    --shard I/M        Run only shard I of an M-way split of the spec (I in 0..M).
                       Every shard writes a <out>.manifest.json sidecar (spec digest,
                       shard coordinates, scenario coverage digest, completion marker)
                       that `merge` uses to verify exact coverage. Resume works per
                       shard: completed scenario IDs in --out are skipped
    --shard-strategy S hash (default): assign scenarios by a stable FNV-1a hash of
                       the scenario ID — any machine partitions any spec identically.
                       stride: assign by expansion index round-robin, spreading the
                       size gradient evenly across shards
    --shards M         (plan) Number of shards to plan for
    --spec FILE        Load the scenario matrix from a flat-JSON spec file;
                       fields absent from the file keep the standard-sweep
                       defaults, and axis flags override spec fields. Fields
                       (all string-valued, same syntax as the flags):
                       {\"name\":\"sweep\",\"families\":\"line,square\",
                        \"sizes\":\"16,32\",\"seeds\":\"0..4\",
                        \"controllers\":\"paper,center\",\"schedulers\":\"fsync\"}
    --trace-dir DIR    Trace directory (default traces; record/replay only)
    --a DIR, --b DIR   The two trace sets to diff
    --families A,B     Workload families (default line,square,hollow-square,random-blob)
    --sizes N1,N2      Target swarm sizes (default 16,32,64,128)
    --seeds S1,S2      Orientation seeds, or LO..HI for a range (default 1,2,3)
    --controllers A,B  paper,center,greedy (default all three)
    --schedulers A,B   Activation policies: fsync, ssync-pP (P = activation
                       probability in percent, e.g. ssync-p50), rrK (round-robin
                       window of K robots, e.g. rr4), crash-fF (crash-stop
                       faults: up to F seeded robots halt forever at seeded
                       rounds, e.g. crash-f3), async-sS (true ASYNC: each
                       look's move commits up to S rounds later, on a view
                       that stale; e.g. async-s4). Default fsync.
                       FSYNC scenario IDs keep the legacy 4-part shape, so old
                       result files resume unchanged; other schedulers append a
                       fifth ID segment (line/n64/s3/paper/ssync-p50). The
                       greedy baseline is its own sequential scheduler and runs
                       once per cell regardless of this axis
    --name NAME        run/submit: campaign name recorded in logs (default
                       standard). work: worker identity for lease
                       bookkeeping (default worker-<pid>)
    --socket PATH      serve/submit/work: Unix socket path of the service
    --cache DIR        serve: result cache directory (default campaign-cache)
    --jobs N           serve: exit after finalizing N jobs (default: serve
                       until killed)
    --lease-ttl-ms T   serve: lease expiry in milliseconds (default 60000).
                       An expired lease's scenarios are re-issued to the
                       next lease request, so a killed worker never
                       strands a job
    --lease K          work: scenarios claimed per lease request (default 8)
    --poll-ms T        work: sleep between empty lease grants (default 200)
    --follow           events tail: poll for appended events instead of
                       reading once; exits when job_finished arrives
    -h, --help         Show this help
";

/// A parsed invocation of the binary.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    Run(RunArgs),
    Resume(RunArgs),
    Record { run: RunArgs, trace_dir: PathBuf },
    Merge { inputs: Vec<PathBuf>, out: PathBuf, out_explicit: bool },
    Plan { run: RunArgs, shards: u32 },
    Replay { trace_dir: PathBuf },
    Diff { a: PathBuf, b: PathBuf },
    Render(RenderArgs),
    Smoke(crate::smoke::SmokeArgs),
    Summarize { input: PathBuf, perf: bool },
    EventsTail { file: PathBuf, follow: bool },
    Serve(ServeArgs),
    Submit(SubmitArgs),
    Work(WorkArgs),
    Help,
}

/// `campaign serve` flags.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    pub socket: PathBuf,
    /// Result cache directory.
    pub cache: PathBuf,
    /// Exit after finalizing this many jobs (`None` = serve forever).
    pub jobs: Option<usize>,
    /// Lease expiry: an unfinished lease older than this is re-issued.
    pub lease_ttl_ms: u64,
    pub quiet: bool,
}

/// `campaign submit` flags.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitArgs {
    pub socket: PathBuf,
    pub spec: CampaignSpec,
    pub out: PathBuf,
    /// Mirror the streamed progress events to this file, verbatim.
    pub events: Option<PathBuf>,
    pub quiet: bool,
}

/// `campaign work` flags.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkArgs {
    pub socket: PathBuf,
    pub threads: usize,
    /// Worker identity, for lease bookkeeping on the server.
    pub name: String,
    /// Scenarios claimed per lease request.
    pub lease: usize,
    /// Sleep between empty grants while the queue is dry.
    pub poll_ms: u64,
}

#[derive(Clone, Debug, PartialEq)]
pub struct RenderArgs {
    pub trace: PathBuf,
    /// Sample a frame every K rounds; `None` = auto (~24 frames).
    pub every: Option<u64>,
    /// Also write the frames as an SVG strip to this path.
    pub svg: Option<PathBuf>,
    /// SVG cell size in pixels.
    pub cell: u32,
}

#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    pub spec: CampaignSpec,
    pub threads: usize,
    pub out: PathBuf,
    /// Which slice of the spec this invocation executes (`0/1` = all).
    pub shard: ShardSpec,
    pub strategy: ShardStrategy,
    /// Also emit the run as an NDJSON event stream to this file.
    pub events: Option<PathBuf>,
    /// Suppress the stderr progress lines.
    pub quiet: bool,
    /// Attach the engine phase profiler (records gain timing fields).
    pub perf: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            spec: CampaignSpec::standard(),
            threads: 0,
            out: PathBuf::from("campaign.jsonl"),
            shard: ShardSpec::FULL,
            strategy: ShardStrategy::Hash,
            events: None,
            quiet: false,
            perf: false,
        }
    }
}

/// Parse the process arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = match it.next() {
        None | Some("-h" | "--help" | "help") => return Ok(Command::Help),
        Some(s) => s,
    };
    let rest: Vec<&str> = it.collect();
    match sub {
        "run" => Ok(Command::Run(parse_run_args(&rest, false)?.0)),
        "resume" => Ok(Command::Resume(parse_run_args(&rest, false)?.0)),
        "record" => {
            let (run, trace_dir) = parse_run_args(&rest, true)?;
            Ok(Command::Record { run, trace_dir: trace_dir.unwrap_or_else(default_trace_dir) })
        }
        "merge" => {
            let mut inputs = Vec::new();
            let mut out = PathBuf::from("campaign.jsonl");
            let mut out_explicit = false;
            let mut it = rest.iter();
            while let Some(&arg) = it.next() {
                match arg {
                    "--out" => {
                        out = PathBuf::from(value_of(arg, it.next().copied())?);
                        out_explicit = true;
                    }
                    "-h" | "--help" => return Ok(Command::Help),
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown merge flag {flag:?}"));
                    }
                    path => inputs.push(PathBuf::from(path)),
                }
            }
            if inputs.is_empty() {
                return Err("merge needs at least one SHARD.jsonl or trace-directory input".into());
            }
            if inputs.contains(&out) {
                return Err(format!(
                    "merge output {out:?} is also an input — it would be truncated before reading"
                ));
            }
            Ok(Command::Merge { inputs, out, out_explicit })
        }
        "plan" => {
            // `--shards M` is plan's own flag; extract it, then reuse
            // the run-flag parser for everything else.
            let mut rest = rest.clone();
            let i = rest
                .iter()
                .position(|&a| a == "--shards")
                .ok_or("plan needs --shards M (how many ways to split the spec)")?;
            let v = *rest.get(i + 1).ok_or("--shards needs a value")?;
            let shards: u32 = v.parse().map_err(|e| format!("--shards {v:?}: {e}"))?;
            if shards == 0 {
                return Err("--shards must be >= 1".into());
            }
            rest.drain(i..=i + 1);
            let (run, _) = parse_run_args(&rest, false)?;
            if !run.shard.is_full() {
                return Err("plan computes --shard for every slice itself; don't pass one".into());
            }
            Ok(Command::Plan { run, shards })
        }
        "replay" => {
            let mut trace_dir = default_trace_dir();
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--trace-dir" => {
                        trace_dir = PathBuf::from(value_of(flag, it.next().copied())?);
                    }
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown replay flag {other:?}")),
                }
            }
            Ok(Command::Replay { trace_dir })
        }
        "diff" => {
            let mut a = None;
            let mut b = None;
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--a" => a = Some(PathBuf::from(value_of(flag, it.next().copied())?)),
                    "--b" => b = Some(PathBuf::from(value_of(flag, it.next().copied())?)),
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown diff flag {other:?}")),
                }
            }
            match (a, b) {
                (Some(a), Some(b)) => Ok(Command::Diff { a, b }),
                _ => Err("diff needs both --a and --b trace directories".into()),
            }
        }
        "render" => {
            let mut args = RenderArgs { trace: PathBuf::new(), every: None, svg: None, cell: 6 };
            let mut it = rest.iter();
            while let Some(&arg) = it.next() {
                match arg {
                    "--every" => {
                        let v = value_of(arg, it.next().copied())?;
                        let every =
                            v.parse().map_err(|e| format!("--every {v:?} is not a count: {e}"))?;
                        if every == 0 {
                            return Err("--every must be >= 1 (omit it for auto sampling)".into());
                        }
                        args.every = Some(every);
                    }
                    "--svg" => args.svg = Some(PathBuf::from(value_of(arg, it.next().copied())?)),
                    "--cell" => {
                        let v = value_of(arg, it.next().copied())?;
                        args.cell =
                            v.parse().map_err(|e| format!("--cell {v:?} is not a size: {e}"))?;
                    }
                    "-h" | "--help" => return Ok(Command::Help),
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown render flag {flag:?}"));
                    }
                    path if args.trace.as_os_str().is_empty() => args.trace = PathBuf::from(path),
                    extra => return Err(format!("render takes one trace file, got {extra:?} too")),
                }
            }
            if args.trace.as_os_str().is_empty() {
                return Err("render needs a TRACE.gtrc path".into());
            }
            Ok(Command::Render(args))
        }
        "smoke" => {
            let mut args = crate::smoke::SmokeArgs::default();
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--n" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.n = v.parse().map_err(|e| format!("--n {v:?}: {e}"))?;
                    }
                    "--rounds" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.rounds = v.parse().map_err(|e| format!("--rounds {v:?}: {e}"))?;
                    }
                    "--family" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.family =
                            Family::parse(v).ok_or_else(|| format!("unknown family {v:?}"))?;
                    }
                    "--seed" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.seed = v.parse().map_err(|e| format!("--seed {v:?}: {e}"))?;
                    }
                    "--threads-a" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.threads_a =
                            v.parse().map_err(|e| format!("--threads-a {v:?}: {e}"))?;
                    }
                    "--threads-b" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.threads_b =
                            v.parse().map_err(|e| format!("--threads-b {v:?}: {e}"))?;
                    }
                    "--scheduler" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.scheduler =
                            v.parse().map_err(|e| format!("--scheduler {v:?}: {e}"))?;
                    }
                    "--dir" => args.dir = PathBuf::from(value_of(flag, it.next().copied())?),
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown smoke flag {other:?}")),
                }
            }
            if args.n == 0 || args.rounds == 0 {
                return Err("smoke needs --n >= 1 and --rounds >= 1".into());
            }
            Ok(Command::Smoke(args))
        }
        "summarize" => {
            let mut input = PathBuf::from("campaign.jsonl");
            let mut perf = false;
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--in" => {
                        input = PathBuf::from(value_of(flag, it.next().copied())?);
                    }
                    "--perf" => perf = true,
                    // `--out` used to be a silent, undocumented alias
                    // for `--in`; reject it so a run/summarize pipeline
                    // typo cannot silently read the wrong file.
                    "--out" => {
                        return Err("summarize reads its input from --in (--out is a run/resume \
                                    flag)"
                            .into());
                    }
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown summarize flag {other:?}")),
                }
            }
            Ok(Command::Summarize { input, perf })
        }
        "events" => {
            let mut it = rest.iter();
            match it.next().copied() {
                Some("tail") => {
                    let mut file = None;
                    let mut follow = false;
                    for &arg in it {
                        match arg {
                            "--follow" => follow = true,
                            "-h" | "--help" => return Ok(Command::Help),
                            flag if flag.starts_with("--") => {
                                return Err(format!("unknown events tail flag {flag:?}"));
                            }
                            path if file.is_none() => file = Some(PathBuf::from(path)),
                            extra => {
                                return Err(format!(
                                    "events tail takes one FILE, got {extra:?} too"
                                ));
                            }
                        }
                    }
                    let file = file.ok_or("events tail needs an event FILE")?;
                    Ok(Command::EventsTail { file, follow })
                }
                Some("-h" | "--help") | None => Ok(Command::Help),
                Some(other) => Err(format!("unknown events verb {other:?} (try tail)")),
            }
        }
        "serve" => {
            let mut socket = None;
            let mut args = ServeArgs {
                socket: PathBuf::new(),
                cache: PathBuf::from("campaign-cache"),
                jobs: None,
                lease_ttl_ms: 60_000,
                quiet: false,
            };
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--socket" => socket = Some(PathBuf::from(value_of(flag, it.next().copied())?)),
                    "--cache" => args.cache = PathBuf::from(value_of(flag, it.next().copied())?),
                    "--jobs" => {
                        let v = value_of(flag, it.next().copied())?;
                        let jobs: usize = v.parse().map_err(|e| format!("--jobs {v:?}: {e}"))?;
                        if jobs == 0 {
                            return Err("--jobs must be >= 1 (omit it to serve forever)".into());
                        }
                        args.jobs = Some(jobs);
                    }
                    "--lease-ttl-ms" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.lease_ttl_ms =
                            v.parse().map_err(|e| format!("--lease-ttl-ms {v:?}: {e}"))?;
                        if args.lease_ttl_ms == 0 {
                            return Err("--lease-ttl-ms must be >= 1".into());
                        }
                    }
                    "--quiet" => args.quiet = true,
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown serve flag {other:?}")),
                }
            }
            args.socket = socket.ok_or("serve needs --socket PATH")?;
            Ok(Command::Serve(args))
        }
        "submit" => {
            let mut socket = None;
            let mut args = SubmitArgs {
                socket: PathBuf::new(),
                spec: CampaignSpec::standard(),
                out: PathBuf::from("campaign.jsonl"),
                events: None,
                quiet: false,
            };
            // `--spec` first, so axis flags override spec-file fields —
            // same contract as run/resume.
            let mut rest: Vec<&str> = rest.clone();
            if let Some(i) = rest.iter().position(|&a| a == "--spec") {
                let path = *rest.get(i + 1).ok_or("--spec needs a value")?;
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
                args.spec =
                    spec_from_flat_json(&text).map_err(|e| format!("spec {path:?}: {e}"))?;
                rest.drain(i..=i + 1);
                if rest.contains(&"--spec") {
                    return Err("--spec given twice".into());
                }
            }
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--socket" => socket = Some(PathBuf::from(value_of(flag, it.next().copied())?)),
                    "--out" => args.out = PathBuf::from(value_of(flag, it.next().copied())?),
                    "--events" => {
                        args.events = Some(PathBuf::from(value_of(flag, it.next().copied())?));
                    }
                    "--quiet" => args.quiet = true,
                    "--name" => args.spec.name = value_of(flag, it.next().copied())?.to_string(),
                    "--families" => {
                        args.spec.families = parse_families(value_of(flag, it.next().copied())?)?;
                    }
                    "--sizes" => {
                        args.spec.sizes = parse_sizes(value_of(flag, it.next().copied())?)?
                    }
                    "--seeds" => {
                        args.spec.seeds = parse_seeds(value_of(flag, it.next().copied())?)?
                    }
                    "--controllers" => {
                        args.spec.controllers =
                            parse_controllers(value_of(flag, it.next().copied())?)?;
                    }
                    "--schedulers" => {
                        args.spec.schedulers =
                            parse_schedulers(value_of(flag, it.next().copied())?)?;
                    }
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown submit flag {other:?}")),
                }
            }
            args.spec.validate()?;
            args.socket = socket.ok_or("submit needs --socket PATH")?;
            Ok(Command::Submit(args))
        }
        "work" => {
            let mut socket = None;
            let mut args = WorkArgs {
                socket: PathBuf::new(),
                threads: 0,
                name: format!("worker-{}", std::process::id()),
                lease: 8,
                poll_ms: 200,
            };
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                match flag {
                    "--socket" => socket = Some(PathBuf::from(value_of(flag, it.next().copied())?)),
                    "--threads" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.threads = v
                            .parse()
                            .map_err(|e| format!("--threads {v:?} is not a count: {e}"))?;
                    }
                    "--name" => args.name = value_of(flag, it.next().copied())?.to_string(),
                    "--lease" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.lease = v.parse().map_err(|e| format!("--lease {v:?}: {e}"))?;
                        if args.lease == 0 {
                            return Err("--lease must be >= 1".into());
                        }
                    }
                    "--poll-ms" => {
                        let v = value_of(flag, it.next().copied())?;
                        args.poll_ms = v.parse().map_err(|e| format!("--poll-ms {v:?}: {e}"))?;
                    }
                    "-h" | "--help" => return Ok(Command::Help),
                    other => return Err(format!("unknown work flag {other:?}")),
                }
            }
            args.socket = socket.ok_or("work needs --socket PATH")?;
            Ok(Command::Work(args))
        }
        other => Err(format!("unknown subcommand {other:?} (try --help)")),
    }
}

fn value_of<'a>(flag: &str, value: Option<&'a str>) -> Result<&'a str, String> {
    value.ok_or_else(|| format!("{flag} needs a value"))
}

fn default_trace_dir() -> PathBuf {
    PathBuf::from("traces")
}

/// Parse run/resume/record flags. `--spec` is resolved first regardless
/// of its position, so axis flags always override spec-file fields.
/// `--trace-dir` is only accepted when `accept_trace_dir` is set
/// (`record`); `run`/`resume` reject it.
fn parse_run_args(
    args: &[&str],
    accept_trace_dir: bool,
) -> Result<(RunArgs, Option<PathBuf>), String> {
    let mut out = RunArgs::default();
    let mut trace_dir = None;
    let mut args: Vec<&str> = args.to_vec();
    if let Some(i) = args.iter().position(|&a| a == "--spec") {
        let path = *args.get(i + 1).ok_or("--spec needs a value")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
        out.spec = spec_from_flat_json(&text).map_err(|e| format!("spec {path:?}: {e}"))?;
        args.drain(i..=i + 1);
        if args.contains(&"--spec") {
            return Err("--spec given twice".into());
        }
    }
    let mut out_explicit = false;
    let mut it = args.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--threads" => {
                let v = value_of(flag, it.next().copied())?;
                out.threads =
                    v.parse().map_err(|e| format!("--threads {v:?} is not a count: {e}"))?;
            }
            "--out" => {
                out.out = PathBuf::from(value_of(flag, it.next().copied())?);
                out_explicit = true;
            }
            "--shard" => out.shard = ShardSpec::parse(value_of(flag, it.next().copied())?)?,
            "--events" => out.events = Some(PathBuf::from(value_of(flag, it.next().copied())?)),
            "--quiet" => out.quiet = true,
            "--perf" => out.perf = true,
            "--shard-strategy" => {
                let v = value_of(flag, it.next().copied())?;
                out.strategy = ShardStrategy::parse(v)
                    .ok_or_else(|| format!("unknown shard strategy {v:?} (hash or stride)"))?;
            }
            "--trace-dir" if accept_trace_dir => {
                trace_dir = Some(PathBuf::from(value_of(flag, it.next().copied())?));
            }
            "--name" => out.spec.name = value_of(flag, it.next().copied())?.to_string(),
            "--families" => {
                out.spec.families = parse_families(value_of(flag, it.next().copied())?)?
            }
            "--sizes" => out.spec.sizes = parse_sizes(value_of(flag, it.next().copied())?)?,
            "--seeds" => out.spec.seeds = parse_seeds(value_of(flag, it.next().copied())?)?,
            "--controllers" => {
                out.spec.controllers = parse_controllers(value_of(flag, it.next().copied())?)?;
            }
            "--schedulers" => {
                out.spec.schedulers = parse_schedulers(value_of(flag, it.next().copied())?)?;
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    out.spec.validate()?;
    // Sharded runs of the same spec must not clobber each other's
    // default result file: when --out was not given, suffix the default
    // with the shard coordinates (c.jsonl -> c.shard2of4.jsonl).
    if !out.shard.is_full() && !out_explicit {
        out.out = shard_out_path(&out.out, out.shard);
    }
    Ok((out, trace_dir))
}

/// Build a [`CampaignSpec`] from a flat-JSON spec file. All fields are
/// string-valued and use the exact syntax of the corresponding CLI
/// flags; fields absent from the file keep the standard-sweep defaults.
/// The flat-JSON dialect is the same one the result records use
/// (`gather_analysis::parse_flat_json`), so one parser owns both wire
/// formats.
pub fn spec_from_flat_json(text: &str) -> Result<CampaignSpec, String> {
    let map = gather_analysis::parse_flat_json(text.trim())?;
    let mut spec = CampaignSpec::standard();
    for (key, value) in &map {
        let s = value
            .as_str()
            .ok_or_else(|| format!("spec field {key:?} must be a string (flag syntax)"))?;
        apply_spec_field(&mut spec, key, s)?;
    }
    Ok(spec)
}

/// Build a [`CampaignSpec`] from flat string axes — the `spec_*` fields
/// of the service protocol. Same field names and value syntax as the
/// spec file; absent fields keep the standard-sweep defaults. Unlike
/// the spec-file path (whose fields may still be overridden by flags),
/// this is the complete spec, so it is validated here.
pub fn spec_from_fields(fields: &BTreeMap<String, String>) -> Result<CampaignSpec, String> {
    let mut spec = CampaignSpec::standard();
    for (key, value) in fields {
        apply_spec_field(&mut spec, key, value)?;
    }
    spec.validate()?;
    Ok(spec)
}

/// Flatten a spec back to its string axes, the inverse of
/// [`spec_from_fields`]: `spec_from_fields(&spec_to_fields(&s)) == s`
/// for any valid spec. Seeds flatten to an explicit comma list (a
/// `LO..HI` range round-trips through its expansion).
pub fn spec_to_fields(spec: &CampaignSpec) -> BTreeMap<String, String> {
    let join = |parts: Vec<String>| parts.join(",");
    BTreeMap::from([
        ("name".to_string(), spec.name.clone()),
        (
            "families".to_string(),
            join(spec.families.iter().map(|f| f.name().to_string()).collect()),
        ),
        ("sizes".to_string(), join(spec.sizes.iter().map(usize::to_string).collect())),
        ("seeds".to_string(), join(spec.seeds.iter().map(u64::to_string).collect())),
        (
            "controllers".to_string(),
            join(spec.controllers.iter().map(|c| c.name().to_string()).collect()),
        ),
        ("schedulers".to_string(), join(spec.schedulers.iter().map(|s| s.name()).collect())),
    ])
}

fn apply_spec_field(spec: &mut CampaignSpec, key: &str, s: &str) -> Result<(), String> {
    match key {
        "name" => spec.name = s.to_string(),
        "families" => spec.families = parse_families(s)?,
        "sizes" => spec.sizes = parse_sizes(s)?,
        "seeds" => spec.seeds = parse_seeds(s)?,
        "controllers" => spec.controllers = parse_controllers(s)?,
        "schedulers" => spec.schedulers = parse_schedulers(s)?,
        other => return Err(format!("unknown spec field {other:?}")),
    }
    Ok(())
}

fn parse_families(s: &str) -> Result<Vec<Family>, String> {
    split_list(s).map(|t| Family::parse(t).ok_or_else(|| format!("unknown family {t:?}"))).collect()
}

fn parse_sizes(s: &str) -> Result<Vec<usize>, String> {
    split_list(s).map(|t| t.parse().map_err(|e| format!("bad size {t:?}: {e}"))).collect()
}

fn parse_controllers(s: &str) -> Result<Vec<ControllerKind>, String> {
    split_list(s)
        .map(|t| ControllerKind::parse(t).ok_or_else(|| format!("unknown controller {t:?}")))
        .collect()
}

fn parse_schedulers(s: &str) -> Result<Vec<SchedulerKind>, String> {
    split_list(s)
        .map(|t| {
            t.parse::<SchedulerKind>().map_err(|e| {
                format!("bad scheduler {t:?}: {e} (expected fsync, ssync-pP, rrK, crash-fF or async-sS)")
            })
        })
        .collect()
}

fn split_list(s: &str) -> impl Iterator<Item = &str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty())
}

/// Seeds: either a comma list (`1,5,9`) or an exclusive range (`0..8`).
fn parse_seeds(s: &str) -> Result<Vec<u64>, String> {
    if let Some((lo, hi)) = s.split_once("..") {
        let lo: u64 = lo.trim().parse().map_err(|e| format!("bad seed range start: {e}"))?;
        let hi: u64 = hi.trim().parse().map_err(|e| format!("bad seed range end: {e}"))?;
        if lo >= hi {
            return Err(format!("empty seed range {s:?}"));
        }
        Ok((lo..hi).collect())
    } else {
        split_list(s).map(|t| t.parse().map_err(|e| format!("bad seed {t:?}: {e}"))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_run_is_the_standard_sweep() {
        let cmd = parse(&strings(&["run"])).unwrap();
        let Command::Run(args) = cmd else { panic!("not run: {cmd:?}") };
        assert_eq!(args.spec, CampaignSpec::standard());
        assert_eq!(args.threads, 0);
        assert!(args.spec.len() >= 100);
    }

    #[test]
    fn axis_flags_override_the_matrix() {
        let cmd = parse(&strings(&[
            "run",
            "--threads",
            "4",
            "--out",
            "/tmp/x.jsonl",
            "--families",
            "line,table",
            "--sizes",
            "8,16",
            "--seeds",
            "0..4",
            "--controllers",
            "paper",
            "--name",
            "mini",
        ]))
        .unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(args.threads, 4);
        assert_eq!(args.out, PathBuf::from("/tmp/x.jsonl"));
        assert_eq!(args.spec.families, vec![Family::Line, Family::Table]);
        assert_eq!(args.spec.sizes, vec![8, 16]);
        assert_eq!(args.spec.seeds, vec![0, 1, 2, 3]);
        assert_eq!(args.spec.controllers, vec![ControllerKind::Paper]);
        assert_eq!(args.spec.name, "mini");
        assert_eq!(args.spec.len(), 2 * 2 * 4);
    }

    #[test]
    fn seed_lists_and_bad_input() {
        assert_eq!(parse_seeds("1, 5,9").unwrap(), vec![1, 5, 9]);
        assert_eq!(parse_seeds("2..5").unwrap(), vec![2, 3, 4]);
        assert!(parse_seeds("5..5").is_err());
        assert!(parse_seeds("x").is_err());
    }

    #[test]
    fn scheduler_axis_parses() {
        let cmd = parse(&strings(&["run", "--schedulers", "fsync,ssync-p50,rr4"])).unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(
            args.spec.schedulers,
            vec![
                SchedulerKind::Fsync,
                SchedulerKind::Ssync { p: 50 },
                SchedulerKind::RoundRobin { k: 4 },
            ]
        );
        // 48 cells × (paper + center under 3 schedulers each, greedy
        // once — it is its own sequential scheduler).
        assert_eq!(args.spec.len(), 4 * 4 * 3 * (2 * 3 + 1));
        for bad in ["mystery", "ssync-p0", "ssync-p200", "rr0", ""] {
            assert!(
                parse(&strings(&["run", "--schedulers", bad])).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn default_scheduler_axis_is_fsync_only() {
        let Command::Run(args) = parse(&strings(&["run"])).unwrap() else { panic!() };
        assert_eq!(args.spec.schedulers, vec![SchedulerKind::Fsync]);
    }

    #[test]
    fn resume_and_summarize_parse() {
        assert!(matches!(parse(&strings(&["resume"])).unwrap(), Command::Resume(_)));
        let Command::Summarize { input, perf } =
            parse(&strings(&["summarize", "--in", "r.jsonl"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(input, PathBuf::from("r.jsonl"));
        assert!(!perf);
        let Command::Summarize { perf, .. } = parse(&strings(&["summarize", "--perf"])).unwrap()
        else {
            panic!()
        };
        assert!(perf);
    }

    #[test]
    fn observability_flags_parse() {
        let Command::Run(args) =
            parse(&strings(&["run", "--events", "ev.ndjson", "--quiet", "--perf"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(args.events, Some(PathBuf::from("ev.ndjson")));
        assert!(args.quiet && args.perf);

        // Defaults: no stream, not quiet, no profiling.
        let Command::Run(args) = parse(&strings(&["run"])).unwrap() else { panic!() };
        assert_eq!(args.events, None);
        assert!(!args.quiet && !args.perf);

        // resume and record accept the same flags.
        assert!(matches!(
            parse(&strings(&["resume", "--events", "e", "--quiet"])).unwrap(),
            Command::Resume(_)
        ));
        let Command::Record { run, .. } =
            parse(&strings(&["record", "--perf", "--events", "e"])).unwrap()
        else {
            panic!()
        };
        assert!(run.perf);
        assert_eq!(run.events, Some(PathBuf::from("e")));

        assert!(parse(&strings(&["run", "--events"])).is_err(), "--events needs a value");
    }

    #[test]
    fn events_tail_parses() {
        let Command::EventsTail { file, follow } =
            parse(&strings(&["events", "tail", "ev.ndjson"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(file, PathBuf::from("ev.ndjson"));
        assert!(!follow);

        let Command::EventsTail { follow, .. } =
            parse(&strings(&["events", "tail", "ev.ndjson", "--follow"])).unwrap()
        else {
            panic!()
        };
        assert!(follow);

        assert!(matches!(parse(&strings(&["events"])).unwrap(), Command::Help));
        assert!(parse(&strings(&["events", "tail"])).is_err(), "FILE is required");
        assert!(parse(&strings(&["events", "tail", "a", "b"])).is_err(), "one FILE only");
        assert!(parse(&strings(&["events", "watch", "x"])).is_err(), "unknown verb");
        assert!(parse(&strings(&["events", "tail", "--bogus"])).is_err());
    }

    #[test]
    fn summarize_rejects_the_out_flag() {
        // `--out` was once silently accepted as an alias for `--in`.
        let err = parse(&strings(&["summarize", "--out", "r.jsonl"])).unwrap_err();
        assert!(err.contains("--in"), "error should point at --in: {err}");
        // And plain `--in` still works (regression guard for the fix).
        assert!(parse(&strings(&["summarize", "--in", "r.jsonl"])).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&strings(&["frobnicate"])).is_err());
        assert!(parse(&strings(&["run", "--families", "mystery"])).is_err());
        assert!(parse(&strings(&["run", "--controllers", ""])).is_err());
        assert!(parse(&strings(&["run", "--threads"])).is_err());
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn crash_scheduler_axis_parses() {
        let Command::Run(args) = parse(&strings(&["run", "--schedulers", "crash-f3"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(args.spec.schedulers, vec![SchedulerKind::Crash { f: 3 }]);
        assert!(parse(&strings(&["run", "--schedulers", "crash-f0"])).is_err());
    }

    #[test]
    fn shard_flags_parse_and_suffix_the_default_out() {
        let Command::Run(args) = parse(&strings(&["run", "--shard", "2/4"])).unwrap() else {
            panic!()
        };
        assert_eq!(args.shard, ShardSpec { index: 2, count: 4 });
        assert_eq!(args.strategy, ShardStrategy::Hash, "hash is the default strategy");
        assert_eq!(
            args.out,
            PathBuf::from("campaign.shard2of4.jsonl"),
            "the default out must gain the shard suffix so shards cannot clobber each other"
        );

        // An explicit --out is taken verbatim.
        let Command::Run(args) =
            parse(&strings(&["run", "--shard", "1/2", "--out", "x.jsonl"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(args.out, PathBuf::from("x.jsonl"));

        let Command::Resume(args) =
            parse(&strings(&["resume", "--shard", "0/2", "--shard-strategy", "stride"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(args.strategy, ShardStrategy::Stride);

        // Unsharded runs keep the plain default path.
        let Command::Run(args) = parse(&strings(&["run"])).unwrap() else { panic!() };
        assert_eq!(args.out, PathBuf::from("campaign.jsonl"));
        assert_eq!(args.shard, ShardSpec::FULL);

        for bad in ["4/4", "x/4", "1/0", "3"] {
            assert!(parse(&strings(&["run", "--shard", bad])).is_err(), "{bad:?}");
        }
        assert!(parse(&strings(&["run", "--shard-strategy", "mystery"])).is_err());
    }

    #[test]
    fn merge_parses_inputs_and_guards_the_output() {
        let Command::Merge { inputs, out, out_explicit } =
            parse(&strings(&["merge", "--out", "m.jsonl", "a.jsonl", "b.jsonl"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(inputs, vec![PathBuf::from("a.jsonl"), PathBuf::from("b.jsonl")]);
        assert_eq!(out, PathBuf::from("m.jsonl"));
        assert!(out_explicit);

        let Command::Merge { out, out_explicit, .. } =
            parse(&strings(&["merge", "a.jsonl"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(out, PathBuf::from("campaign.jsonl"), "default merge output");
        assert!(!out_explicit, "the default output must be distinguishable from --out");

        assert!(parse(&strings(&["merge"])).is_err(), "at least one input required");
        assert!(parse(&strings(&["merge", "--bogus"])).is_err());
        assert!(
            parse(&strings(&["merge", "--out", "a.jsonl", "a.jsonl"])).is_err(),
            "an output that is also an input would truncate it before reading"
        );
    }

    #[test]
    fn plan_parses_and_its_lines_parse_back() {
        let Command::Plan { run, shards } = parse(&strings(&[
            "plan",
            "--shards",
            "4",
            "--sizes",
            "16,32",
            "--families",
            "line,square",
            "--out",
            "w.jsonl",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(shards, 4);
        assert_eq!(run.spec.sizes, vec![16, 32]);

        // Every command line plan prints must parse back through this
        // very parser: the run lines as sharded runs covering all
        // slices, the final line as the merge.
        let lines =
            crate::shard::plan_lines(&run.spec, shards, run.strategy, &run.out, run.threads);
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let args: Vec<String> = line.split_whitespace().skip(1).map(str::to_string).collect();
            match parse(&args).unwrap() {
                Command::Run(parsed) => {
                    assert_eq!(parsed.shard, ShardSpec { index: i as u32, count: 4 });
                    assert_eq!(parsed.spec.sizes, run.spec.sizes, "axes survive the round trip");
                    assert_eq!(parsed.spec.families, run.spec.families);
                }
                Command::Merge { inputs, out, .. } => {
                    assert_eq!(i, lines.len() - 1, "merge must be the final line");
                    assert_eq!(inputs.len(), 4);
                    assert_eq!(out, PathBuf::from("w.jsonl"));
                }
                other => panic!("unexpected plan line {line:?} -> {other:?}"),
            }
        }

        assert!(parse(&strings(&["plan"])).is_err(), "--shards is required");
        assert!(parse(&strings(&["plan", "--shards", "0"])).is_err());
        assert!(
            parse(&strings(&["plan", "--shards", "2", "--shard", "0/2"])).is_err(),
            "plan computes shards itself"
        );
    }

    #[test]
    fn record_replay_and_diff_parse() {
        let Command::Record { run, trace_dir } =
            parse(&strings(&["record", "--sizes", "16", "--trace-dir", "/tmp/t"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(run.spec.sizes, vec![16]);
        assert_eq!(trace_dir, PathBuf::from("/tmp/t"));
        let Command::Record { trace_dir, .. } = parse(&strings(&["record"])).unwrap() else {
            panic!()
        };
        assert_eq!(trace_dir, PathBuf::from("traces"), "default trace dir");
        // run/resume reject --trace-dir: it only means something to record.
        assert!(parse(&strings(&["run", "--trace-dir", "x"])).is_err());

        let Command::Replay { trace_dir } =
            parse(&strings(&["replay", "--trace-dir", "td"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(trace_dir, PathBuf::from("td"));

        let Command::Diff { a, b } =
            parse(&strings(&["diff", "--a", "one", "--b", "two"])).unwrap()
        else {
            panic!()
        };
        assert_eq!((a, b), (PathBuf::from("one"), PathBuf::from("two")));
        assert!(parse(&strings(&["diff", "--a", "one"])).is_err(), "diff needs both sets");
    }

    #[test]
    fn render_parses() {
        let Command::Render(args) = parse(&strings(&["render", "t.gtrc"])).unwrap() else {
            panic!()
        };
        assert_eq!(args.trace, PathBuf::from("t.gtrc"));
        assert_eq!((args.every, args.svg, args.cell), (None, None, 6));

        let Command::Render(args) = parse(&strings(&[
            "render",
            "--every",
            "5",
            "t.gtrc",
            "--svg",
            "strip.svg",
            "--cell",
            "8",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(args.every, Some(5));
        assert_eq!(args.svg, Some(PathBuf::from("strip.svg")));
        assert_eq!(args.cell, 8);

        assert!(parse(&strings(&["render"])).is_err(), "trace path required");
        assert!(parse(&strings(&["render", "a.gtrc", "b.gtrc"])).is_err(), "one trace only");
        assert!(parse(&strings(&["render", "t.gtrc", "--every", "0"])).is_err());
        assert!(parse(&strings(&["render", "t.gtrc", "--bogus"])).is_err());
    }

    #[test]
    fn smoke_parses_with_large_n_defaults() {
        let Command::Smoke(args) = parse(&strings(&["smoke"])).unwrap() else { panic!() };
        assert!(args.n >= 100_000, "the smoke's point is large n, got {}", args.n);
        assert_ne!(args.threads_a, args.threads_b);

        let Command::Smoke(args) = parse(&strings(&[
            "smoke",
            "--n",
            "1000000",
            "--rounds",
            "4",
            "--family",
            "clusters",
            "--seed",
            "9",
            "--threads-a",
            "2",
            "--threads-b",
            "16",
            "--dir",
            "/tmp/sm",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!((args.n, args.rounds, args.seed), (1_000_000, 4, 9));
        assert_eq!((args.threads_a, args.threads_b), (2, 16));
        assert_eq!(args.dir, PathBuf::from("/tmp/sm"));
        assert_eq!(args.family, Family::Clusters);

        assert!(parse(&strings(&["smoke", "--n", "0"])).is_err());
        assert!(parse(&strings(&["smoke", "--family", "mystery"])).is_err());
        assert!(parse(&strings(&["smoke", "--bogus"])).is_err());
    }

    #[test]
    fn spec_files_load_and_flags_override() {
        let spec = r#"{"name":"sweep","families":"line,table","sizes":"8,16",
                       "seeds":"0..3","controllers":"paper","schedulers":"fsync,crash-f2"}"#;
        let parsed = spec_from_flat_json(spec).unwrap();
        assert_eq!(parsed.name, "sweep");
        assert_eq!(parsed.families, vec![Family::Line, Family::Table]);
        assert_eq!(parsed.sizes, vec![8, 16]);
        assert_eq!(parsed.seeds, vec![0, 1, 2]);
        assert_eq!(parsed.controllers, vec![ControllerKind::Paper]);
        assert_eq!(parsed.schedulers, vec![SchedulerKind::Fsync, SchedulerKind::Crash { f: 2 }]);

        // Absent fields keep the standard defaults.
        let partial = spec_from_flat_json(r#"{"families":"line"}"#).unwrap();
        assert_eq!(partial.families, vec![Family::Line]);
        assert_eq!(partial.sizes, CampaignSpec::standard().sizes);

        // Errors: unknown fields, non-string values, bad axis syntax.
        assert!(spec_from_flat_json(r#"{"familes":"line"}"#).is_err(), "typo must be loud");
        assert!(spec_from_flat_json(r#"{"sizes":16}"#).is_err(), "values are flag strings");
        assert!(spec_from_flat_json(r#"{"schedulers":"ssync-p0"}"#).is_err());

        // End to end through --spec, with a flag override on top.
        let path =
            std::env::temp_dir().join(format!("gather-campaign-spec-{}.json", std::process::id()));
        std::fs::write(&path, spec).unwrap();
        let cmd =
            parse(&strings(&["run", "--sizes", "32", "--spec", path.to_str().unwrap()])).unwrap();
        let Command::Run(args) = cmd else { panic!() };
        assert_eq!(args.spec.name, "sweep");
        assert_eq!(args.spec.families, vec![Family::Line, Family::Table]);
        assert_eq!(args.spec.sizes, vec![32], "flags override spec fields regardless of order");
        std::fs::remove_file(&path).unwrap();

        assert!(parse(&strings(&["run", "--spec", "/nonexistent/x.json"])).is_err());
    }

    #[test]
    fn service_subcommands_parse() {
        let Command::Serve(serve) = parse(&strings(&[
            "serve",
            "--socket",
            "/tmp/s.sock",
            "--cache",
            "c",
            "--jobs",
            "2",
            "--lease-ttl-ms",
            "500",
            "--quiet",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(serve.socket, PathBuf::from("/tmp/s.sock"));
        assert_eq!(serve.cache, PathBuf::from("c"));
        assert_eq!(serve.jobs, Some(2));
        assert_eq!(serve.lease_ttl_ms, 500);
        assert!(serve.quiet);

        assert!(parse(&strings(&["serve"])).is_err(), "--socket is required");
        assert!(parse(&strings(&["serve", "--socket", "s", "--jobs", "0"])).is_err());

        let Command::Submit(submit) = parse(&strings(&[
            "submit",
            "--socket",
            "/tmp/s.sock",
            "--families",
            "line",
            "--sizes",
            "16",
            "--seeds",
            "1",
            "--out",
            "out.jsonl",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(submit.out, PathBuf::from("out.jsonl"));
        assert_eq!(submit.spec.sizes, vec![16]);
        assert!(parse(&strings(&["submit", "--families", "line"])).is_err(), "needs --socket");

        let Command::Work(work) = parse(&strings(&[
            "work",
            "--socket",
            "/tmp/s.sock",
            "--threads",
            "2",
            "--name",
            "w1",
            "--lease",
            "4",
            "--poll-ms",
            "50",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(work.threads, 2);
        assert_eq!(work.name, "w1");
        assert_eq!(work.lease, 4);
        assert_eq!(work.poll_ms, 50);
        assert!(parse(&strings(&["work", "--socket", "s", "--lease", "0"])).is_err());
    }

    #[test]
    fn spec_fields_round_trip() {
        let mut spec = CampaignSpec::standard();
        spec.name = "round-trip".to_string();
        let fields = spec_to_fields(&spec);
        assert_eq!(spec_from_fields(&fields).unwrap(), spec);

        let mut fields = fields;
        fields.insert("sizes".to_string(), "not-a-number".to_string());
        assert!(spec_from_fields(&fields).is_err());
        fields.insert("sizes".to_string(), String::new());
        assert!(spec_from_fields(&fields).is_err(), "empty axis fails validation");
        fields.remove("sizes");
        let defaulted = spec_from_fields(&fields).unwrap();
        assert_eq!(defaulted.sizes, CampaignSpec::standard().sizes, "absent axes keep defaults");
    }
}
