//! `campaign serve` / `submit` / `work`: the resident campaign service.
//!
//! The mechanism — job queue, lease table, content-addressed result
//! cache, line-framed socket — lives in `gather-serve`; this module is
//! the policy layer that ties it to spec expansion and scenario
//! execution:
//!
//! * [`serve`] — bind a Unix socket, accept submitters and workers,
//!   lease scenario ranges out by pull, fold results (first write
//!   wins), and finalize each job into a merged, ID-sorted JSONL file
//!   plus a complete shard manifest once the coverage-digest proof
//!   passes.
//! * [`work`] — connect to a service, pull leases, run the scenarios
//!   through the campaign executor, and stream records back. A worker
//!   can be killed at any point: its leases expire on the server and
//!   are re-issued, so no job is ever lost.
//! * [`submit`] — send a spec, mirror the progress event stream (the
//!   exact `gather-obs` v1 vocabulary a `--events` file carries), and
//!   validate the whole submission conversation before reporting.
//!
//! Everything on the wire is flat NDJSON ([`gather_obs::proto`]).
//! Record lines are re-serialized canonically on ingest, so the merged
//! output is byte-identical to an unsharded `campaign run` of the same
//! spec, and a cache hit replays the exact bytes a fresh execution
//! would produce.
//!
//! This module never reads a clock directly: the server's single time
//! source is [`gather_serve::ServiceClock`] (allowlisted in
//! `gather-audit`), passed into the pure lease/queue logic as plain
//! milliseconds, and worker-side durations come from the executor.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, ErrorKind, Write};
use std::ops::ControlFlow;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use gather_obs::{Event, Frame, Message};
use gather_serve::{CacheKey, Conn, JobQueue, LeaseTable, ResultCache, ServiceClock};

use crate::cli::{spec_from_fields, spec_to_fields, ServeArgs, SubmitArgs, WorkArgs};
use crate::executor::{execute_jobs_observed, JobEvent};
use crate::progress::record_status;
use crate::record::ScenarioRecord;
use crate::shard::{ShardManifest, ShardSpec, ShardStrategy};
use crate::sink::write_manifest;
use crate::spec::{coverage_xor, Scenario};

/// How long the accept loop sleeps between polls, and how long a
/// client waits between connection attempts while the socket is not
/// up yet.
const POLL_MS: u64 = 25;

/// How long a client keeps retrying a connection before giving up —
/// generous enough to start `serve` and its clients concurrently.
const CONNECT_WINDOW_MS: u64 = 10_000;

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Progress lines buffered for one submitter connection. Events and
/// control messages are serialized at the point they happen (under the
/// state lock, so their order is the order things actually occurred
/// in) and drained to the socket by the submitter's own thread.
struct Feed {
    lines: VecDeque<String>,
    /// Set when `job_done` has been pushed; the feed drains and closes.
    done: bool,
}

struct ServerState {
    queue: JobQueue,
    leases: LeaseTable,
    /// Job id -> event feed of the submitter waiting on that job. A
    /// vanished submitter drops its feed; the job still runs to
    /// completion and its output is still written.
    feeds: BTreeMap<u64, Feed>,
    finalized: usize,
    /// Set once `--jobs N` jobs have been finalized: new submissions
    /// are refused, workers are told to exit, and the accept loop
    /// returns once the last feed drains.
    draining: bool,
}

struct Shared {
    state: Mutex<ServerState>,
    wake: Condvar,
    clock: ServiceClock,
    cache: ResultCache,
    lease_ttl_ms: u64,
    max_jobs: Option<usize>,
    quiet: bool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, ServerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Push a line onto a job's feed, if its submitter is still listening.
fn push_feed(state: &mut ServerState, job: u64, line: String) {
    if let Some(feed) = state.feeds.get_mut(&job) {
        feed.lines.push_back(line);
    }
}

/// Run the campaign service until it drains (`--jobs N`) or forever.
pub fn serve(args: &ServeArgs) -> Result<(), String> {
    if args.socket.exists() {
        std::fs::remove_file(&args.socket)
            .map_err(|e| format!("removing stale socket {}: {e}", args.socket.display()))?;
    }
    let listener = UnixListener::bind(&args.socket)
        .map_err(|e| format!("binding {}: {e}", args.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("configuring {}: {e}", args.socket.display()))?;
    let cache = ResultCache::open(&args.cache)
        .map_err(|e| format!("opening cache {}: {e}", args.cache.display()))?;
    if !args.quiet {
        eprintln!(
            "campaign service on {}: cache {} ({} entries), lease ttl {}ms{}",
            args.socket.display(),
            cache.dir().display(),
            cache.len(),
            args.lease_ttl_ms,
            match args.jobs {
                Some(n) => format!(", draining after {n} job(s)"),
                None => String::new(),
            },
        );
    }
    let shared = Arc::new(Shared {
        state: Mutex::new(ServerState {
            queue: JobQueue::new(),
            leases: LeaseTable::new(),
            feeds: BTreeMap::new(),
            finalized: 0,
            draining: false,
        }),
        wake: Condvar::new(),
        clock: ServiceClock::new(),
        cache,
        lease_ttl_ms: args.lease_ttl_ms,
        max_jobs: args.jobs,
        quiet: args.quiet,
    });
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                // Connection threads exit on peer EOF; workers see the
                // drained grant and hang up, so none of them outlives
                // the accept loop for long and joining is unnecessary.
                thread::spawn(move || handle_conn(&shared, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                {
                    let state = shared.lock();
                    if state.draining && state.feeds.is_empty() {
                        break;
                    }
                }
                thread::sleep(Duration::from_millis(POLL_MS));
            }
            Err(e) => {
                let _ = std::fs::remove_file(&args.socket);
                return Err(format!("accept on {}: {e}", args.socket.display()));
            }
        }
    }
    let _ = std::fs::remove_file(&args.socket);
    if !args.quiet {
        let finalized = shared.lock().finalized;
        eprintln!("campaign service drained: {finalized} job(s) finalized");
    }
    Ok(())
}

/// A connection declares its role with its first message: `submit_job`
/// or `lease_request`. Anything else is dropped with a note.
fn handle_conn(shared: &Shared, stream: UnixStream) {
    let result = (|| -> Result<(), String> {
        let mut conn = Conn::from_stream(stream).map_err(|e| format!("accepting: {e}"))?;
        let Some(first) = conn.recv_line().map_err(|e| format!("reading greeting: {e}"))? else {
            return Ok(());
        };
        match Message::from_json_line(&first)? {
            Message::SubmitJob { out, spec, .. } => handle_submitter(shared, conn, &out, &spec),
            Message::LeaseRequest { worker, capacity } => {
                let result = worker_session(shared, &mut conn, &worker, capacity);
                // Whatever ended the session, the worker's outstanding
                // leases go back in the queue immediately — faster than
                // waiting out their TTL.
                let mut state = shared.lock();
                for lease in state.leases.release_worker(&worker) {
                    state.queue.requeue(lease.job, &lease.indexes);
                }
                shared.wake.notify_all();
                result
            }
            other => Err(format!("connection opened with unexpected {}", other.kind())),
        }
    })();
    if let Err(e) = result {
        eprintln!("serve: connection error: {e}");
    }
}

/// Accept a submission, settle cache hits, then stream the job's event
/// feed to the submitter until `job_done`.
fn handle_submitter(
    shared: &Shared,
    mut conn: Conn,
    out: &str,
    spec_fields: &BTreeMap<String, String>,
) -> Result<(), String> {
    // The protocol has no error-reply kind: a rejected submission just
    // closes the connection, and the submitter reports the EOF. The
    // reason lands on the service's stderr.
    let spec = spec_from_fields(spec_fields)?;
    let scenarios = spec.expand();
    let ids: Vec<String> = scenarios.iter().map(Scenario::id).collect();
    let keys: Vec<CacheKey> = scenarios
        .iter()
        .zip(&ids)
        .map(|(sc, id)| CacheKey {
            scenario_id: id.clone(),
            config_digest: sc.config_digest(),
            engine_version: grid_engine::ENGINE_VERSION.to_string(),
        })
        .collect();
    let total = ids.len();
    let job_id;
    {
        let mut state = shared.lock();
        if state.draining {
            return Err(format!("job `{}` refused: service is draining", spec.name));
        }
        let now = shared.clock.now_ms();
        job_id = state.queue.submit(
            spec.name.clone(),
            spec_fields.clone(),
            PathBuf::from(out),
            ids.clone(),
            keys.clone(),
            now,
        );
        // Settle the cache before anything is leasable: a hit replays
        // the exact canonical line a fresh run would produce, so it is
        // recorded as a result directly and never reaches a worker.
        let mut cached: Vec<(usize, ScenarioRecord)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let Some(line) = shared.cache.lookup(key) else { continue };
            match ScenarioRecord::from_json_line(&line) {
                Ok(rec) if rec.id == ids[i] => cached.push((i, rec)),
                // A corrupt or misfiled entry reads as a miss; the
                // fresh result will overwrite it on ingest.
                _ => eprintln!("serve: ignoring corrupt cache entry for {}", ids[i]),
            }
        }
        let mut feed = Feed { lines: VecDeque::new(), done: false };
        feed.lines.push_back(
            Message::JobAccepted { job: job_id, total, cached: cached.len() }.to_json_line(),
        );
        feed.lines.push_back(Event::JobStarted { job: spec.name.clone(), total }.to_json_line());
        let hits = cached.len();
        for (i, rec) in cached {
            let accepted = state.queue.record_result(job_id, i, rec.to_json_line());
            debug_assert!(accepted, "cache settlement races nothing");
            let job = state.queue.get_mut(job_id).expect("job just submitted");
            job.cached += 1;
            if rec.panicked {
                job.panicked += 1;
            }
            job.announced.insert(i);
            feed.lines.push_back(Event::ScenarioStarted { id: rec.id.clone() }.to_json_line());
            feed.lines.push_back(
                Event::ScenarioFinished {
                    id: rec.id.clone(),
                    status: record_status(&rec),
                    rounds: rec.rounds,
                    secs: 0.0,
                    robot_rounds_per_s: 0.0,
                }
                .to_json_line(),
            );
        }
        if hits > 0 {
            feed.lines
                .push_back(Event::Heartbeat { done: hits, total, eta_secs: 0.0 }.to_json_line());
        }
        state.feeds.insert(job_id, feed);
        if !shared.quiet {
            eprintln!(
                "serve: job {job_id} `{}` accepted: {total} scenario(s), {hits} cached -> {out}",
                spec.name,
            );
        }
        if state.queue.get(job_id).is_some_and(gather_serve::Job::is_complete) {
            finalize_job(shared, &mut state, job_id);
        }
        shared.wake.notify_all();
    }
    // Drain the feed until job_done. A submitter that hangs up early
    // only loses its progress mirror — the job itself keeps running.
    let result = (|| -> Result<(), String> {
        loop {
            let (lines, done) = {
                let mut state = shared.lock();
                loop {
                    let Some(feed) = state.feeds.get(&job_id) else {
                        return Ok(()); // unreachable: only this thread removes it
                    };
                    if !feed.lines.is_empty() || feed.done {
                        break;
                    }
                    state = shared.wake.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                let feed = state.feeds.get_mut(&job_id).expect("checked above");
                let lines: Vec<String> = feed.lines.drain(..).collect();
                (lines, feed.done)
            };
            for line in &lines {
                conn.send_line(line).map_err(|e| format!("streaming to submitter: {e}"))?;
            }
            if done {
                return Ok(());
            }
        }
    })();
    let mut state = shared.lock();
    state.feeds.remove(&job_id);
    result
}

/// Serve one worker connection: answer `lease_request`s with grants,
/// ingest `result_batch`es, until the peer hangs up.
fn worker_session(
    shared: &Shared,
    conn: &mut Conn,
    worker: &str,
    first_capacity: usize,
) -> Result<(), String> {
    let mut pending_request = Some(first_capacity);
    loop {
        if let Some(capacity) = pending_request.take() {
            let reply = grant_lease(shared, worker, capacity);
            conn.send_line(&reply.to_json_line())
                .map_err(|e| format!("sending grant to {worker}: {e}"))?;
        }
        let Some(line) = conn.recv_line().map_err(|e| format!("reading from {worker}: {e}"))?
        else {
            return Ok(()); // worker hung up (or was killed)
        };
        match Message::from_json_line(&line)? {
            Message::LeaseRequest { capacity, .. } => pending_request = Some(capacity),
            Message::ResultBatch { job, lease, index, record, secs } => {
                ingest_result(shared, job, lease, index, &record, secs);
            }
            other => return Err(format!("unexpected {} from worker {worker}", other.kind())),
        }
    }
}

/// Expire overdue leases, then grant the oldest pending work (or an
/// empty / drained marker).
fn grant_lease(shared: &Shared, worker: &str, capacity: usize) -> Message {
    let empty = |drained: bool| Message::LeaseGranted {
        job: 0,
        lease: 0,
        indexes: Vec::new(),
        expires_in_ms: 0,
        drained,
        spec: BTreeMap::new(),
    };
    let mut state = shared.lock();
    let now = shared.clock.now_ms();
    // Expiry is lazy: it runs on every lease request, which is exactly
    // when a re-issued range could actually go somewhere.
    for lease in state.leases.expire(now) {
        state.queue.requeue(lease.job, &lease.indexes);
        if !shared.quiet {
            eprintln!(
                "serve: lease {} ({}, {} scenario(s)) expired — re-queued",
                lease.id,
                lease.worker,
                lease.indexes.len(),
            );
        }
    }
    if state.draining {
        return empty(true);
    }
    let Some((job_id, indexes)) = state.queue.grant(capacity) else {
        return empty(false);
    };
    let lease = state.leases.issue(job_id, worker, indexes.clone(), now, shared.lease_ttl_ms);
    let job = state.queue.get_mut(job_id).expect("granted from a live job");
    let spec = job.spec.clone();
    // Announce each scenario the first time it is handed out. A
    // re-issued index was already announced — the stream contract is
    // at most one `scenario_started` per scenario.
    let mut started = Vec::new();
    for &i in &indexes {
        if job.announced.insert(i) {
            started.push(Event::ScenarioStarted { id: job.scenario_ids[i].clone() }.to_json_line());
        }
    }
    for line in started {
        push_feed(&mut state, job_id, line);
    }
    shared.wake.notify_all();
    Message::LeaseGranted {
        job: job_id,
        lease,
        indexes,
        expires_in_ms: shared.lease_ttl_ms,
        drained: false,
        spec,
    }
}

/// Fold one worker result into its job. Stale leases are fine (the
/// record is deterministic, first write wins); malformed or mismatched
/// records are dropped with a note rather than poisoning the job.
fn ingest_result(shared: &Shared, job_id: u64, lease: u64, index: usize, record: &str, secs: f64) {
    let mut state = shared.lock();
    let _ = state.leases.complete(lease, index);
    let Some(job) = state.queue.get(job_id) else {
        return; // job already finalized (result from a re-issued twin)
    };
    if index >= job.total() {
        eprintln!("serve: dropping result with out-of-range index {index} for job {job_id}");
        return;
    }
    let rec = match ScenarioRecord::from_json_line(record) {
        Ok(rec) => rec,
        Err(e) => {
            eprintln!("serve: dropping unparseable record for job {job_id}[{index}]: {e}");
            return;
        }
    };
    if rec.id != job.scenario_ids[index] {
        eprintln!(
            "serve: dropping record for job {job_id}[{index}]: id {} does not match {}",
            rec.id, job.scenario_ids[index],
        );
        return;
    }
    // Store and emit the *canonical* serialization, not the wire bytes:
    // output and cache stay byte-stable against any client-side field
    // ordering drift.
    let canonical = rec.to_json_line();
    if !state.queue.record_result(job_id, index, canonical.clone()) {
        return; // duplicate (lease re-issue overlap) — first write won
    }
    let job = state.queue.get_mut(job_id).expect("checked above");
    job.executed += 1;
    if rec.panicked {
        job.panicked += 1;
    }
    let key = job.cache_keys[index].clone();
    let done = job.results.len();
    let total = job.total();
    let submitted_ms = job.submitted_ms;
    let robot_rounds_per_s =
        if secs > 0.0 { (rec.n as u64 * rec.rounds) as f64 / secs } else { 0.0 };
    push_feed(
        &mut state,
        job_id,
        Event::ScenarioFinished {
            id: rec.id.clone(),
            status: record_status(&rec),
            rounds: rec.rounds,
            secs,
            robot_rounds_per_s,
        }
        .to_json_line(),
    );
    let now = shared.clock.now_ms();
    let elapsed = now.saturating_sub(submitted_ms) as f64 / 1000.0;
    let eta_secs = if done > 0 { elapsed * (total - done) as f64 / done as f64 } else { 0.0 };
    push_feed(&mut state, job_id, Event::Heartbeat { done, total, eta_secs }.to_json_line());
    if let Err(e) = shared.cache.store(&key, &canonical) {
        // A write-through failure costs a future cache hit, nothing else.
        eprintln!("serve: cache store for {} failed: {e}", rec.id);
    }
    if state.queue.get(job_id).is_some_and(gather_serve::Job::is_complete) {
        finalize_job(shared, &mut state, job_id);
    }
    shared.wake.notify_all();
}

/// Prove coverage, write the merged output and its complete manifest,
/// and close out the job's feed. A finalization failure is reported on
/// stderr and the feed is closed *without* `job_done`, so the
/// submitter's validation fails loudly instead of trusting a bad file.
fn finalize_job(shared: &Shared, state: &mut ServerState, job_id: u64) {
    let job = state.queue.remove(job_id).expect("finalizing a live job");
    let total = job.total();
    let result = (|| -> Result<(), String> {
        // The PR 5 coverage proof, applied to the fold: exactly the
        // expansion's IDs, each exactly once (XOR of ID digests).
        let expected = coverage_xor(job.scenario_ids.iter().map(String::as_str));
        let got = coverage_xor(job.results.keys().map(|i| job.scenario_ids[*i].as_str()));
        if job.results.len() != total || got != expected {
            return Err("coverage digest mismatch in folded results".into());
        }
        // ID-sorted lines, exactly what `campaign merge` emits.
        let mut sorted: Vec<(&str, &str)> = job
            .results
            .iter()
            .map(|(i, line)| (job.scenario_ids[*i].as_str(), line.as_str()))
            .collect();
        sorted.sort();
        let file = File::create(&job.out).map_err(|e| format!("creating output: {e}"))?;
        let mut out = BufWriter::new(file);
        for (_, line) in sorted {
            out.write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .map_err(|e| format!("writing output: {e}"))?;
        }
        out.flush().map_err(|e| format!("flushing output: {e}"))?;
        let spec = spec_from_fields(&job.spec)?;
        let manifest = ShardManifest {
            complete: true,
            ..ShardManifest::for_shard(&spec, ShardSpec::FULL, ShardStrategy::Hash)
        };
        write_manifest(&job.out, &manifest).map_err(|e| format!("writing manifest: {e}"))?;
        Ok(())
    })();
    let now = shared.clock.now_ms();
    let secs = now.saturating_sub(job.submitted_ms) as f64 / 1000.0;
    match result {
        Ok(()) => {
            push_feed(
                state,
                job_id,
                Event::JobFinished { done: total, panicked: job.panicked, secs }.to_json_line(),
            );
            push_feed(
                state,
                job_id,
                Message::JobDone {
                    job: job_id,
                    total,
                    cached: job.cached,
                    executed: job.executed,
                    panicked: job.panicked,
                    secs,
                }
                .to_json_line(),
            );
            if !shared.quiet {
                eprintln!(
                    "serve: job {job_id} done: {total} scenario(s) ({} cached, {} executed, {} \
                     panicked) in {secs:.1}s -> {}",
                    job.cached,
                    job.executed,
                    job.panicked,
                    job.out.display(),
                );
            }
        }
        Err(e) => eprintln!("serve: finalizing job {job_id} -> {}: {e}", job.out.display()),
    }
    if let Some(feed) = state.feeds.get_mut(&job_id) {
        feed.done = true;
    }
    state.finalized += 1;
    if shared.max_jobs.is_some_and(|max| state.finalized >= max) {
        state.draining = true;
    }
}

// ---------------------------------------------------------------------------
// Worker client
// ---------------------------------------------------------------------------

/// What one worker process did before the service drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkReport {
    /// Non-empty leases executed.
    pub leases: usize,
    /// Scenario results streamed back (panics included).
    pub executed: usize,
    pub panicked: usize,
}

/// Run scenarios for a service until it drains or goes away.
pub fn work(args: &WorkArgs) -> Result<WorkReport, String> {
    let mut conn = connect_retry(&args.socket)?;
    // One expansion per job id, shared by every lease of that job.
    let mut expansions: BTreeMap<u64, Vec<Scenario>> = BTreeMap::new();
    let mut report = WorkReport::default();
    loop {
        let request = Message::LeaseRequest { worker: args.name.clone(), capacity: args.lease };
        if conn.send_line(&request.to_json_line()).is_err() {
            return Ok(report); // service gone — a worker exits cleanly
        }
        let line = match conn.recv_line() {
            Ok(Some(line)) => line,
            _ => return Ok(report),
        };
        let msg = Message::from_json_line(&line)?;
        let Message::LeaseGranted { job, lease, indexes, drained, spec, .. } = msg else {
            return Err(format!("expected lease_granted, got {}", msg.kind()));
        };
        if drained {
            return Ok(report);
        }
        if indexes.is_empty() {
            thread::sleep(Duration::from_millis(args.poll_ms));
            continue;
        }
        let scenarios = match expansions.get(&job) {
            Some(scenarios) => scenarios,
            None => {
                let expanded = spec_from_fields(&spec)?.expand();
                expansions.entry(job).or_insert(expanded)
            }
        };
        let jobs: Vec<(usize, Scenario)> =
            indexes.iter().filter(|&&i| i < scenarios.len()).map(|&i| (i, scenarios[i])).collect();
        report.leases += 1;
        let mut stream_err = false;
        execute_jobs_observed(
            &jobs,
            args.threads,
            |(_, sc)| sc.run(),
            |(_, sc), _| ScenarioRecord::for_panic(sc),
            |event| {
                let JobEvent::Finished(slot, rec, secs) = event else {
                    return ControlFlow::Continue(());
                };
                let index = jobs[slot].0;
                report.executed += 1;
                if rec.panicked {
                    report.panicked += 1;
                }
                let batch =
                    Message::ResultBatch { job, lease, index, record: rec.to_json_line(), secs };
                if conn.send_line(&batch.to_json_line()).is_err() {
                    stream_err = true;
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            },
        );
        if stream_err {
            return Ok(report); // service gone mid-lease
        }
    }
}

// ---------------------------------------------------------------------------
// Submit client
// ---------------------------------------------------------------------------

/// The server's final accounting for one accepted job.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SubmitReport {
    pub job: u64,
    pub total: usize,
    pub cached: usize,
    pub executed: usize,
    pub panicked: usize,
    pub secs: f64,
}

/// Submit a spec to a running service, stream its progress, and
/// validate the whole conversation against the protocol contract.
pub fn submit(args: &SubmitArgs) -> Result<SubmitReport, String> {
    // The server writes the output from its own working directory —
    // hand it an absolute path so `-o results.jsonl` lands here.
    let out = if args.out.is_absolute() {
        args.out.clone()
    } else {
        std::env::current_dir().map_err(|e| format!("resolving output path: {e}"))?.join(&args.out)
    };
    let mut conn = connect_retry(&args.socket)?;
    let hello = Message::SubmitJob {
        name: args.spec.name.clone(),
        out: out.to_string_lossy().into_owned(),
        spec: spec_to_fields(&args.spec),
    };
    conn.send_line(&hello.to_json_line()).map_err(|e| format!("submitting: {e}"))?;
    let mut mirror = match &args.events {
        Some(path) => {
            Some(File::create(path).map_err(|e| format!("opening {}: {e}", path.display()))?)
        }
        None => None,
    };
    let mut frames: Vec<Frame> = Vec::new();
    let mut total = 0usize;
    let mut done = 0usize;
    loop {
        let Some(line) = conn.recv_line().map_err(|e| format!("reading from service: {e}"))? else {
            return Err("service closed the connection before job_done (submission refused or \
                 finalization failed — see the service's stderr)"
                .into());
        };
        let frame = Frame::from_json_line(&line)?;
        match &frame {
            Frame::Event(event) => {
                // The mirror file carries the service's bytes verbatim,
                // flushed per line — the same torn-line discipline as a
                // local `--events` stream.
                if let Some(file) = &mut mirror {
                    file.write_all(line.as_bytes())
                        .and_then(|()| file.write_all(b"\n"))
                        .and_then(|()| file.flush())
                        .map_err(|e| format!("mirroring events: {e}"))?;
                }
                if let Event::ScenarioFinished { id, status, rounds, .. } = event {
                    done += 1;
                    if !args.quiet {
                        eprintln!(
                            "[{done}/{total}] {id} {} rounds={rounds}",
                            status.as_str().to_uppercase(),
                        );
                    }
                }
            }
            Frame::Message(Message::JobAccepted { job, total: t, cached }) => {
                total = *t;
                if !args.quiet {
                    eprintln!(
                        "submitted as job {job}: {t} scenario(s), {cached} from cache -> {}",
                        out.display(),
                    );
                }
            }
            Frame::Message(Message::JobDone { .. }) => {
                frames.push(frame);
                break;
            }
            Frame::Message(other) => {
                return Err(format!("unexpected {} from service", other.kind()));
            }
        }
        frames.push(frame);
    }
    let summary = gather_obs::validate_submission(&frames)?;
    println!(
        "job {} done: total={} cached={} executed={} panicked={} secs={:.1} out={}",
        summary.job,
        summary.total,
        summary.cached,
        summary.executed,
        summary.panicked,
        summary.secs,
        out.display(),
    );
    Ok(SubmitReport {
        job: summary.job,
        total: summary.total,
        cached: summary.cached,
        executed: summary.executed,
        panicked: summary.panicked,
        secs: summary.secs,
    })
}

/// Connect to the service socket, retrying briefly so `serve` and its
/// clients can be launched in the same breath.
fn connect_retry(socket: &Path) -> Result<Conn, String> {
    let mut waited = 0u64;
    loop {
        match Conn::connect(socket) {
            Ok(conn) => return Ok(conn),
            Err(e) if waited < CONNECT_WINDOW_MS => {
                let _ = e;
                thread::sleep(Duration::from_millis(100));
                waited += 100;
            }
            Err(e) => return Err(format!("connecting to {}: {e}", socket.display())),
        }
    }
}
