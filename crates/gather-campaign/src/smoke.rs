//! Large-n determinism smoke: record one bounded-round trace of the
//! engine at two thread counts, replay it through digest-verified
//! playback, and diff the two recordings — the CI guard that the
//! sharded parallel round-apply stays bit-identical on every push.
//!
//! `campaign record`/`replay` re-execute whole scenarios to completion,
//! which at 10⁵+ robots means ~n rounds of work; the smoke instead
//! drives the engine directly for a fixed number of rounds, so a
//! 100 000-robot determinism check fits in a CI minute. Playback
//! re-derives the evolution from the recorded moves through
//! `Swarm::apply_partial` and verifies every round's population and
//! position digest, so a clean replay certifies the engine's apply —
//! not just that the file round-trips.

use std::cell::RefCell;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::time::Instant;

use gather_bench::SchedulerKind;
use gather_core::GatherController;
use gather_trace::{Playback, TraceHeader, TraceReader, TraceWriter};
use gather_workloads::Family;
use grid_engine::{ConnectivityCheck, Engine, EngineConfig, OrientationMode, RoundRecord};

use crate::trace_ops::{diff_trace_files, TraceSink};
use crate::DiffStatus;

#[derive(Clone, Debug, PartialEq)]
pub struct SmokeArgs {
    /// Target swarm size (the point of the smoke is n >= 10^5).
    pub n: usize,
    /// FSYNC rounds to record (bounded — the swarm need not gather).
    pub rounds: u64,
    pub family: Family,
    pub seed: u64,
    /// The two engine thread counts whose recordings must be
    /// byte-identical.
    pub threads_a: usize,
    pub threads_b: usize,
    /// Activation policy for the recorded rounds. Partial schedulers
    /// (`rr4`, `ssync-p50`, ...) drive the engine's sparse round path,
    /// while playback re-derives every round through the dense
    /// `Swarm::apply_partial` — so a non-FSYNC smoke cross-checks the
    /// sparse apply against the dense one on every run.
    pub scheduler: SchedulerKind,
    /// Where the two `.gtrc` files land.
    pub dir: PathBuf,
}

impl Default for SmokeArgs {
    fn default() -> Self {
        SmokeArgs {
            n: 100_000,
            rounds: 12,
            family: Family::Clusters,
            seed: 1,
            threads_a: 1,
            threads_b: 8,
            scheduler: SchedulerKind::Fsync,
            dir: PathBuf::from("smoke-traces"),
        }
    }
}

#[derive(Clone, Debug)]
pub struct SmokeReport {
    pub robots: usize,
    pub rounds: u64,
    pub occupied_tiles: usize,
    pub bounding_cells: u128,
    pub robot_rounds_per_s: f64,
}

/// Record `rounds` FSYNC rounds of the paper controller on `points`
/// into a trace file, returning the wall-clock robot-rounds/s. Uses
/// [`TraceSink`] — the same latching observer sink `campaign record`
/// streams through.
fn record_bounded(
    points: &[grid_engine::Point],
    header: &TraceHeader,
    threads: usize,
    rounds: u64,
    seed: u64,
    scheduler: SchedulerKind,
    path: &Path,
) -> Result<f64, String> {
    let file = File::create(path).map_err(|e| format!("creating {}: {e}", path.display()))?;
    let writer = TraceWriter::new(BufWriter::new(file), header)
        .map_err(|e| format!("writing header: {e}"))?;
    let sink = Rc::new(RefCell::new(TraceSink { writer: Some(writer), error: None }));
    let observer = {
        let sink = sink.clone();
        Box::new(move |rec: &RoundRecord| sink.borrow_mut().push(rec))
    };
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        GatherController::paper(),
        EngineConfig {
            threads,
            connectivity: ConnectivityCheck::Never,
            scheduler: scheduler.to_policy(seed, points.len()),
            ..Default::default()
        },
    );
    engine.set_observer(observer);
    // audit: allow(wall-clock) smoke throughput display only — the
    // pass/fail verdict is clock-independent
    let start = Instant::now();
    let mut robot_rounds = 0u64;
    for _ in 0..rounds {
        robot_rounds += engine.swarm.len() as u64;
        engine.step().map_err(|e| format!("engine round failed: {e}"))?;
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(engine); // releases the observer's sink clone
    let mut sink = Rc::try_unwrap(sink).ok().expect("engine dropped its observer").into_inner();
    if let Some(e) = sink.error.take() {
        return Err(format!("writing rounds: {e}"));
    }
    sink.writer
        .take()
        .expect("writer live unless an error latched")
        .finish()
        .map_err(|e| e.to_string())?;
    Ok(robot_rounds as f64 / elapsed.max(f64::EPSILON))
}

/// Run the smoke: record at both thread counts, replay recording A
/// through digest-verified playback, and require the two files to be
/// identical both structurally and byte for byte.
pub fn run_smoke(args: &SmokeArgs) -> Result<SmokeReport, String> {
    let points = gather_workloads::family(args.family, args.n, args.seed);
    fs::create_dir_all(&args.dir).map_err(|e| format!("creating {}: {e}", args.dir.display()))?;
    let header = TraceHeader {
        scenario_id: format!(
            "smoke:{}/n{}/s{}/r{}/{}",
            args.family.name(),
            points.len(),
            args.seed,
            args.rounds,
            args.scheduler.name(),
        ),
        seed: args.seed,
        config_digest: gather_trace::digest_bytes(
            format!(
                "smoke|{}|{}|{}|{}|{}",
                args.family.name(),
                points.len(),
                args.seed,
                args.rounds,
                args.scheduler.name(),
            )
            .as_bytes(),
        ),
        initial: points.clone(),
    };
    let sched = args.scheduler;
    let path_a = args.dir.join(format!("smoke-{sched}-t{}.gtrc", args.threads_a));
    let path_b = args.dir.join(format!("smoke-{sched}-t{}.gtrc", args.threads_b));
    let tput_a =
        record_bounded(&points, &header, args.threads_a, args.rounds, args.seed, sched, &path_a)?;
    let tput_b =
        record_bounded(&points, &header, args.threads_b, args.rounds, args.seed, sched, &path_b)?;
    eprintln!(
        "recorded {} rounds x {} robots: {:.3e} robot-rounds/s ({} threads), {:.3e} ({} threads)",
        args.rounds,
        points.len(),
        tput_a,
        args.threads_a,
        tput_b,
        args.threads_b,
    );

    // Replay: re-derive the evolution from recording A's moves alone
    // and verify every round's population and digest.
    let file = File::open(&path_a).map_err(|e| format!("opening {}: {e}", path_a.display()))?;
    let mut reader = TraceReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
    let mut playback = Playback::new(&reader.header().initial);
    let mut replayed = 0u64;
    loop {
        match reader.next_round() {
            Err(e) => return Err(format!("reading trace: {e}")),
            Ok(None) => break,
            Ok(Some(rec)) => {
                playback.apply(&rec).map_err(|e| format!("replay diverged: {e}"))?;
                replayed += 1;
            }
        }
    }
    if replayed != args.rounds {
        return Err(format!("trace holds {replayed} rounds, expected {}", args.rounds));
    }

    // Diff: the two recordings must agree structurally...
    match diff_trace_files(&path_a, &path_b) {
        DiffStatus::Identical { rounds } if rounds == args.rounds => {}
        other => {
            return Err(format!(
                "thread counts {} and {} produced drifting traces: {other:?}",
                args.threads_a, args.threads_b
            ))
        }
    }
    // ...and byte for byte (the strongest form of "independent of the
    // thread count").
    let bytes_a = fs::read(&path_a).map_err(|e| e.to_string())?;
    let bytes_b = fs::read(&path_b).map_err(|e| e.to_string())?;
    if bytes_a != bytes_b {
        return Err(format!(
            "traces are structurally equal but not byte-identical ({} vs {} bytes)",
            bytes_a.len(),
            bytes_b.len()
        ));
    }

    let final_swarm = playback.swarm();
    let bounds = final_swarm.bounds();
    Ok(SmokeReport {
        robots: points.len(),
        rounds: replayed,
        occupied_tiles: final_swarm.index().tile_count(),
        bounding_cells: bounds.width() as u128 * bounds.height() as u128,
        robot_rounds_per_s: tput_a.max(tput_b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end at a size that engages the sharded apply (n above the
    /// parallel threshold) but stays debug-build fast.
    #[test]
    fn smoke_passes_on_a_sharded_size() {
        let dir = std::env::temp_dir().join(format!("gather-smoke-{}", std::process::id()));
        let args = SmokeArgs {
            n: 1500,
            rounds: 3,
            family: Family::Clusters,
            seed: 3,
            threads_a: 1,
            threads_b: 2,
            scheduler: SchedulerKind::Fsync,
            dir: dir.clone(),
        };
        let report = run_smoke(&args).expect("smoke must pass");
        assert_eq!(report.rounds, 3);
        assert_eq!(report.robots, 1500);
        assert!(report.occupied_tiles >= 2, "clusters should span tiles");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Partial schedulers record through the sparse apply while playback
    /// replays densely: a passing smoke is an end-to-end sparse≡dense
    /// cross-check, per scheduler, with byte-identical traces across
    /// thread counts.
    #[test]
    fn smoke_passes_under_partial_schedulers() {
        let dir = std::env::temp_dir().join(format!("gather-smoke-sched-{}", std::process::id()));
        for scheduler in [
            SchedulerKind::RoundRobin { k: 4 },
            SchedulerKind::Ssync { p: 50 },
            SchedulerKind::Crash { f: 10 },
            SchedulerKind::Async { s: 3 },
        ] {
            let args = SmokeArgs {
                n: 1500,
                rounds: 4,
                family: Family::Clusters,
                seed: 7,
                threads_a: 1,
                threads_b: 4,
                scheduler,
                dir: dir.clone(),
            };
            let report =
                run_smoke(&args).unwrap_or_else(|e| panic!("{scheduler} smoke failed: {e}"));
            assert_eq!(report.rounds, 4, "{scheduler}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
