//! Streaming JSONL result sink and the resume checkpoint built on it.
//!
//! The result file *is* the checkpoint: one self-contained JSON object
//! per line, flushed as soon as the scenario finishes. Killing a
//! campaign loses at most the line being written; on resume, every line
//! that parses is treated as completed and a truncated trailing line is
//! discarded.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::record::ScenarioRecord;
use crate::shard::ShardManifest;

/// Append-only, line-buffered writer of scenario records.
pub struct JsonlSink {
    out: BufWriter<File>,
    written: usize,
}

impl JsonlSink {
    /// Start a fresh result file (truncates any existing one).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink { out: BufWriter::new(File::create(path)?), written: 0 })
    }

    /// Open an existing result file for appending (creates if absent).
    ///
    /// A file left by a killed writer can end mid-line; that torn line
    /// is terminated first so it cannot swallow the next record.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let torn_tail = match File::open(&path) {
            Ok(mut f) => {
                let len = f.seek(SeekFrom::End(0))?;
                if len == 0 {
                    false
                } else {
                    f.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    f.read_exact(&mut last)?;
                    last[0] != b'\n'
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut out = BufWriter::new(file);
        if torn_tail {
            out.write_all(b"\n")?;
            out.flush()?;
        }
        Ok(JsonlSink { out, written: 0 })
    }

    /// Write one record and flush it to the OS, so the line survives a
    /// subsequent kill of this process.
    pub fn write(&mut self, record: &ScenarioRecord) -> io::Result<()> {
        self.out.write_all(record.to_json_line().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.written += 1;
        Ok(())
    }

    /// Records written through this sink (excludes pre-existing lines).
    pub fn written(&self) -> usize {
        self.written
    }
}

/// Read every well-formed record from a result file. Malformed lines —
/// including a trailing line truncated by a killed writer — are counted,
/// not fatal. A missing file reads as empty.
pub fn load_records(path: impl AsRef<Path>) -> io::Result<(Vec<ScenarioRecord>, usize)> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match ScenarioRecord::from_json_line(&line) {
            Ok(rec) => records.push(rec),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// The resume checkpoint: IDs of scenarios already completed in `path`.
pub fn load_completed(path: impl AsRef<Path>) -> io::Result<HashSet<String>> {
    let (records, _skipped) = load_records(path)?;
    Ok(records.into_iter().map(|r| r.id).collect())
}

/// Where the shard manifest for the result file `out` lives: the suffix
/// is appended to the full file name (`c.jsonl` → `c.jsonl.manifest.json`)
/// so the pairing survives any result-file naming scheme.
pub fn manifest_path(out: &Path) -> PathBuf {
    let mut name = out.as_os_str().to_os_string();
    name.push(".manifest.json");
    PathBuf::from(name)
}

/// Write (or overwrite) the manifest next to `out`. Called once with
/// `complete: false` when a shard run starts and again with
/// `complete: true` after its last record is flushed, so a manifest
/// claiming completion always describes a fully-written result file.
pub fn write_manifest(out: &Path, manifest: &ShardManifest) -> io::Result<()> {
    let mut text = manifest.to_json();
    text.push('\n');
    std::fs::write(manifest_path(out), text)
}

/// Read the manifest next to `out`; `Ok(None)` when there is none
/// (result files predating the shard subsystem have no sidecar).
pub fn read_manifest(out: &Path) -> Result<Option<ShardManifest>, String> {
    let path = manifest_path(out);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    ShardManifest::from_json(&text).map(Some).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;
    use gather_bench::{ControllerKind, Measurement};
    use gather_workloads::Family;

    fn rec(n: usize) -> ScenarioRecord {
        let sc = Scenario {
            family: Family::Line,
            n,
            seed: 1,
            controller: ControllerKind::Paper,
            scheduler: gather_bench::SchedulerKind::Fsync,
        };
        let m = Measurement {
            n,
            rounds: n as u64,
            merges: n - 1,
            gathered: true,
            connected: true,
            activations: (n * n) as u64,
        };
        ScenarioRecord::from_measurement(&sc, &m)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gather-campaign-sink-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmp("roundtrip");
        let mut sink = JsonlSink::create(&path).unwrap();
        for n in [8, 16, 24] {
            sink.write(&rec(n)).unwrap();
        }
        assert_eq!(sink.written(), 3);
        drop(sink);
        let (records, skipped) = load_records(&path).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records, vec![rec(8), rec(16), rec(24)]);
        let done = load_completed(&path).unwrap();
        assert!(done.contains("line/n16/s1/paper"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_trailing_line_is_skipped() {
        let path = tmp("truncated");
        let mut content = String::new();
        content.push_str(&rec(8).to_json_line());
        content.push('\n');
        let partial = rec(16).to_json_line();
        content.push_str(&partial[..partial.len() / 2]); // killed mid-write
        std::fs::write(&path, content).unwrap();
        let (records, skipped) = load_records(&path).unwrap();
        assert_eq!(records, vec![rec(8)]);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_extends_existing_file() {
        let path = tmp("append");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.write(&rec(8)).unwrap();
        drop(sink);
        let mut sink = JsonlSink::append(&path).unwrap();
        sink.write(&rec(16)).unwrap();
        assert_eq!(sink.written(), 1);
        drop(sink);
        assert_eq!(load_completed(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing-never-created");
        assert!(load_completed(&path).unwrap().is_empty());
        assert_eq!(load_records(&path).unwrap().0.len(), 0);
    }

    #[test]
    fn manifest_round_trips_next_to_the_result_file() {
        use crate::shard::{ShardSpec, ShardStrategy};
        use crate::spec::CampaignSpec;

        let out = tmp("manifest.jsonl");
        assert_eq!(
            manifest_path(&out).file_name().unwrap().to_string_lossy(),
            format!("{}.manifest.json", out.file_name().unwrap().to_string_lossy()),
        );
        assert_eq!(read_manifest(&out).unwrap(), None, "absent sidecar reads as None");

        let spec = CampaignSpec::standard();
        let mut m =
            ShardManifest::for_shard(&spec, ShardSpec { index: 1, count: 4 }, ShardStrategy::Hash);
        write_manifest(&out, &m).unwrap();
        assert_eq!(read_manifest(&out).unwrap(), Some(m.clone()));
        // The completion flip overwrites in place.
        m.complete = true;
        write_manifest(&out, &m).unwrap();
        assert_eq!(read_manifest(&out).unwrap(), Some(m));

        std::fs::write(manifest_path(&out), "not json").unwrap();
        assert!(read_manifest(&out).is_err(), "corrupt manifest must be loud");
        std::fs::remove_file(manifest_path(&out)).unwrap();
    }
}
