//! Fold a campaign result set into the summary tables the analysis
//! crate renders: per-controller scaling tables with one row per
//! family, plus a reliability table for runs that stalled, panicked, or
//! broke connectivity.

use std::collections::BTreeMap;

use gather_analysis::{linear_fit, loglog_slope, Table};

use crate::record::ScenarioRecord;

/// Per-family scaling tables (one per controller, controllers and
/// families alphabetical) followed by a reliability table when any run
/// failed.
pub fn summarize(records: &[ScenarioRecord]) -> Vec<Table> {
    // controller -> family -> n -> rounds of gathered runs.
    type Series = BTreeMap<usize, Vec<u64>>;
    let mut groups: BTreeMap<&str, BTreeMap<&str, Series>> = BTreeMap::new();
    let mut failures: BTreeMap<(&str, &str), (usize, usize, usize, usize)> = BTreeMap::new();

    for r in records {
        let cell = failures.entry((r.controller.as_str(), r.family.as_str())).or_default();
        cell.0 += 1;
        if r.panicked {
            cell.3 += 1;
            continue;
        }
        if !r.connected {
            cell.2 += 1;
        }
        if !r.gathered {
            cell.1 += 1;
            continue;
        }
        groups
            .entry(r.controller.as_str())
            .or_default()
            .entry(r.family.as_str())
            .or_default()
            .entry(r.n)
            .or_default()
            .push(r.rounds);
    }

    let mut tables = Vec::new();
    for (controller, families) in &groups {
        let mut t = Table::new(
            format!("Campaign scaling — controller `{controller}` (gathered runs)"),
            &["family", "series (n -> mean rounds)", "rounds/n slope", "log-log exp", "runs"],
        );
        for (family, by_n) in families {
            let mut pts: Vec<(f64, f64)> = Vec::new();
            let mut series = String::new();
            let mut runs = 0usize;
            for (&n, rounds) in by_n {
                runs += rounds.len();
                let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
                pts.push((n as f64, mean));
                series.push_str(&format!("{n}→{mean:.0} "));
            }
            let (slope, exp) = if pts.len() >= 2 {
                (
                    format!("{:.3}", linear_fit(&pts).coefficient),
                    format!("{:.2}", loglog_slope(&pts)),
                )
            } else {
                ("n/a".into(), "n/a".into())
            };
            t.push(vec![
                family.to_string(),
                series.trim().to_string(),
                slope,
                exp,
                runs.to_string(),
            ]);
        }
        tables.push(t);
    }

    if failures.values().any(|&(_, stalled, disc, panicked)| stalled + disc + panicked > 0) {
        let mut t = Table::new(
            "Campaign reliability — non-gathering outcomes",
            &["controller", "family", "runs", "stalled", "disconnected", "panicked"],
        );
        for (&(controller, family), &(total, stalled, disconnected, panicked)) in &failures {
            if stalled + disconnected + panicked == 0 {
                continue;
            }
            t.push(vec![
                controller.to_string(),
                family.to_string(),
                total.to_string(),
                stalled.to_string(),
                disconnected.to_string(),
                panicked.to_string(),
            ]);
        }
        tables.push(t);
    }

    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;
    use gather_bench::{ControllerKind, Measurement};
    use gather_workloads::Family;

    fn rec(family: Family, n: usize, seed: u64, rounds: u64, gathered: bool) -> ScenarioRecord {
        let sc = Scenario { family, n, seed, controller: ControllerKind::Paper };
        let m = Measurement { n, rounds, merges: n / 2, gathered, connected: true };
        ScenarioRecord::from_measurement(&sc, &m)
    }

    #[test]
    fn linear_series_summarised_with_unit_exponent() {
        let mut records = Vec::new();
        for n in [32usize, 64, 128, 256] {
            for seed in 0..3u64 {
                records.push(rec(Family::Line, n, seed, (2 * n) as u64 + seed, true));
            }
        }
        let tables = summarize(&records);
        assert_eq!(tables.len(), 1, "no reliability table for all-gathered");
        let row = &tables[0].rows[0];
        assert_eq!(row[0], "line");
        let slope: f64 = row[2].parse().unwrap();
        assert!((slope - 2.0).abs() < 0.05, "slope {slope}");
        let exp: f64 = row[3].parse().unwrap();
        assert!((exp - 1.0).abs() < 0.05, "exponent {exp}");
        assert_eq!(row[4], "12");
    }

    #[test]
    fn failures_fold_into_reliability_table() {
        let records = vec![
            rec(Family::Line, 32, 0, 64, true),
            rec(Family::Line, 64, 0, 99999, false),
            ScenarioRecord::for_panic(&Scenario {
                family: Family::Square,
                n: 16,
                seed: 1,
                controller: ControllerKind::Center,
            }),
        ];
        let tables = summarize(&records);
        let reliability = tables.last().unwrap();
        assert!(reliability.title.contains("reliability"));
        assert_eq!(reliability.rows.len(), 2);
        assert_eq!(reliability.rows[0], vec!["center", "square", "1", "0", "0", "1"]);
        assert_eq!(reliability.rows[1], vec!["paper", "line", "2", "1", "0", "0"]);
    }

    #[test]
    fn single_size_series_has_no_fit() {
        let records = vec![rec(Family::Line, 32, 0, 64, true)];
        let tables = summarize(&records);
        assert_eq!(tables[0].rows[0][2], "n/a");
    }
}
