//! Fold a campaign result set into the summary tables the analysis
//! crate renders: per-(controller, scheduler) scaling tables with one
//! row per family, plus a reliability table for runs that stalled,
//! panicked, or broke connectivity.
//!
//! [`summarize`] is input-agnostic: a merged shard set (the output of
//! `campaign merge`, see [`crate::merge`]) summarizes exactly like the
//! equivalent unsharded run, because records are pure functions of
//! their scenario and the tables never depend on record order. Merges
//! additionally render their per-shard provenance via
//! [`provenance_table`].

use std::collections::BTreeMap;

use gather_analysis::{linear_fit, loglog_slope, Table};
use grid_engine::{Phase, PHASE_COUNT};

use crate::merge::MergeReport;
use crate::record::ScenarioRecord;

/// Every run lands in exactly one outcome class, so the reliability
/// columns are disjoint and `gathered + stalled + disconnected +
/// panicked == runs` always holds (an earlier version counted a run
/// that was both unconnected and ungathered twice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    Gathered,
    Stalled,
    Disconnected,
    Panicked,
}

fn classify(r: &ScenarioRecord) -> Outcome {
    if r.panicked {
        Outcome::Panicked
    } else if r.gathered {
        Outcome::Gathered
    } else if !r.connected {
        Outcome::Disconnected
    } else {
        Outcome::Stalled
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct FailureCell {
    runs: usize,
    gathered: usize,
    stalled: usize,
    disconnected: usize,
    panicked: usize,
}

impl FailureCell {
    fn add(&mut self, outcome: Outcome) {
        self.runs += 1;
        match outcome {
            Outcome::Gathered => self.gathered += 1,
            Outcome::Stalled => self.stalled += 1,
            Outcome::Disconnected => self.disconnected += 1,
            Outcome::Panicked => self.panicked += 1,
        }
    }

    fn failures(&self) -> usize {
        self.stalled + self.disconnected + self.panicked
    }
}

/// Per-family scaling tables (one per (controller, scheduler) pair, in
/// alphabetical order) followed by a reliability table when any run
/// failed. The `mean act/round` column is the scheduler-honest work
/// rate: ≈ n under FSYNC, ≈ p·n/100 under SSYNC, ≤ k under round-robin.
pub fn summarize(records: &[ScenarioRecord]) -> Vec<Table> {
    // (controller, scheduler) -> family -> n -> (rounds, activations)
    // of gathered runs.
    type Series = BTreeMap<usize, Vec<(u64, u64)>>;
    let mut groups: BTreeMap<(&str, &str), BTreeMap<&str, Series>> = BTreeMap::new();
    let mut failures: BTreeMap<(&str, &str, &str), FailureCell> = BTreeMap::new();

    for r in records {
        let outcome = classify(r);
        failures
            .entry((r.controller.as_str(), r.scheduler.as_str(), r.family.as_str()))
            .or_default()
            .add(outcome);
        if outcome != Outcome::Gathered {
            continue;
        }
        groups
            .entry((r.controller.as_str(), r.scheduler.as_str()))
            .or_default()
            .entry(r.family.as_str())
            .or_default()
            .entry(r.n)
            .or_default()
            .push((r.rounds, r.activations));
    }

    let mut tables = Vec::new();
    for (&(controller, scheduler), families) in &groups {
        let mut t = Table::new(
            format!(
                "Campaign scaling — controller `{controller}`, scheduler `{scheduler}` \
                 (gathered runs)"
            ),
            &[
                "family",
                "series (n -> mean rounds)",
                "rounds/n slope",
                "log-log exp",
                "mean act/round",
                "runs",
            ],
        );
        for (family, by_n) in families {
            let mut pts: Vec<(f64, f64)> = Vec::new();
            let mut series = String::new();
            let mut runs = 0usize;
            let mut total_rounds = 0u64;
            let mut total_acts = 0u64;
            for (&n, outcomes) in by_n {
                runs += outcomes.len();
                let mean =
                    outcomes.iter().map(|&(r, _)| r).sum::<u64>() as f64 / outcomes.len() as f64;
                // Records written before the scheduler axis existed
                // carry activations = 0; folding them into the work
                // rate would silently drag it below the true value, so
                // the rate is computed over measured records only.
                for &(r, a) in outcomes.iter().filter(|&&(_, a)| a > 0) {
                    total_rounds += r;
                    total_acts += a;
                }
                pts.push((n as f64, mean));
                series.push_str(&format!("{n}→{mean:.0} "));
            }
            let (slope, exp) = if pts.len() >= 2 {
                (
                    format!("{:.3}", linear_fit(&pts).coefficient),
                    format!("{:.2}", loglog_slope(&pts)),
                )
            } else {
                ("n/a".into(), "n/a".into())
            };
            let act_rate = if total_rounds > 0 {
                format!("{:.1}", total_acts as f64 / total_rounds as f64)
            } else {
                "n/a".into()
            };
            t.push(vec![
                family.to_string(),
                series.trim().to_string(),
                slope,
                exp,
                act_rate,
                runs.to_string(),
            ]);
        }
        tables.push(t);
    }

    if failures.values().any(|cell| cell.failures() > 0) {
        let mut t = Table::new(
            "Campaign reliability — non-gathering outcomes (columns are disjoint)",
            &[
                "controller",
                "scheduler",
                "family",
                "runs",
                "gathered",
                "stalled",
                "disconnected",
                "panicked",
            ],
        );
        for (&(controller, scheduler, family), cell) in &failures {
            if cell.failures() == 0 {
                continue;
            }
            debug_assert_eq!(
                cell.gathered + cell.failures(),
                cell.runs,
                "outcome classes must partition the runs"
            );
            t.push(vec![
                controller.to_string(),
                scheduler.to_string(),
                family.to_string(),
                cell.runs.to_string(),
                cell.gathered.to_string(),
                cell.stalled.to_string(),
                cell.disconnected.to_string(),
                cell.panicked.to_string(),
            ]);
        }
        tables.push(t);
    }

    tables
}

/// Engine phase-share table from records written by `campaign run
/// --perf`: one row per (family, n, scheduler), columns are each
/// phase's share of engine wall time plus attribution coverage and
/// scenario throughput. `Err` when no record carries a perf block —
/// summarizing a plain result file with `--perf` is a pipeline mistake
/// that should be loud, not an empty table.
pub fn summarize_perf(records: &[ScenarioRecord]) -> Result<Vec<Table>, String> {
    struct PerfCell {
        runs: usize,
        wall_s: f64,
        secs: f64,
        robot_rounds: f64,
        phase_s: [f64; PHASE_COUNT],
        shard_gap_s: f64,
        allocs: Option<u64>,
    }

    // (family, n, scheduler) -> accumulated phase times.
    let mut groups: BTreeMap<(&str, usize, &str), PerfCell> = BTreeMap::new();
    for r in records {
        let Some(perf) = &r.perf else { continue };
        let cell =
            groups.entry((r.family.as_str(), r.n, r.scheduler.as_str())).or_insert(PerfCell {
                runs: 0,
                wall_s: 0.0,
                secs: 0.0,
                robot_rounds: 0.0,
                phase_s: [0.0; PHASE_COUNT],
                shard_gap_s: 0.0,
                allocs: None,
            });
        cell.runs += 1;
        cell.wall_s += perf.wall_s;
        cell.secs += r.secs;
        cell.robot_rounds += r.n as f64 * r.rounds as f64;
        for (sum, s) in cell.phase_s.iter_mut().zip(&perf.phase_s) {
            *sum += s;
        }
        cell.shard_gap_s += perf.shard_gap_s;
        if let Some(a) = perf.allocs {
            cell.allocs = Some(cell.allocs.unwrap_or(0) + a);
        }
    }
    if groups.is_empty() {
        return Err("no perf data in the result file (records carry phase profiles only when the \
             campaign ran with --perf)"
            .into());
    }

    let mut headers: Vec<&str> = vec!["family", "n", "scheduler", "runs", "wall s"];
    headers.extend(Phase::ALL.iter().map(|p| p.name()));
    headers.extend(["shard gap", "coverage", "robot·rounds/s"]);
    let counted_allocs = groups.values().any(|c| c.allocs.is_some());
    if counted_allocs {
        headers.push("allocs");
    }
    let mut t = Table::new(
        "Engine phase shares — fraction of engine wall time per phase (run --perf)",
        &headers,
    );
    for (&(family, n, scheduler), cell) in &groups {
        let share = |s: f64| {
            if cell.wall_s > 0.0 {
                format!("{:.1}%", s / cell.wall_s * 100.0)
            } else {
                "n/a".into()
            }
        };
        let mut row = vec![
            family.to_string(),
            n.to_string(),
            scheduler.to_string(),
            cell.runs.to_string(),
            format!("{:.3}", cell.wall_s),
        ];
        row.extend(Phase::ALL.iter().map(|&p| share(cell.phase_s[p as usize])));
        row.push(share(cell.shard_gap_s));
        row.push(share(cell.phase_s.iter().sum()));
        row.push(if cell.secs > 0.0 {
            format!("{:.0}", cell.robot_rounds / cell.secs)
        } else {
            "n/a".into()
        });
        if counted_allocs {
            row.push(cell.allocs.map_or_else(|| "n/a".into(), |a| a.to_string()));
        }
        t.push(row);
    }
    Ok(vec![t])
}

/// Per-shard provenance of a verified merge: what each shard file
/// contributed, how many resumed duplicates were dropped, and how many
/// torn lines were skipped — the audit trail `campaign merge` prints
/// next to its coverage confirmation.
pub fn provenance_table(report: &MergeReport) -> Table {
    let mut t = Table::new(
        format!(
            "Merge provenance — campaign `{}`, {} shard(s), {} scenario(s), coverage verified",
            report.name, report.shard_count, report.total,
        ),
        &["shard", "file", "records", "duplicates dropped", "torn lines skipped"],
    );
    for shard in &report.shards {
        t.push(vec![
            format!("{}/{}", shard.shard_index, report.shard_count),
            shard.path.display().to_string(),
            shard.records.to_string(),
            shard.duplicates.to_string(),
            shard.skipped_lines.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;
    use gather_bench::{ControllerKind, Measurement, SchedulerKind};
    use gather_workloads::Family;

    fn rec_sched(
        family: Family,
        n: usize,
        seed: u64,
        rounds: u64,
        gathered: bool,
        connected: bool,
        scheduler: SchedulerKind,
    ) -> ScenarioRecord {
        let sc = Scenario { family, n, seed, controller: ControllerKind::Paper, scheduler };
        let m = Measurement {
            n,
            rounds,
            merges: n / 2,
            gathered,
            connected,
            activations: rounds * n as u64,
        };
        ScenarioRecord::from_measurement(&sc, &m)
    }

    fn rec(family: Family, n: usize, seed: u64, rounds: u64, gathered: bool) -> ScenarioRecord {
        rec_sched(family, n, seed, rounds, gathered, true, SchedulerKind::Fsync)
    }

    /// Parse one table cell, naming the table, row, and column (header
    /// included) on failure instead of unwinding through a bare
    /// `unwrap` chain with no context.
    fn cell<T: std::str::FromStr>(table: &Table, row: usize, col: usize) -> T
    where
        T::Err: std::fmt::Debug,
    {
        let at = |what: &str| -> String {
            let header = table.headers.get(col).map(String::as_str).unwrap_or("?");
            format!("table {:?}, row {row}, column {col} ({header}): {what}", table.title)
        };
        let cells = table.rows.get(row).unwrap_or_else(|| panic!("{}", at("row out of range")));
        let text = cells.get(col).unwrap_or_else(|| panic!("{}", at("column out of range")));
        text.parse().unwrap_or_else(|e| panic!("{}", at(&format!("{text:?} did not parse: {e:?}"))))
    }

    #[test]
    fn linear_series_summarised_with_unit_exponent() {
        let mut records = Vec::new();
        for n in [32usize, 64, 128, 256] {
            for seed in 0..3u64 {
                records.push(rec(Family::Line, n, seed, (2 * n) as u64 + seed, true));
            }
        }
        let tables = summarize(&records);
        assert_eq!(tables.len(), 1, "no reliability table for all-gathered");
        assert_eq!(tables[0].rows[0][0], "line");
        let slope: f64 = cell(&tables[0], 0, 2);
        assert!((slope - 2.0).abs() < 0.05, "slope {slope}");
        let exp: f64 = cell(&tables[0], 0, 3);
        assert!((exp - 1.0).abs() < 0.05, "exponent {exp}");
        let act_rate: f64 = cell(&tables[0], 0, 4);
        assert!(act_rate > 32.0, "FSYNC activation rate tracks n, got {act_rate}");
        assert_eq!(cell::<usize>(&tables[0], 0, 5), 12);
    }

    #[test]
    fn schedulers_get_their_own_tables() {
        let records = vec![
            rec(Family::Line, 32, 0, 64, true),
            rec(Family::Line, 64, 0, 128, true),
            rec_sched(Family::Line, 32, 0, 130, true, true, SchedulerKind::Ssync { p: 50 }),
            rec_sched(Family::Line, 64, 0, 260, true, true, SchedulerKind::Ssync { p: 50 }),
        ];
        let tables = summarize(&records);
        assert_eq!(tables.len(), 2, "one scaling table per (controller, scheduler)");
        assert!(tables[0].title.contains("`fsync`"));
        assert!(tables[1].title.contains("`ssync-p50`"));
    }

    #[test]
    fn failures_fold_into_reliability_table() {
        let records = vec![
            rec(Family::Line, 32, 0, 64, true),
            rec(Family::Line, 64, 0, 99999, false),
            ScenarioRecord::for_panic(&Scenario {
                family: Family::Square,
                n: 16,
                seed: 1,
                controller: ControllerKind::Center,
                scheduler: SchedulerKind::Fsync,
            }),
        ];
        let tables = summarize(&records);
        let reliability = tables.last().unwrap();
        assert!(reliability.title.contains("reliability"));
        assert_eq!(reliability.rows.len(), 2);
        assert_eq!(reliability.rows[0], vec!["center", "fsync", "square", "1", "0", "0", "0", "1"]);
        assert_eq!(reliability.rows[1], vec!["paper", "fsync", "line", "2", "1", "1", "0", "0"]);
    }

    #[test]
    fn outcome_columns_are_disjoint_and_sum_to_runs() {
        // A run that is both unconnected and ungathered used to be
        // counted in two columns at once; it must land in exactly one.
        let records = vec![
            rec_sched(Family::Line, 32, 0, 64, true, true, SchedulerKind::Fsync),
            // disconnected AND not gathered -> `disconnected` only.
            rec_sched(Family::Line, 32, 1, 500, false, false, SchedulerKind::Fsync),
            // not gathered but still connected -> `stalled` only.
            rec_sched(Family::Line, 32, 2, 500, false, true, SchedulerKind::Fsync),
            // gathered (diagonal pair can read as unconnected) -> success.
            rec_sched(Family::Line, 32, 3, 64, true, false, SchedulerKind::Fsync),
        ];
        let tables = summarize(&records);
        let reliability = tables.last().unwrap();
        assert_eq!(reliability.rows.len(), 1);
        let [runs, gathered, stalled, disconnected, panicked] =
            [3, 4, 5, 6, 7].map(|col| cell::<usize>(reliability, 0, col));
        assert_eq!((runs, gathered, stalled, disconnected, panicked), (4, 2, 1, 1, 0));
        assert_eq!(
            gathered + stalled + disconnected + panicked,
            runs,
            "outcome columns must partition the runs"
        );
    }

    #[test]
    fn legacy_records_without_activations_do_not_skew_the_work_rate() {
        // Pre-scheduler JSONL lines parse with activations = 0; the
        // mean act/round column must be computed from measured records
        // only, not diluted toward zero.
        let mut legacy = rec(Family::Line, 32, 0, 64, true);
        legacy.activations = 0;
        let measured_a = rec(Family::Line, 32, 1, 64, true); // 64·32 activations
        let measured_b = rec(Family::Line, 64, 0, 128, true); // 128·64 activations
        let tables = summarize(&[legacy.clone(), measured_a, measured_b]);
        let act_rate: f64 = cell(&tables[0], 0, 4);
        let expected = (64.0 * 32.0 + 128.0 * 64.0) / (64.0 + 128.0);
        assert!(
            (act_rate - expected).abs() < 0.05,
            "act/round {act_rate} diluted by the legacy record (expected {expected:.1})"
        );
        // An all-legacy series has no measured work at all.
        let tables = summarize(&[legacy]);
        assert_eq!(tables[0].rows[0][4], "n/a");
    }

    #[test]
    fn single_size_series_has_no_fit() {
        let records = vec![rec(Family::Line, 32, 0, 64, true)];
        let tables = summarize(&records);
        assert_eq!(tables[0].rows[0][2], "n/a");
    }

    #[test]
    fn perf_summary_renders_phase_shares() {
        use crate::record::PerfSummary;

        let mut with_perf = rec(Family::Line, 32, 0, 64, true);
        with_perf.secs = 2.0;
        let mut perf = PerfSummary {
            wall_s: 1.0,
            rounds: 64,
            phase_s: [0.0; PHASE_COUNT],
            shard_gap_s: 0.05,
            allocs: None,
        };
        perf.phase_s[Phase::Compute as usize] = 0.6;
        perf.phase_s[Phase::MergeDetect as usize] = 0.3;
        with_perf.perf = Some(perf);
        let plain = rec(Family::Line, 64, 0, 128, true);

        let tables = summarize_perf(&[with_perf, plain]).unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 1, "records without perf are skipped");
        assert_eq!(&t.rows[0][..3], ["line", "32", "fsync"]);
        let compute_col = t.headers.iter().position(|h| h == "compute").unwrap();
        assert_eq!(t.rows[0][compute_col], "60.0%");
        let coverage_col = t.headers.iter().position(|h| h == "coverage").unwrap();
        assert_eq!(t.rows[0][coverage_col], "90.0%");
        let tput_col = t.headers.iter().position(|h| h == "robot·rounds/s").unwrap();
        assert_eq!(t.rows[0][tput_col], "1024", "32 robots · 64 rounds / 2 s");
        assert!(!t.headers.iter().any(|h| h == "allocs"), "no alloc column without counts");
    }

    #[test]
    fn perf_summary_without_perf_data_is_an_error() {
        let err = summarize_perf(&[rec(Family::Line, 32, 0, 64, true)]).unwrap_err();
        assert!(err.contains("--perf"), "{err}");
        let err = summarize_perf(&[]).unwrap_err();
        assert!(err.contains("no perf data"), "{err}");
    }

    #[test]
    fn provenance_table_lists_shards_in_index_order() {
        use crate::merge::{MergeReport, ShardContribution};
        use std::path::PathBuf;

        let report = MergeReport {
            name: "weak-sync".into(),
            shard_count: 2,
            total: 10,
            duplicates: 1,
            shards: vec![
                ShardContribution {
                    path: PathBuf::from("a.shard0of2.jsonl"),
                    shard_index: 0,
                    records: 6,
                    duplicates: 1,
                    skipped_lines: 0,
                },
                ShardContribution {
                    path: PathBuf::from("a.shard1of2.jsonl"),
                    shard_index: 1,
                    records: 4,
                    duplicates: 0,
                    skipped_lines: 1,
                },
            ],
        };
        let t = provenance_table(&report);
        assert!(t.title.contains("weak-sync") && t.title.contains("coverage verified"));
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0], vec!["0/2", "a.shard0of2.jsonl", "6", "1", "0"]);
        assert_eq!(t.rows[1], vec!["1/2", "a.shard1of2.jsonl", "4", "0", "1"]);
    }
}
