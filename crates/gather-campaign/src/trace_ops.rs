//! Campaign-level trace operations: record scenarios to trace files,
//! replay a trace against a live re-execution, and diff trace sets.
//!
//! One trace file per scenario (`<id with '/' → '__'>.gtrc`) keeps the
//! writers contention-free under the work-stealing executor and makes a
//! trace set a plain directory that can be copied, archived next to a
//! result JSONL, or diffed against a set recorded by a different build.

use std::cell::RefCell;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use gather_bench::{ControllerKind, RunSpec};
use gather_trace::{
    divergence_between, RoundDivergence, TraceError, TraceHeader, TraceReader, TraceWriter,
};
use grid_engine::{Point, RoundRecord};

use crate::record::ScenarioRecord;
use crate::spec::Scenario;

/// File name a scenario's trace is stored under: the scenario ID with
/// path separators flattened (`line/n16/s1/paper` → `line__n16__s1__paper.gtrc`).
pub fn trace_file_name(id: &str) -> String {
    format!("{}.gtrc", id.replace('/', "__"))
}

/// `.gtrc` files directly inside `dir`, sorted by file name so replay
/// and diff reports are stable.
pub fn list_trace_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|e| e == "gtrc") && path.is_file()).then_some(path)
        })
        .collect();
    out.sort();
    Ok(out)
}

/// Where a trace directory's shard manifest lives: *inside* the
/// directory (unlike the result file's `.manifest.json` sibling), so
/// copying or archiving the directory keeps the coverage proof with the
/// traces it describes. The name has no `.gtrc` extension, so
/// [`list_trace_files`] and [`clean_trace_dir`] never confuse it for a
/// trace.
pub fn trace_manifest_path(dir: &Path) -> PathBuf {
    dir.join("shard.manifest.json")
}

/// Write (or overwrite) the trace-set manifest for `dir`. Same protocol
/// as the result-file sidecar: once with `complete: false` when the
/// recording starts, again with `complete: true` after the last trace
/// is renamed into place.
pub fn write_trace_manifest(dir: &Path, manifest: &crate::shard::ShardManifest) -> io::Result<()> {
    let mut text = manifest.to_json();
    text.push('\n');
    fs::write(trace_manifest_path(dir), text)
}

/// Read the trace-set manifest of `dir`; `Ok(None)` when there is none
/// (trace sets recorded before the sharded-trace subsystem).
pub fn read_trace_manifest(dir: &Path) -> Result<Option<crate::shard::ShardManifest>, String> {
    let path = trace_manifest_path(dir);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    crate::shard::ShardManifest::from_json(&text)
        .map(Some)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Outcome of one recorded campaign job.
#[derive(Clone, Debug)]
pub struct TraceJobOutcome {
    /// The ordinary scenario record (written to the JSONL sink exactly
    /// as a plain `run` would).
    pub record: ScenarioRecord,
    /// Where the trace landed; `None` for the greedy baseline, which
    /// has no engine rounds to record.
    pub trace_path: Option<PathBuf>,
    /// A trace-file failure, if any. When set, `record` may be a
    /// placeholder rather than a real measurement (an uncreatable
    /// trace file fails fast *before* the scenario runs — executing a
    /// whole round budget for a campaign the caller is about to abort
    /// helps nobody), so callers must not persist `record` when
    /// `error` is set. The CLI aborts the recording instead.
    pub error: Option<String>,
}

impl TraceJobOutcome {
    /// Outcome for a job whose controller panicked (no trace survives).
    pub fn for_panic(sc: &Scenario) -> Self {
        TraceJobOutcome { record: ScenarioRecord::for_panic(sc), trace_path: None, error: None }
    }
}

/// Streaming trace sink shared with the engine's observer closure.
/// The first write error latches: the writer is dropped and the error
/// surfaces after the run (observers cannot return errors mid-round).
/// Also used by the [`crate::smoke`] recorder — one copy of this
/// subtle protocol, not two.
pub(crate) struct TraceSink {
    pub(crate) writer: Option<TraceWriter<BufWriter<File>>>,
    pub(crate) error: Option<io::Error>,
}

impl TraceSink {
    pub(crate) fn push(&mut self, rec: &RoundRecord) {
        if let Some(writer) = self.writer.as_mut() {
            if let Err(e) = writer.write_round(rec) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }
}

/// Run one scenario with tracing on, streaming rounds into
/// `dir/<trace_file_name(id)>`. The measurement is identical to an
/// untraced [`Scenario::run`] — observation never perturbs the run.
pub fn record_scenario(sc: &Scenario, dir: &Path) -> TraceJobOutcome {
    record_scenario_profiled(sc, dir, false)
}

/// [`record_scenario`] with the engine phase profiler optionally
/// attached (`campaign record --perf`): the scenario record gains
/// `secs` and a perf block, while the trace bytes stay identical to an
/// unprofiled recording — the profiler only reads clocks, so the
/// observer sees the same round stream either way.
pub fn record_scenario_profiled(sc: &Scenario, dir: &Path, perf: bool) -> TraceJobOutcome {
    if sc.controller == ControllerKind::Greedy {
        // The sequential strawman drives itself; there is no engine
        // round stream to record.
        let record = if perf { sc.run_profiled() } else { sc.run() };
        return TraceJobOutcome { record, trace_path: None, error: None };
    }
    let points = sc.points();
    let budget = sc.budget(points.len());
    let header = TraceHeader {
        scenario_id: sc.id(),
        seed: sc.seed,
        config_digest: sc.config_digest_with(points.len()),
        initial: points.clone(),
    };
    let path = dir.join(trace_file_name(&header.scenario_id));
    // Stream into a `.tmp` name and rename only after a clean finish:
    // a panicking controller unwinds straight past this function, and
    // the torn file it abandons must not read as a (corrupt) trace by
    // `replay`/`diff`, which match on the `.gtrc` extension.
    let tmp = path.with_extension("gtrc.tmp");
    let writer = match File::create(&tmp).and_then(|f| TraceWriter::new(BufWriter::new(f), &header))
    {
        Ok(w) => w,
        Err(e) => {
            // Fail fast: see [`TraceJobOutcome::error`].
            let _ = fs::remove_file(&tmp);
            return TraceJobOutcome {
                record: ScenarioRecord::for_panic(sc),
                trace_path: None,
                error: Some(e.to_string()),
            };
        }
    };
    let sink = Rc::new(RefCell::new(TraceSink { writer: Some(writer), error: None }));
    let observer = {
        let sink = sink.clone();
        Box::new(move |rec: &RoundRecord| sink.borrow_mut().push(rec))
    };
    let totals: Rc<RefCell<grid_engine::ProfileTotals>> = Rc::default();
    let profiler = perf.then(|| {
        let totals = totals.clone();
        Box::new(move |profile: &grid_engine::RoundProfile| totals.borrow_mut().add(profile))
            as grid_engine::BoxedProfileSink
    });
    // audit: allow(wall-clock) record-side wall-time is reported
    // alongside the trace; the trace bytes themselves are clock-free
    let start = std::time::Instant::now();
    let mut spec = RunSpec::new(sc.controller, &points)
        .scheduler(sc.scheduler)
        .seed(sc.seed)
        .budget(budget)
        .observer(observer);
    if let Some(profiler) = profiler {
        spec = spec.profiler(profiler);
    }
    let m = spec.run();
    let secs = start.elapsed().as_secs_f64();
    let mut sink =
        Rc::try_unwrap(sink).ok().expect("engine dropped its observer clone").into_inner();
    let error = sink
        .error
        .take()
        .or_else(|| sink.writer.take().and_then(|w| w.finish().err()))
        .or_else(|| fs::rename(&tmp, &path).err());
    if error.is_some() {
        let _ = fs::remove_file(&tmp);
    }
    let mut record = ScenarioRecord::from_measurement(sc, &m);
    if perf {
        record.secs = secs;
        let totals = totals.borrow();
        if totals.rounds > 0 {
            record.perf = Some(crate::record::PerfSummary::from_totals(&totals));
        }
    }
    TraceJobOutcome {
        record,
        trace_path: error.is_none().then_some(path),
        error: error.map(|e| e.to_string()),
    }
}

/// How a replayed trace compared against its live re-execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayStatus {
    /// Every round was bit-identical.
    Match { rounds: u64 },
    /// First divergence between the recording and the re-execution.
    Diverged(RoundDivergence),
    /// The trace could not be checked at all (unreadable, version
    /// mismatch, unparseable scenario ID, config-digest drift).
    Error(String),
}

/// Result of replaying one trace file.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    pub path: PathBuf,
    /// Scenario ID from the header (empty when the header is unreadable).
    pub id: String,
    pub status: ReplayStatus,
}

struct ReplayState {
    reader: TraceReader<BufReader<File>>,
    divergence: Option<RoundDivergence>,
    error: Option<String>,
    rounds: u64,
}

impl ReplayState {
    fn compare(&mut self, live: &RoundRecord) {
        if self.divergence.is_some() || self.error.is_some() {
            return;
        }
        self.rounds += 1;
        match self.reader.next_round() {
            Err(e) => self.error = Some(e.to_string()),
            Ok(None) => {
                self.divergence = Some(RoundDivergence {
                    round: live.round,
                    robot: None,
                    detail: "live re-execution ran more rounds than the trace".into(),
                });
            }
            Ok(Some(recorded)) => self.divergence = divergence_between(&recorded, live),
        }
    }
}

/// Re-execute the scenario a trace was recorded from and verify every
/// round is bit-identical, streaming (the recorded rounds are never
/// held in memory at once).
pub fn replay_trace(path: &Path) -> ReplayReport {
    let report = |id: &str, status: ReplayStatus| ReplayReport {
        path: path.to_path_buf(),
        id: id.to_string(),
        status,
    };
    let reader = match File::open(path)
        .map_err(TraceError::Io)
        .and_then(|f| TraceReader::new(BufReader::new(f)))
    {
        Ok(r) => r,
        Err(e) => return report("", ReplayStatus::Error(e.to_string())),
    };
    let id = reader.header().scenario_id.clone();
    let Some(sc) = Scenario::parse_id(&id) else {
        return report(&id, ReplayStatus::Error(format!("unparseable scenario ID {id:?}")));
    };
    if reader.header().seed != sc.seed {
        return report(&id, ReplayStatus::Error("header seed contradicts the scenario ID".into()));
    }
    let points = sc.points();
    if reader.header().config_digest != sc.config_digest_with(points.len()) {
        return report(
            &id,
            ReplayStatus::Error(
                "config digest mismatch: the scenario definition (generator, budget or ID \
                 scheme) changed since this trace was recorded"
                    .into(),
            ),
        );
    }
    if let Some(robot) = first_position_difference(&reader.header().initial, &points) {
        return report(
            &id,
            ReplayStatus::Diverged(RoundDivergence {
                round: 0,
                robot: Some(robot),
                detail: "initial positions differ from the scenario generator".into(),
            }),
        );
    }
    let budget = sc.budget(points.len());
    let state =
        Rc::new(RefCell::new(ReplayState { reader, divergence: None, error: None, rounds: 0 }));
    let observer = {
        let state = state.clone();
        Box::new(move |rec: &RoundRecord| state.borrow_mut().compare(rec))
    };
    RunSpec::new(sc.controller, &points)
        .scheduler(sc.scheduler)
        .seed(sc.seed)
        .budget(budget)
        .observer(observer)
        .run();
    let mut state =
        Rc::try_unwrap(state).ok().expect("engine dropped its observer clone").into_inner();
    if let Some(e) = state.error {
        return report(&id, ReplayStatus::Error(e));
    }
    if let Some(d) = state.divergence {
        return report(&id, ReplayStatus::Diverged(d));
    }
    // The live run is done; any recorded rounds left over are drift too.
    match state.reader.next_round() {
        Err(e) => report(&id, ReplayStatus::Error(e.to_string())),
        Ok(Some(extra)) => report(
            &id,
            ReplayStatus::Diverged(RoundDivergence {
                round: extra.round,
                robot: None,
                detail: "trace has more rounds than the live re-execution".into(),
            }),
        ),
        Ok(None) => report(&id, ReplayStatus::Match { rounds: state.rounds }),
    }
}

fn first_position_difference(a: &[Point], b: &[Point]) -> Option<u32> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()) as u32);
    }
    a.iter().zip(b).position(|(x, y)| x != y).map(|i| i as u32)
}

/// Per-scenario outcome of diffing two trace sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Bit-identical headers and round streams.
    Identical { rounds: u64 },
    /// Same scenario, divergent evolution.
    Diverged(RoundDivergence),
    /// The headers already disagree (different seed/config/initials).
    HeaderMismatch(String),
    /// Present only in the first set.
    OnlyInFirst,
    /// Present only in the second set.
    OnlyInSecond,
    /// One of the files could not be read.
    Error(String),
}

/// One entry of a trace-set diff.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Trace file name the entry refers to.
    pub name: String,
    pub status: DiffStatus,
}

/// Stream-compare two trace files round by round.
pub fn diff_trace_files(a: &Path, b: &Path) -> DiffStatus {
    let open = |p: &Path| {
        File::open(p).map_err(TraceError::Io).and_then(|f| TraceReader::new(BufReader::new(f)))
    };
    let (mut ra, mut rb) = match (open(a), open(b)) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(e), _) => return DiffStatus::Error(format!("{}: {e}", a.display())),
        (_, Err(e)) => return DiffStatus::Error(format!("{}: {e}", b.display())),
    };
    let (ha, hb) = (ra.header(), rb.header());
    if ha != hb {
        let what = if ha.scenario_id != hb.scenario_id {
            format!("scenario IDs differ ({:?} vs {:?})", ha.scenario_id, hb.scenario_id)
        } else if ha.seed != hb.seed {
            "seeds differ".into()
        } else if ha.config_digest != hb.config_digest {
            "config digests differ".into()
        } else {
            "initial positions differ".into()
        };
        return DiffStatus::HeaderMismatch(what);
    }
    let mut rounds = 0u64;
    loop {
        let next = (ra.next_round(), rb.next_round());
        match next {
            (Err(e), _) => return DiffStatus::Error(format!("{}: {e}", a.display())),
            (_, Err(e)) => return DiffStatus::Error(format!("{}: {e}", b.display())),
            (Ok(None), Ok(None)) => return DiffStatus::Identical { rounds },
            (Ok(Some(ea)), Ok(None)) => {
                return DiffStatus::Diverged(RoundDivergence {
                    round: ea.round,
                    robot: None,
                    detail: "second trace ends early".into(),
                })
            }
            (Ok(None), Ok(Some(eb))) => {
                return DiffStatus::Diverged(RoundDivergence {
                    round: eb.round,
                    robot: None,
                    detail: "first trace ends early".into(),
                })
            }
            (Ok(Some(ea)), Ok(Some(eb))) => {
                if let Some(d) = divergence_between(&ea, &eb) {
                    return DiffStatus::Diverged(d);
                }
                rounds += 1;
            }
        }
    }
}

/// Diff two trace directories, pairing files by name; entries are
/// sorted by file name.
pub fn diff_trace_dirs(a: &Path, b: &Path) -> io::Result<Vec<DiffReport>> {
    let names = |dir: &Path| -> io::Result<std::collections::BTreeSet<String>> {
        Ok(list_trace_files(dir)?
            .into_iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect())
    };
    let in_a = names(a)?;
    let in_b = names(b)?;
    Ok(in_a
        .union(&in_b)
        .map(|name| {
            let status = match (in_a.contains(name), in_b.contains(name)) {
                (true, true) => diff_trace_files(&a.join(name), &b.join(name)),
                (true, false) => DiffStatus::OnlyInFirst,
                (false, true) => DiffStatus::OnlyInSecond,
                (false, false) => unreachable!("name came from one of the sets"),
            };
            DiffReport { name: name.clone(), status }
        })
        .collect())
}

/// Remove every `.gtrc` trace and `.gtrc.tmp` leftover from `dir`.
/// `campaign record` starts from a clean directory, mirroring how it
/// truncates `--out`: without this, traces from an earlier recording
/// with different axes would survive next to a result file that no
/// longer mentions them, and `replay`/`diff` would treat the stale
/// files as part of the set. (`.gtrc.tmp` files are the torn leftovers
/// of a panicking controller — the executor's panic isolation unwinds
/// straight past [`record_scenario`]'s rename.) Returns how many files
/// were removed.
pub fn clean_trace_dir(dir: &Path) -> io::Result<usize> {
    let mut removed = 0usize;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_file() && (name.ends_with(".gtrc") || name.ends_with(".gtrc.tmp")) {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}
