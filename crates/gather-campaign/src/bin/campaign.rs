//! The campaign CLI: `run`, `resume`, and `summarize` subcommands over
//! the gather-campaign library. See `--help` for flags.

use std::ops::ControlFlow;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use gather_campaign::cli::{self, Command, RunArgs, USAGE};
use gather_campaign::{
    executor, load_completed, load_records, summarize, JsonlSink, Scenario, ScenarioRecord,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Run(run) => execute(run, false),
        Command::Resume(run) => execute(run, true),
        Command::Summarize { input } => summarize_file(&input),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn execute(args: RunArgs, resume: bool) -> Result<(), String> {
    let RunArgs { spec, threads, out } = args;
    let jobs = spec.expand();
    let completed = if resume {
        load_completed(&out).map_err(|e| format!("reading {}: {e}", out.display()))?
    } else {
        Default::default()
    };
    let pending: Vec<Scenario> =
        jobs.iter().copied().filter(|sc| !completed.contains(&sc.id())).collect();
    let skipped = jobs.len() - pending.len();

    let mut sink = if resume { JsonlSink::append(&out) } else { JsonlSink::create(&out) }
        .map_err(|e| format!("opening {}: {e}", out.display()))?;

    eprintln!(
        "campaign `{}`: {} scenarios ({} already done), {} threads -> {}",
        spec.name,
        jobs.len(),
        skipped,
        if threads == 0 { "all".to_string() } else { threads.to_string() },
        out.display(),
    );

    let start = Instant::now();
    let total = pending.len();
    let mut write_error: Option<String> = None;
    let mut done = 0usize;
    let mut panicked = 0usize;
    // A failed write aborts the whole campaign (ControlFlow::Break):
    // results that cannot be persisted are not worth computing, and the
    // file on disk is a valid checkpoint for `resume`.
    executor::execute_jobs(
        &pending,
        threads,
        Scenario::run,
        ScenarioRecord::for_panic,
        |_i, rec| {
            done += 1;
            if rec.panicked {
                panicked += 1;
            }
            if let Err(e) = sink.write(&rec) {
                write_error = Some(format!("writing {}: {e}", out.display()));
                return ControlFlow::Break(());
            }
            let status = if rec.panicked {
                "PANIC"
            } else if !rec.gathered && !rec.connected {
                "disc"
            } else if !rec.gathered {
                "stall"
            } else {
                "ok"
            };
            eprintln!("[{done}/{total}] {:<32} {status:>5}  rounds={}", rec.id, rec.rounds);
            ControlFlow::Continue(())
        },
    );
    if let Some(e) = write_error {
        return Err(format!("{e} (campaign aborted; completed scenarios are resumable)"));
    }
    eprintln!(
        "campaign `{}` complete: {} run, {} skipped, {} panicked in {:.1?}",
        spec.name,
        done,
        skipped,
        panicked,
        start.elapsed(),
    );
    Ok(())
}

fn summarize_file(input: &Path) -> Result<(), String> {
    let (records, skipped) =
        load_records(input).map_err(|e| format!("reading {}: {e}", input.display()))?;
    if records.is_empty() {
        return Err(format!("no records in {}", input.display()));
    }
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} malformed line(s)");
    }
    for table in summarize(&records) {
        println!("{}", gather_analysis::render_markdown(&table));
    }
    Ok(())
}
