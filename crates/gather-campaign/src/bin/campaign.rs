//! The campaign CLI: `run`, `resume`, `record`, `replay`, `diff`,
//! `render`, `smoke`, `summarize` and `events` subcommands over the
//! gather-campaign library. See `--help` for flags.

use std::fs::File;
use std::io::BufReader;
use std::ops::ControlFlow;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use gather_campaign::cli::{self, Command, RenderArgs, RunArgs, USAGE};
use gather_campaign::executor::JobEvent;
use gather_campaign::{
    executor, load_completed, load_records, merge_shards, plan_lines, provenance_table, run_smoke,
    summarize, summarize_perf, trace_ops, DiffStatus, JsonlSink, ProgressReporter, ReplayStatus,
    Scenario, ScenarioRecord, ShardManifest, SmokeArgs, TraceJobOutcome,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Run(run) => execute(run, false),
        Command::Resume(run) => execute(run, true),
        Command::Record { run, trace_dir } => execute_record(run, &trace_dir),
        Command::Merge { inputs, out, out_explicit } => merge_files(&inputs, &out, out_explicit),
        Command::Plan { run, shards } => plan(&run, shards),
        Command::Replay { trace_dir } => replay_dir(&trace_dir),
        Command::Diff { a, b } => diff_dirs(&a, &b),
        Command::Render(args) => render_trace(&args),
        Command::Smoke(args) => smoke(&args),
        Command::Summarize { input, perf } => summarize_file(&input, perf),
        Command::EventsTail { file, follow: false } => events_tail(&file),
        Command::EventsTail { file, follow: true } => events_follow(&file),
        Command::Serve(args) => gather_campaign::serve(&args),
        Command::Submit(args) => gather_campaign::submit(&args).map(|_| ()),
        Command::Work(args) => gather_campaign::work(&args).map(|report| {
            eprintln!(
                "worker done: {} lease(s), {} scenario(s) executed, {} panicked",
                report.leases, report.executed, report.panicked,
            );
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn execute(args: RunArgs, resume: bool) -> Result<(), String> {
    let RunArgs { spec, threads, out, shard, strategy, events, quiet, perf } = args;
    let jobs = spec.expand();
    let completed = if resume {
        load_completed(&out).map_err(|e| format!("reading {}: {e}", out.display()))?
    } else {
        Default::default()
    };
    let manifest = ShardManifest::for_shard(&spec, shard, strategy);
    // A resume must be continuing the *same* shard of the *same* spec:
    // appending another slice's records to this file would poison the
    // manifest proof that merge relies on.
    if resume {
        if let Some(prev) = gather_campaign::read_manifest(&out)? {
            if let Some(field) = prev.mismatch_against(&manifest) {
                return Err(format!(
                    "{} was written for a different campaign ({field} differs) — resume it with \
                     the spec and shard it was started with",
                    out.display(),
                ));
            }
            if prev.shard() != shard {
                return Err(format!(
                    "{} holds shard {} but this invocation asks for shard {shard}",
                    out.display(),
                    prev.shard(),
                ));
            }
        }
    }
    let pending = executor::select_pending(&jobs, shard, strategy, &completed);
    // The manifest already counted this shard's scenarios from the same
    // ownership predicate — no second pass over the expansion.
    let owned = manifest.shard_len;
    let skipped = owned - pending.len();

    let mut sink = if resume { JsonlSink::append(&out) } else { JsonlSink::create(&out) }
        .map_err(|e| format!("opening {}: {e}", out.display()))?;
    // Manifest first, completion marker off: a crash mid-run leaves a
    // sidecar that says so, and merge refuses the file.
    gather_campaign::write_manifest(&out, &manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", out.display()))?;

    eprintln!(
        "campaign `{}`{}: {} scenarios ({} already done), {} threads -> {}",
        spec.name,
        if shard.is_full() {
            String::new()
        } else {
            format!(" shard {shard} [{}]", strategy.name())
        },
        owned,
        skipped,
        if threads == 0 { "all".to_string() } else { threads.to_string() },
        out.display(),
    );

    let start = Instant::now();
    // The reporter owns both progress surfaces — stderr lines and the
    // optional `--events` NDJSON stream — so they can never disagree.
    // On resume the event file is appended as a new segment.
    let mut reporter =
        ProgressReporter::start(&spec.name, pending.len(), events.as_deref(), resume, quiet)
            .map_err(|e| format!("opening event stream: {e}"))?;
    let mut failure: Option<String> = None;
    // A failed result or event write aborts the whole campaign
    // (ControlFlow::Break): results that cannot be persisted are not
    // worth computing, and the file on disk is a valid checkpoint for
    // `resume`. The aborted event stream correctly reads as incomplete
    // (no `job_finished`).
    executor::execute_jobs_observed(
        &pending,
        threads,
        |sc: &Scenario| if perf { sc.run_profiled() } else { sc.run() },
        |sc, secs| {
            let mut rec = ScenarioRecord::for_panic(sc);
            if perf {
                rec.secs = secs;
            }
            rec
        },
        |event| match event {
            JobEvent::Started(i) => {
                if let Err(e) = reporter.scenario_started(&pending[i].id()) {
                    failure = Some(format!("writing event stream: {e}"));
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            }
            JobEvent::Finished(_i, rec, secs) => {
                if let Err(e) = sink.write(&rec) {
                    failure = Some(format!("writing {}: {e}", out.display()));
                    return ControlFlow::Break(());
                }
                if let Err(e) = reporter.scenario_finished(&rec, secs) {
                    failure = Some(format!("writing event stream: {e}"));
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            }
        },
    );
    if let Some(e) = failure {
        return Err(format!("{e} (campaign aborted; completed scenarios are resumable)"));
    }
    reporter.finish().map_err(|e| format!("writing event stream: {e}"))?;
    // Every owned scenario is on disk: flip the completion marker that
    // makes this shard mergeable.
    let manifest = ShardManifest { complete: true, ..manifest };
    gather_campaign::write_manifest(&out, &manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", out.display()))?;
    eprintln!(
        "campaign `{}`{} complete: {} run, {} skipped, {} panicked in {:.1?}",
        spec.name,
        if shard.is_full() { String::new() } else { format!(" shard {shard}") },
        reporter.done(),
        skipped,
        reporter.panicked(),
        start.elapsed(),
    );
    Ok(())
}

/// `merge`: verify N shard outputs cover their spec exactly once, then
/// emit one merged JSONL (resumed duplicates dropped, last record wins)
/// and print the per-shard provenance table. When the inputs are trace
/// directories, the same proof runs over the traced scenarios and the
/// `.gtrc` files are byte-copied into the output directory instead.
fn merge_files(
    inputs: &[std::path::PathBuf],
    out: &Path,
    out_explicit: bool,
) -> Result<(), String> {
    let dirs = inputs.iter().filter(|p| p.is_dir()).count();
    if dirs > 0 && dirs < inputs.len() {
        return Err(
            "merge inputs mix result files and trace directories — merge them separately".into()
        );
    }
    if dirs == inputs.len() {
        if !out_explicit {
            return Err(
                "merging trace directories needs an explicit --out DIR for the merged trace set"
                    .into(),
            );
        }
        let report = gather_campaign::merge_trace_dirs(inputs, out)?;
        println!("{}", gather_analysis::render_markdown(&provenance_table(&report)));
        eprintln!(
            "merge ok: {} trace(s) from {} shard(s) -> {}/",
            report.total,
            report.shards.len(),
            out.display(),
        );
        return Ok(());
    }
    let report = merge_shards(inputs, out)?;
    println!("{}", gather_analysis::render_markdown(&provenance_table(&report)));
    eprintln!(
        "merge ok: {} scenarios from {} shard(s) -> {} ({} resumed duplicate(s) dropped)",
        report.total,
        report.shards.len(),
        out.display(),
        report.duplicates,
    );
    Ok(())
}

/// `plan`: print the per-shard command lines (and the final merge) that
/// execute the spec as `shards` slices.
fn plan(run: &RunArgs, shards: u32) -> Result<(), String> {
    eprintln!(
        "campaign `{}`: {} scenarios as {shards} shard(s) [{}]",
        run.spec.name,
        run.spec.len(),
        run.strategy.name(),
    );
    for line in plan_lines(&run.spec, shards, run.strategy, &run.out, run.threads) {
        println!("{line}");
    }
    Ok(())
}

/// `record`: run the sweep with per-round tracing on. Results stream to
/// the JSONL sink exactly like `run`; each engine scenario additionally
/// leaves one `.gtrc` trace in `trace_dir`. A trace-file write failure
/// aborts the campaign (a recording campaign whose traces are silently
/// incomplete is worse than a dead one).
fn execute_record(args: RunArgs, trace_dir: &Path) -> Result<(), String> {
    let RunArgs { spec, threads, out, shard, strategy, events, quiet, perf } = args;
    std::fs::create_dir_all(trace_dir)
        .map_err(|e| format!("creating {}: {e}", trace_dir.display()))?;
    let swept = trace_ops::clean_trace_dir(trace_dir)
        .map_err(|e| format!("cleaning {}: {e}", trace_dir.display()))?;
    if swept > 0 {
        eprintln!("removed {swept} trace file(s) left by an earlier recording");
    }
    let jobs = executor::select_pending(&spec.expand(), shard, strategy, &Default::default());
    let manifest = ShardManifest::for_shard(&spec, shard, strategy);
    // The trace set carries its own manifest (inside the directory,
    // over the traced — non-greedy — scenarios), so sharded trace
    // directories can be merged under the same coverage proof as the
    // result files.
    let traced_manifest = ShardManifest::for_traced_shard(&spec, shard, strategy);
    let mut sink =
        JsonlSink::create(&out).map_err(|e| format!("opening {}: {e}", out.display()))?;
    gather_campaign::write_manifest(&out, &manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", out.display()))?;
    gather_campaign::write_trace_manifest(trace_dir, &traced_manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", trace_dir.display()))?;
    eprintln!(
        "campaign `{}`{} (recording): {} scenarios, {} threads -> {} + {}/",
        spec.name,
        if shard.is_full() {
            String::new()
        } else {
            format!(" shard {shard} [{}]", strategy.name())
        },
        jobs.len(),
        if threads == 0 { "all".to_string() } else { threads.to_string() },
        out.display(),
        trace_dir.display(),
    );
    let start = Instant::now();
    let mut reporter =
        ProgressReporter::start(&spec.name, jobs.len(), events.as_deref(), false, quiet)
            .map_err(|e| format!("opening event stream: {e}"))?;
    let mut failure: Option<String> = None;
    let mut traced = 0usize;
    executor::execute_jobs_observed(
        &jobs,
        threads,
        |sc| trace_ops::record_scenario_profiled(sc, trace_dir, perf),
        |sc, secs| {
            let mut outcome = TraceJobOutcome::for_panic(sc);
            if perf {
                outcome.record.secs = secs;
            }
            outcome
        },
        |event| match event {
            JobEvent::Started(i) => {
                if let Err(e) = reporter.scenario_started(&jobs[i].id()) {
                    failure = Some(format!("writing event stream: {e}"));
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            }
            JobEvent::Finished(_i, outcome, secs) => {
                if let Some(e) = outcome.error {
                    failure = Some(format!("recording {}: {e}", outcome.record.id));
                    return ControlFlow::Break(());
                }
                if let Err(e) = sink.write(&outcome.record) {
                    failure = Some(format!("writing {}: {e}", out.display()));
                    return ControlFlow::Break(());
                }
                if outcome.trace_path.is_some() {
                    traced += 1;
                }
                if let Err(e) = reporter.scenario_finished(&outcome.record, secs) {
                    failure = Some(format!("writing event stream: {e}"));
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            }
        },
    );
    if let Some(e) = failure {
        return Err(format!("{e} (recording aborted)"));
    }
    reporter.finish().map_err(|e| format!("writing event stream: {e}"))?;
    let manifest = ShardManifest { complete: true, ..manifest };
    gather_campaign::write_manifest(&out, &manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", out.display()))?;
    let traced_manifest = ShardManifest { complete: true, ..traced_manifest };
    gather_campaign::write_trace_manifest(trace_dir, &traced_manifest)
        .map_err(|e| format!("writing manifest for {}: {e}", trace_dir.display()))?;
    eprintln!(
        "campaign `{}` recorded: {} run, {} traced in {:.1?}",
        spec.name,
        reporter.done(),
        traced,
        start.elapsed(),
    );
    Ok(())
}

/// `replay`: re-execute every trace in `dir` and verify bit-exactness.
fn replay_dir(dir: &Path) -> Result<(), String> {
    let files =
        trace_ops::list_trace_files(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    if files.is_empty() {
        return Err(format!("no .gtrc traces in {}", dir.display()));
    }
    let mut failures = 0usize;
    for file in &files {
        let report = trace_ops::replay_trace(file);
        let name = file.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        match report.status {
            ReplayStatus::Match { rounds } => {
                eprintln!("{name}: ok ({rounds} rounds bit-identical)");
            }
            ReplayStatus::Diverged(d) => {
                failures += 1;
                let robot = d.robot.map(|r| format!(", robot {r}")).unwrap_or_default();
                eprintln!("{name}: DIVERGED at round {}{robot}: {}", d.round, d.detail);
            }
            ReplayStatus::Error(e) => {
                failures += 1;
                eprintln!("{name}: ERROR: {e}");
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} traces diverged or failed", files.len()));
    }
    eprintln!("replay ok: {} traces, zero divergent rounds", files.len());
    Ok(())
}

/// `diff`: compare two trace sets scenario by scenario.
fn diff_dirs(a: &Path, b: &Path) -> Result<(), String> {
    let reports = trace_ops::diff_trace_dirs(a, b).map_err(|e| format!("diffing: {e}"))?;
    if reports.is_empty() {
        return Err(format!("no .gtrc traces in {} or {}", a.display(), b.display()));
    }
    let mut drift = 0usize;
    for report in &reports {
        match &report.status {
            DiffStatus::Identical { rounds } => {
                eprintln!("{}: identical ({rounds} rounds)", report.name);
            }
            DiffStatus::Diverged(d) => {
                drift += 1;
                let robot = d.robot.map(|r| format!(", robot {r}")).unwrap_or_default();
                eprintln!("{}: DIVERGED at round {}{robot}: {}", report.name, d.round, d.detail);
            }
            DiffStatus::HeaderMismatch(why) => {
                drift += 1;
                eprintln!("{}: HEADER MISMATCH: {why}", report.name);
            }
            DiffStatus::OnlyInFirst => {
                drift += 1;
                eprintln!("{}: only in {}", report.name, a.display());
            }
            DiffStatus::OnlyInSecond => {
                drift += 1;
                eprintln!("{}: only in {}", report.name, b.display());
            }
            DiffStatus::Error(e) => {
                drift += 1;
                eprintln!("{}: ERROR: {e}", report.name);
            }
        }
    }
    if drift > 0 {
        return Err(format!("{drift} of {} scenarios drifted", reports.len()));
    }
    eprintln!("diff ok: {} scenarios, zero drift", reports.len());
    Ok(())
}

/// `render`: replay a `.gtrc` (digest-verified) into the ASCII movie,
/// optionally also an SVG frame strip.
fn render_trace(args: &RenderArgs) -> Result<(), String> {
    let file =
        File::open(&args.trace).map_err(|e| format!("opening {}: {e}", args.trace.display()))?;
    let mut reader = gather_trace::TraceReader::new(BufReader::new(file))
        .map_err(|e| format!("{}: {e}", args.trace.display()))?;
    let id = reader.header().scenario_id.clone();
    let initial = reader.header().initial.clone();
    let rounds = gather_trace::read_all_rounds(&mut reader)
        .map_err(|e| format!("{}: {e}", args.trace.display()))?;
    // Auto cadence: ~24 frames over the whole run.
    let every = args.every.unwrap_or_else(|| (rounds.len() as u64 / 24).max(1));
    let trace = gather_viz::Trace::from_rounds(&initial, &rounds, every)
        .map_err(|e| format!("replaying {}: {e}", args.trace.display()))?;
    eprintln!(
        "{}: {} robots, {} rounds, frame every {every} round(s)",
        id,
        initial.len(),
        rounds.len()
    );
    // The ASCII movie is O(bounding-box area) per frame; a sparse
    // clusters trace spans billions of cells, and printing it would be
    // a memory bomb — the exact failure mode the tiled index removed
    // from the engine. Refuse the movie (the SVG strip is O(robots)
    // per frame and still written) rather than allocating it.
    const ASCII_CELL_LIMIT: u128 = 1 << 24;
    let bounds =
        grid_engine::Bounds::of(trace.frames.iter().flat_map(|f| f.points.iter().copied()))
            .expect("traces hold at least the initial frame");
    let frame_cells = bounds.width() as u128 * bounds.height() as u128;
    if frame_cells <= ASCII_CELL_LIMIT {
        print!("{}", trace.render());
    } else if args.svg.is_none() {
        return Err(format!(
            "frames span {frame_cells} cells — too large for an ASCII movie (limit \
             {ASCII_CELL_LIMIT}); pass --svg PATH for the O(robots) frame strip instead"
        ));
    } else {
        eprintln!("frames span {frame_cells} cells: skipping the ASCII movie, writing SVG only");
    }
    if let Some(svg) = &args.svg {
        std::fs::write(svg, trace.render_svg_strip(args.cell))
            .map_err(|e| format!("writing {}: {e}", svg.display()))?;
        eprintln!("wrote {} ({} frames)", svg.display(), trace.frames.len());
    }
    Ok(())
}

/// `smoke`: the large-n record/replay/diff determinism check.
fn smoke(args: &SmokeArgs) -> Result<(), String> {
    eprintln!(
        "smoke: {} n={} rounds={} threads {} vs {} -> {}/",
        args.family.name(),
        args.n,
        args.rounds,
        args.threads_a,
        args.threads_b,
        args.dir.display(),
    );
    let report = run_smoke(args)?;
    eprintln!(
        "smoke ok: {} robots x {} rounds replayed digest-clean, traces byte-identical \
         across thread counts ({} occupied tiles over a {}-cell bounding box, \
         {:.3e} robot-rounds/s)",
        report.robots,
        report.rounds,
        report.occupied_tiles,
        report.bounding_cells,
        report.robot_rounds_per_s,
    );
    Ok(())
}

fn summarize_file(input: &Path, perf: bool) -> Result<(), String> {
    let (records, skipped) =
        load_records(input).map_err(|e| format!("reading {}: {e}", input.display()))?;
    if records.is_empty() {
        return Err(format!("no records in {}", input.display()));
    }
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} malformed line(s)");
    }
    let tables = if perf { summarize_perf(&records)? } else { summarize(&records) };
    for table in tables {
        println!("{}", gather_analysis::render_markdown(&table));
    }
    Ok(())
}

/// `events tail`: one-line status of an event stream, exit non-zero if
/// the file is torn mid-event or the job never finished — the check CI
/// runs against a `--events` campaign.
fn events_tail(file: &Path) -> Result<(), String> {
    let stream =
        gather_obs::read_events(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
    if stream.skipped > 0 {
        eprintln!("warning: skipped {} unparseable line(s)", stream.skipped);
    }
    let summary = gather_obs::validate(&stream.events)?;
    let state = if summary.complete {
        match summary.secs {
            Some(secs) => format!("complete in {secs:.1}s"),
            None => "complete".to_string(),
        }
    } else {
        match summary.eta_secs {
            Some(eta) => format!("running, eta {eta:.0}s"),
            None => "running".to_string(),
        }
    };
    println!(
        "job '{}': {}/{} done, {} panicked, {state}",
        summary.job, summary.done, summary.total, summary.panicked,
    );
    if stream.torn {
        return Err(format!("{} ends in a torn line", file.display()));
    }
    if !summary.complete {
        return Err("stream has no job_finished — the campaign is still running or died".into());
    }
    Ok(())
}

/// `events tail --follow`: poll the file for appended lines, narrate
/// scenario completions, and exit 0 with a summary once `job_finished`
/// lands. Starting before the file exists is fine.
fn events_follow(file: &Path) -> Result<(), String> {
    let mut reader = gather_obs::FollowReader::new(file);
    let mut events: Vec<gather_obs::Event> = Vec::new();
    loop {
        let fresh = reader.poll()?;
        let mut finished = false;
        for event in &fresh {
            match event {
                gather_obs::Event::JobStarted { job, total } => {
                    eprintln!("following job '{job}': {total} scenario(s)");
                }
                gather_obs::Event::ScenarioFinished { id, status, rounds, .. } => {
                    eprintln!("  {id} {} rounds={rounds}", status.as_str().to_uppercase());
                }
                gather_obs::Event::JobFinished { .. } => finished = true,
                _ => {}
            }
        }
        events.extend(fresh);
        if finished {
            if reader.skipped() > 0 {
                eprintln!("warning: skipped {} unparseable line(s)", reader.skipped());
            }
            let summary = gather_obs::validate(&events)?;
            println!(
                "job '{}': {}/{} done, {} panicked, complete in {:.1}s",
                summary.job,
                summary.done,
                summary.total,
                summary.panicked,
                summary.secs.unwrap_or(0.0),
            );
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}
