//! End-to-end campaign tests: determinism across worker-thread counts
//! and resume-after-kill semantics.

use std::collections::HashSet;
use std::path::PathBuf;

use gather_bench::{ControllerKind, SchedulerKind};
use gather_campaign::{executor, load_completed, load_records, CampaignSpec, JsonlSink, Scenario};
use gather_workloads::Family;
use grid_engine::{OrientationMode, Swarm};

/// A small but heterogeneous sweep: every scheduler, a worst-case
/// line, a dense block, and a seeded random family — including cells
/// where the paper's algorithm disconnects under weak synchrony, so
/// the determinism property covers failure records too. 48 scenarios
/// (greedy is its own sequential scheduler and expands once per cell).
fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::named("test");
    spec.families = vec![Family::Line, Family::Square, Family::RandomBlob];
    spec.sizes = vec![16, 32];
    spec.seeds = vec![1, 2];
    spec.controllers = vec![ControllerKind::Paper, ControllerKind::Greedy];
    spec.schedulers = vec![
        SchedulerKind::Fsync,
        SchedulerKind::Ssync { p: 50 },
        SchedulerKind::RoundRobin { k: 4 },
    ];
    spec
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gather-campaign-test-{name}-{}", std::process::id()));
    p
}

fn run_to_file(jobs: &[Scenario], threads: usize, path: &PathBuf) {
    let mut sink = JsonlSink::create(path).unwrap();
    executor::execute_scenarios(jobs, threads, |_done, _total, rec| {
        sink.write(rec).unwrap();
    });
}

fn sorted_lines(path: &PathBuf) -> Vec<String> {
    let mut lines: Vec<String> =
        std::fs::read_to_string(path).unwrap().lines().map(str::to_string).collect();
    lines.sort();
    lines
}

/// The acceptance property: the same spec run with 1 and with 8 worker
/// threads produces byte-identical sorted JSONL.
#[test]
fn results_are_identical_across_thread_counts() {
    let jobs = small_spec().expand();
    let single = tmp("threads1");
    let many = tmp("threads8");
    run_to_file(&jobs, 1, &single);
    run_to_file(&jobs, 8, &many);
    let a = sorted_lines(&single);
    let b = sorted_lines(&many);
    assert_eq!(a.len(), jobs.len());
    assert_eq!(a, b, "thread count changed campaign results");
    std::fs::remove_file(&single).unwrap();
    std::fs::remove_file(&many).unwrap();
}

/// Killing a campaign halfway (simulated by truncating the stream,
/// including a partial trailing line) and resuming yields exactly the
/// full result set, and re-runs only the missing scenarios.
#[test]
fn resume_after_kill_completes_the_result_set() {
    let jobs = small_spec().expand();
    let full = tmp("resume-full");
    run_to_file(&jobs, 4, &full);
    let expected = sorted_lines(&full);

    // "Kill" a run halfway: keep the first half of the stream plus a
    // torn trailing line, exactly what a killed process leaves behind.
    let half = tmp("resume-half");
    let all = std::fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = all.lines().collect();
    let keep = lines.len() / 2;
    let mut content: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    content.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&half, &content).unwrap();

    // Resume: completed IDs are skipped (torn line does not count).
    let completed = load_completed(&half).unwrap();
    assert_eq!(completed.len(), keep);
    let pending: Vec<Scenario> =
        jobs.iter().copied().filter(|sc| !completed.contains(&sc.id())).collect();
    assert_eq!(pending.len(), jobs.len() - keep, "resume re-ran or lost scenarios");

    let mut sink = JsonlSink::append(&half).unwrap();
    executor::execute_scenarios(&pending, 4, |_d, _t, rec| sink.write(rec).unwrap());
    drop(sink);

    // The torn line is still in the file; parseable records must equal
    // the uninterrupted run exactly.
    let (records, skipped) = load_records(&half).unwrap();
    assert_eq!(skipped, 1, "torn trailing line should be skipped");
    let mut resumed: Vec<String> = records.iter().map(|r| r.to_json_line()).collect();
    resumed.sort();
    assert_eq!(resumed, expected, "resume diverged from the uninterrupted run");

    std::fs::remove_file(&full).unwrap();
    std::fs::remove_file(&half).unwrap();
}

/// Completed scenario IDs are skipped even under `run`-then-`resume`
/// with zero pending work: nothing is re-executed.
#[test]
fn resume_of_a_finished_campaign_runs_nothing() {
    let mut spec = small_spec();
    spec.sizes = vec![16];
    let jobs = spec.expand();
    let path = tmp("resume-noop");
    run_to_file(&jobs, 2, &path);
    let completed = load_completed(&path).unwrap();
    let pending: Vec<Scenario> =
        jobs.iter().copied().filter(|sc| !completed.contains(&sc.id())).collect();
    assert!(pending.is_empty());
    let ids: HashSet<String> = jobs.iter().map(Scenario::id).collect();
    assert_eq!(completed, ids);
    std::fs::remove_file(&path).unwrap();
}

/// The shipped weak-synchrony sweep spec stays loadable: larger sizes
/// than the standard sweep, ssync-p / rr-k / crash-f ratio axes, and
/// the sparse clusters family.
#[test]
fn shipped_weak_sync_spec_parses_and_expands() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/sweeps/weak_sync.json");
    let text = std::fs::read_to_string(path).expect("examples/sweeps/weak_sync.json exists");
    let spec = gather_campaign::cli::spec_from_flat_json(&text).expect("spec parses");
    assert_eq!(spec.name, "weak-sync");
    assert!(spec.families.contains(&Family::Clusters));
    assert!(spec.sizes.iter().all(|&n| n >= 256), "larger n than the standard sweep");
    assert!(spec.sizes.contains(&2048));
    let ssync = spec.schedulers.iter().filter(|s| matches!(s, SchedulerKind::Ssync { .. })).count();
    let rr =
        spec.schedulers.iter().filter(|s| matches!(s, SchedulerKind::RoundRobin { .. })).count();
    let crash = spec.schedulers.iter().filter(|s| matches!(s, SchedulerKind::Crash { .. })).count();
    assert!(ssync >= 3 && rr >= 3 && crash >= 3, "each ratio axis needs >= 3 points");
    assert!(spec.validate().is_ok());
    assert!(spec.len() > 1000, "a sweep worth a spec file: {} scenarios", spec.len());
}

/// The n-scaling axis reaches 10⁶: a million-robot clusters scenario
/// expands, generates, and *instantiates* — the occupancy index backs a
/// ~10¹¹-cell bounding box with memory proportional to occupied tiles.
/// (Running such a scenario to completion is a compute budget, not a
/// memory one; the instantiation is what the dense grid could not do.)
#[test]
fn million_robot_scenario_instantiates_in_tile_memory() {
    let sc = Scenario {
        family: Family::Clusters,
        n: 1_000_000,
        seed: 1,
        controller: ControllerKind::Paper,
        scheduler: SchedulerKind::Fsync,
    };
    let points = sc.points();
    assert_eq!(points.len(), 1_000_000);
    let swarm: Swarm<()> = Swarm::new(&points, OrientationMode::Scrambled(sc.seed));
    let bounds = swarm.bounds();
    let box_cells = bounds.width() as u128 * bounds.height() as u128;
    assert!(box_cells >= 1_000_000_000, "bounding box only {box_cells} cells");
    let backed = swarm.index().capacity_cells() as u128;
    assert!(
        backed * 100 < box_cells,
        "index backs {backed} cells for a {box_cells}-cell box — not sparse"
    );
    assert!(!swarm.is_gathered(), "O(1) goal check on a million robots");
}
