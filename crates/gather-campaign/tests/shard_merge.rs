//! End-to-end distributed-campaign tests: the acceptance property
//! (sharded run + verified merge ≡ unsharded run), the merge edge-case
//! matrix (missing / overlapping / mixed-spec / torn / incomplete /
//! resumed-duplicate shards), and the partition proptest.

use std::path::{Path, PathBuf};

use gather_bench::{ControllerKind, SchedulerKind};
use gather_campaign::{
    executor, load_records, merge_shards, merge_trace_dirs, read_manifest, read_trace_manifest,
    summarize, trace_ops, write_manifest, write_trace_manifest, CampaignSpec, JsonlSink,
    ReplayStatus, ShardManifest, ShardSpec, ShardStrategy,
};
use gather_workloads::Family;
use proptest::prelude::*;

/// Small but heterogeneous: multiple schedulers (so five-segment IDs are
/// hashed too), the greedy strawman (one expansion per cell), and cells
/// where the paper controller fails under weak synchrony — failure
/// records must shard and merge like successes.
fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::named("shard-test");
    spec.families = vec![Family::Line, Family::Square, Family::RandomBlob];
    spec.sizes = vec![16, 32];
    spec.seeds = vec![1, 2];
    spec.controllers = vec![ControllerKind::Paper, ControllerKind::Greedy];
    spec.schedulers = vec![SchedulerKind::Fsync, SchedulerKind::Ssync { p: 50 }];
    spec
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gather-shard-merge-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Execute one shard the way `campaign run --shard` does: partitioned
/// pending set, manifest without the marker first, records streamed,
/// marker flipped at the end.
fn run_shard(
    spec: &CampaignSpec,
    shard: ShardSpec,
    strategy: ShardStrategy,
    out: &Path,
) -> ShardManifest {
    let jobs = spec.expand();
    let pending = executor::select_pending(&jobs, shard, strategy, &Default::default());
    let manifest = ShardManifest::for_shard(spec, shard, strategy);
    let mut sink = JsonlSink::create(out).unwrap();
    write_manifest(out, &manifest).unwrap();
    executor::execute_scenarios(&pending, 4, |_d, _t, rec| sink.write(rec).unwrap());
    drop(sink);
    let manifest = ShardManifest { complete: true, ..manifest };
    write_manifest(out, &manifest).unwrap();
    manifest
}

fn run_all_shards(
    spec: &CampaignSpec,
    count: u32,
    strategy: ShardStrategy,
    dir: &Path,
) -> Vec<PathBuf> {
    (0..count)
        .map(|index| {
            let shard = ShardSpec { index, count };
            let out = dir.join(format!("c.shard{index}of{count}.jsonl"));
            run_shard(spec, shard, strategy, &out);
            out
        })
        .collect()
}

fn sorted_lines(path: &Path) -> Vec<String> {
    let mut lines: Vec<String> =
        std::fs::read_to_string(path).unwrap().lines().map(str::to_string).collect();
    lines.sort();
    lines
}

/// The acceptance property: four shard runs plus a verified merge give
/// a result file whose record set — and therefore whose `summarize`
/// tables — are identical to the unsharded run's, under both partition
/// strategies.
#[test]
fn four_shards_plus_merge_equal_the_unsharded_run() {
    let spec = small_spec();
    let dir = tmp_dir("acceptance");

    // Unsharded reference (the degenerate 0/1 shard, same code path).
    let reference = dir.join("reference.jsonl");
    run_shard(&spec, ShardSpec::FULL, ShardStrategy::Hash, &reference);
    let expected = sorted_lines(&reference);
    assert_eq!(expected.len(), spec.len());

    for strategy in [ShardStrategy::Hash, ShardStrategy::Stride] {
        let subdir = dir.join(strategy.name());
        std::fs::create_dir_all(&subdir).unwrap();
        let shards = run_all_shards(&spec, 4, strategy, &subdir);
        let merged = subdir.join("merged.jsonl");
        let report = merge_shards(&shards, &merged).unwrap();
        assert_eq!(report.total, spec.len());
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.shards.len(), 4);

        // Same record set, line for line.
        assert_eq!(sorted_lines(&merged), expected, "{strategy:?}");

        // And the rendered summaries agree exactly.
        let (merged_records, _) = load_records(&merged).unwrap();
        let (reference_records, _) = load_records(&reference).unwrap();
        let render = |records: &[gather_campaign::ScenarioRecord]| -> String {
            summarize(records).iter().map(gather_analysis::render_markdown).collect()
        };
        assert_eq!(render(&merged_records), render(&reference_records), "{strategy:?}");

        // The merged file carries a complete full-cover manifest, so it
        // verifies exactly like an unsharded run's output would.
        let manifest = read_manifest(&merged).unwrap().unwrap();
        assert!(manifest.complete);
        assert_eq!(manifest.shard(), ShardSpec::FULL);
        assert_eq!(manifest.shard_len, spec.len());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_a_missing_shard() {
    let spec = small_spec();
    let dir = tmp_dir("missing");
    let mut shards = run_all_shards(&spec, 4, ShardStrategy::Hash, &dir);
    shards.remove(2);
    let err = merge_shards(&shards, &dir.join("merged.jsonl")).unwrap_err();
    assert!(err.contains("missing shard"), "{err}");
    assert!(err.contains("2/4"), "the gap must be named: {err}");
    assert!(!dir.join("merged.jsonl").exists(), "nothing may be written on failure");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_overlapping_shards() {
    let spec = small_spec();
    let dir = tmp_dir("overlap");
    let mut shards = run_all_shards(&spec, 4, ShardStrategy::Hash, &dir);
    // Shard 1 submitted twice under different file names.
    let copy = dir.join("c.shard1of4-copy.jsonl");
    std::fs::copy(&shards[1], &copy).unwrap();
    std::fs::copy(
        gather_campaign::manifest_path(&shards[1]),
        gather_campaign::manifest_path(&copy),
    )
    .unwrap();
    shards[3] = copy;
    let err = merge_shards(&shards, &dir.join("merged.jsonl")).unwrap_err();
    assert!(err.contains("overlapping"), "{err}");
    assert!(err.contains("1/4"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_mixed_spec_shards() {
    let spec = small_spec();
    let dir = tmp_dir("mixed");
    let mut shards = run_all_shards(&spec, 2, ShardStrategy::Hash, &dir);
    // Shard 1 of a *different* spec (extra size axis point).
    let mut other = small_spec();
    other.sizes.push(24);
    let foreign = dir.join("foreign.shard1of2.jsonl");
    run_shard(&other, ShardSpec { index: 1, count: 2 }, ShardStrategy::Hash, &foreign);
    shards[1] = foreign;
    let err = merge_shards(&shards, &dir.join("merged.jsonl")).unwrap_err();
    assert!(err.contains("mixed-spec"), "{err}");
    assert!(err.contains("spec_digest"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_a_torn_final_line() {
    let spec = small_spec();
    let dir = tmp_dir("torn");
    let shards = run_all_shards(&spec, 4, ShardStrategy::Hash, &dir);
    // Corrupt shard 2 after completion: chop the final line in half,
    // exactly what a partial copy or a dying disk leaves behind.
    let content = std::fs::read_to_string(&shards[2]).unwrap();
    let cut = content.trim_end().rfind('\n').map(|i| i + 1).unwrap_or(0);
    let tail_len = (content.len() - cut) / 2;
    std::fs::write(&shards[2], &content[..cut + tail_len]).unwrap();
    let err = merge_shards(&shards, &dir.join("merged.jsonl")).unwrap_err();
    assert!(err.contains("does not match its manifest"), "{err}");
    assert!(err.contains("2/4"), "{err}");
    assert!(err.contains("torn"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_an_incomplete_shard() {
    let spec = small_spec();
    let dir = tmp_dir("incomplete");
    let shards = run_all_shards(&spec, 2, ShardStrategy::Hash, &dir);
    // Rewind shard 0's manifest to the not-yet-complete state a crashed
    // run leaves behind.
    let manifest = read_manifest(&shards[0]).unwrap().unwrap();
    write_manifest(&shards[0], &ShardManifest { complete: false, ..manifest }).unwrap();
    let err = merge_shards(&shards, &dir.join("merged.jsonl")).unwrap_err();
    assert!(err.contains("completion marker"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A resumed shard legitimately re-emits records (the JSONL sink
/// appends; resume skips completed IDs, but a record flushed right as
/// the previous run died can land twice). Merge must keep the *last*
/// occurrence and report the duplicate, not fail.
#[test]
fn merge_dedups_resumed_duplicates_keeping_the_last_record() {
    let spec = small_spec();
    let dir = tmp_dir("dupes");
    let shards = run_all_shards(&spec, 2, ShardStrategy::Hash, &dir);

    // Append a doctored duplicate of shard 0's first record: same ID,
    // different rounds value. Last occurrence must win.
    let (records, _) = load_records(&shards[0]).unwrap();
    let mut doctored = records[0].clone();
    doctored.rounds += 1000;
    let mut content = std::fs::read_to_string(&shards[0]).unwrap();
    content.push_str(&doctored.to_json_line());
    content.push('\n');
    std::fs::write(&shards[0], content).unwrap();

    let merged = dir.join("merged.jsonl");
    let report = merge_shards(&shards, &merged).unwrap();
    assert_eq!(report.duplicates, 1);
    assert_eq!(report.shards[0].duplicates, 1);
    assert_eq!(report.total, spec.len());
    let (merged_records, _) = load_records(&merged).unwrap();
    let kept = merged_records.iter().find(|r| r.id == doctored.id).unwrap();
    assert_eq!(kept.rounds, doctored.rounds, "last occurrence must win");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Sharded resume: kill shard 1 halfway (torn trailing line included),
/// resume it, and the merge completes with the full result set.
#[test]
fn killed_shard_resumes_and_merges_clean() {
    let spec = small_spec();
    let dir = tmp_dir("resume");
    let count = 2u32;
    let shard = ShardSpec { index: 1, count };
    let strategy = ShardStrategy::Hash;
    let shard0 = dir.join("c.shard0of2.jsonl");
    run_shard(&spec, ShardSpec { index: 0, count }, strategy, &shard0);

    // Shard 1 "dies": half its records plus a torn line, manifest
    // still lacking the completion marker.
    let full = dir.join("c.shard1of2.full.jsonl");
    run_shard(&spec, shard, strategy, &full);
    let all = std::fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = all.lines().collect();
    let keep = lines.len() / 2;
    let mut content: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    content.push_str(&lines[keep][..lines[keep].len() / 2]);
    let shard1 = dir.join("c.shard1of2.jsonl");
    std::fs::write(&shard1, &content).unwrap();
    let manifest = ShardManifest::for_shard(&spec, shard, strategy);
    write_manifest(&shard1, &manifest).unwrap();

    // An un-resumed dead shard must be refused.
    let err = merge_shards(&[shard0.clone(), shard1.clone()], &dir.join("m.jsonl")).unwrap_err();
    assert!(err.contains("completion marker"), "{err}");

    // Resume exactly like `campaign resume --shard 1/2` would.
    let completed = gather_campaign::load_completed(&shard1).unwrap();
    assert_eq!(completed.len(), keep, "torn line must not count as completed");
    let pending = executor::select_pending(&spec.expand(), shard, strategy, &completed);
    let mut sink = JsonlSink::append(&shard1).unwrap();
    executor::execute_scenarios(&pending, 4, |_d, _t, rec| sink.write(rec).unwrap());
    drop(sink);
    write_manifest(&shard1, &ShardManifest { complete: true, ..manifest }).unwrap();

    let merged = dir.join("merged.jsonl");
    let report = merge_shards(&[shard0.clone(), shard1], &merged).unwrap();
    assert_eq!(report.total, spec.len());
    // Records are pure functions of the scenario, so the merged set is
    // exactly shard 0's lines plus uninterrupted shard 1's lines.
    let mut expected = sorted_lines(&full);
    expected.extend(sorted_lines(&shard0));
    expected.sort();
    assert_eq!(sorted_lines(&merged), expected, "resume diverged from the uninterrupted shard");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The shipped shard helper script stays wired to the shipped spec: it
/// invokes `campaign plan` on `examples/sweeps/weak_sync.json`, and the
/// invocation it performs parses through the real CLI.
#[test]
fn shipped_shard_script_invokes_a_parsable_plan() {
    let script_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/sweeps/weak_sync_shard.sh");
    let script = std::fs::read_to_string(script_path).expect("weak_sync_shard.sh exists");
    assert!(script.starts_with("#!"), "script needs a shebang");
    assert!(script.contains("plan"), "script must use `campaign plan`");
    assert!(script.contains("--shards"), "script must pass --shards");
    assert!(script.contains("examples/sweeps/weak_sync.json"), "script must target the sweep");

    // Reconstruct the plan invocation the script performs (default
    // shard count) and push it through the real parser.
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/sweeps/weak_sync.json");
    let args: Vec<String> =
        ["plan", "--shards", "4", "--spec", spec_path, "--out", "weak_sync.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let cmd = gather_campaign::cli::parse(&args).expect("the script's plan invocation parses");
    let gather_campaign::cli::Command::Plan { run, shards } = cmd else { panic!("not plan") };
    assert_eq!(shards, 4);
    assert_eq!(run.spec.name, "weak-sync");
    assert_eq!(run.spec.len(), 2400, "the weak-sync sweep is the 2400-scenario question");
    // The plan's command lines re-parse and partition the 2400
    // scenarios exactly (proved in general by the proptest below; this
    // pins the shipped sweep specifically).
    let lines = gather_campaign::plan_lines(&run.spec, shards, run.strategy, &run.out, run.threads);
    assert_eq!(lines.len(), 5);
    let mut covered = 0usize;
    for line in &lines[..4] {
        let args: Vec<String> = line.split_whitespace().skip(1).map(str::to_string).collect();
        let gather_campaign::cli::Command::Run(parsed) =
            gather_campaign::cli::parse(&args).unwrap()
        else {
            panic!("plan line is not a run: {line}");
        };
        covered += parsed.spec.expand_shard(parsed.shard, parsed.strategy).len();
    }
    assert_eq!(covered, 2400, "the four planned shards must cover every scenario");
}

/// A tiny spec for the sharded-trace tests, including the ASYNC
/// scheduler so in-flight (v2 pending) trace content shards and merges
/// too; greedy rides along untraced, exercising the traced-only
/// manifest arithmetic.
fn trace_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::named("trace-shard-test");
    spec.families = vec![Family::Line, Family::Square];
    spec.sizes = vec![16];
    spec.seeds = vec![1, 2];
    spec.controllers = vec![ControllerKind::Paper, ControllerKind::Greedy];
    spec.schedulers = vec![SchedulerKind::Fsync, SchedulerKind::Async { s: 2 }];
    spec
}

/// Record one shard's traces the way `campaign record --shard` does:
/// traced-scenario manifest first (marker off), one `.gtrc` per engine
/// scenario, marker flipped at the end.
fn record_shard_traces(
    spec: &CampaignSpec,
    shard: ShardSpec,
    strategy: ShardStrategy,
    dir: &Path,
) -> ShardManifest {
    std::fs::create_dir_all(dir).unwrap();
    let pending = executor::select_pending(&spec.expand(), shard, strategy, &Default::default());
    let manifest = ShardManifest::for_traced_shard(spec, shard, strategy);
    write_trace_manifest(dir, &manifest).unwrap();
    for sc in &pending {
        let outcome = trace_ops::record_scenario(sc, dir);
        assert!(outcome.error.is_none(), "recording {}: {:?}", sc.id(), outcome.error);
    }
    let manifest = ShardManifest { complete: true, ..manifest };
    write_trace_manifest(dir, &manifest).unwrap();
    manifest
}

fn trace_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    trace_ops::list_trace_files(dir)
        .unwrap()
        .into_iter()
        .map(|p| {
            (p.file_name().unwrap().to_string_lossy().into_owned(), std::fs::read(&p).unwrap())
        })
        .collect()
}

/// The trace-merge acceptance property: two shard recordings plus a
/// verified merge produce a trace directory *byte-identical* to an
/// unsharded recording — same file names, same bytes — with a complete
/// full-cover manifest, and every merged trace replays clean.
#[test]
fn sharded_trace_record_plus_merge_is_byte_identical_to_unsharded() {
    let spec = trace_spec();
    let dir = tmp_dir("traces");

    let reference = dir.join("reference");
    record_shard_traces(&spec, ShardSpec::FULL, ShardStrategy::Hash, &reference);
    let expected = trace_bytes(&reference);
    let traced: Vec<_> =
        spec.expand().into_iter().filter(|sc| sc.controller != ControllerKind::Greedy).collect();
    assert_eq!(expected.len(), traced.len(), "one trace per engine scenario");

    let shards: Vec<PathBuf> = (0..2)
        .map(|index| {
            let shard_dir = dir.join(format!("shard{index}of2"));
            record_shard_traces(
                &spec,
                ShardSpec { index, count: 2 },
                ShardStrategy::Hash,
                &shard_dir,
            );
            shard_dir
        })
        .collect();

    let merged = dir.join("merged");
    let report = merge_trace_dirs(&shards, &merged).unwrap();
    assert_eq!(report.total, traced.len());
    assert_eq!(report.shards.len(), 2);

    assert_eq!(trace_bytes(&merged), expected, "merged trace set must be byte-identical");

    let manifest = read_trace_manifest(&merged).unwrap().unwrap();
    assert!(manifest.complete);
    assert_eq!(manifest.shard(), ShardSpec::FULL);
    assert_eq!(manifest.shard_len, traced.len());

    for file in trace_ops::list_trace_files(&merged).unwrap() {
        let replay = trace_ops::replay_trace(&file);
        assert!(
            matches!(replay.status, ReplayStatus::Match { .. }),
            "{}: {:?}",
            replay.id,
            replay.status
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The trace merge refuses the same holes the result merge does:
/// missing shards, incomplete recordings, sets that lost a trace, and
/// directories without a manifest.
#[test]
fn trace_merge_rejects_broken_shard_sets() {
    let spec = trace_spec();
    let dir = tmp_dir("trace-reject");
    let shards: Vec<PathBuf> = (0..2)
        .map(|index| {
            let shard_dir = dir.join(format!("shard{index}of2"));
            record_shard_traces(
                &spec,
                ShardSpec { index, count: 2 },
                ShardStrategy::Hash,
                &shard_dir,
            );
            shard_dir
        })
        .collect();
    let out = dir.join("merged");

    // Missing shard.
    let err = merge_trace_dirs(&shards[..1], &out).unwrap_err();
    assert!(err.contains("missing shard"), "{err}");

    // Incomplete recording (crashed mid-run).
    let manifest = read_trace_manifest(&shards[0]).unwrap().unwrap();
    write_trace_manifest(&shards[0], &ShardManifest { complete: false, ..manifest.clone() })
        .unwrap();
    let err = merge_trace_dirs(&shards, &out).unwrap_err();
    assert!(err.contains("completion marker"), "{err}");
    write_trace_manifest(&shards[0], &manifest).unwrap();

    // A lost trace file.
    let victim = trace_ops::list_trace_files(&shards[1]).unwrap().remove(0);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::remove_file(&victim).unwrap();
    let err = merge_trace_dirs(&shards, &out).unwrap_err();
    assert!(err.contains("does not match its manifest"), "{err}");

    // A renamed trace file (count and header intact, name wrong).
    std::fs::write(shards[1].join("imposter.gtrc"), &bytes).unwrap();
    let err = merge_trace_dirs(&shards, &out).unwrap_err();
    assert!(err.contains("not named"), "{err}");
    std::fs::write(&victim, &bytes).unwrap();
    std::fs::remove_file(shards[1].join("imposter.gtrc")).unwrap();

    // A directory that was never a recorded shard.
    let foreign = dir.join("not-a-shard");
    std::fs::create_dir_all(&foreign).unwrap();
    let err = merge_trace_dirs(&[shards[0].clone(), foreign], &out).unwrap_err();
    assert!(err.contains("no trace manifest"), "{err}");

    // Nothing was ever written on failure.
    assert!(!out.exists(), "a refused merge must not leave a partial output");
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `hash` partitioning of any spec is a disjoint exact cover for
    /// every shard count M in 1..=8 — scenario IDs land in exactly one
    /// shard, independent of expansion order and machine.
    #[test]
    fn hash_partition_is_a_disjoint_exact_cover(
        family_mask in 1u32..2048,
        size_mask in 1u32..16,
        nseeds in 1u64..4,
        controller_mask in 1u32..8,
        scheduler_mask in 1u32..16,
    ) {
        let families = gather_workloads::all_families();
        let mut spec = CampaignSpec::named("prop");
        spec.families = families
            .iter()
            .enumerate()
            .filter(|(i, _)| family_mask & (1 << i) != 0)
            .map(|(_, &f)| f)
            .collect();
        spec.sizes = [8usize, 16, 24, 32]
            .iter()
            .enumerate()
            .filter(|(i, _)| size_mask & (1 << i) != 0)
            .map(|(_, &n)| n)
            .collect();
        spec.seeds = (0..nseeds).collect();
        spec.controllers = ControllerKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| controller_mask & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect();
        let all_schedulers = [
            SchedulerKind::Fsync,
            SchedulerKind::Ssync { p: 50 },
            SchedulerKind::RoundRobin { k: 4 },
            SchedulerKind::Crash { f: 2 },
        ];
        spec.schedulers = all_schedulers
            .iter()
            .enumerate()
            .filter(|(i, _)| scheduler_mask & (1 << i) != 0)
            .map(|(_, &s)| s)
            .collect();
        prop_assert!(spec.validate().is_ok(), "masks always leave every axis non-empty");

        let all = spec.expand();
        for count in 1..=8u32 {
            let mut seen = std::collections::HashSet::new();
            let mut union = 0usize;
            let mut folded = 0u64;
            for index in 0..count {
                let shard = ShardSpec { index, count };
                let jobs = spec.expand_shard(shard, ShardStrategy::Hash);
                let manifest = ShardManifest::for_shard(&spec, shard, ShardStrategy::Hash);
                prop_assert_eq!(manifest.shard_len, jobs.len());
                folded ^= manifest.shard_coverage;
                union += jobs.len();
                for sc in &jobs {
                    prop_assert!(
                        seen.insert(sc.id()),
                        "M={}: scenario {} in two shards", count, sc.id()
                    );
                }
            }
            prop_assert_eq!(union, all.len(), "M={}: shards lost or invented jobs", count);
            prop_assert_eq!(
                folded, spec.coverage_digest(),
                "M={}: coverage digests must fold to the spec's", count
            );
        }
    }
}
