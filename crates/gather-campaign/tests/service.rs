//! End-to-end tests for the campaign service: a real Unix-socket
//! loopback (serve + workers + submit in one process), the lease-expiry
//! path a killed worker exercises, and property tests for the
//! content-addressed result cache's key soundness and byte fidelity.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use gather_campaign::cli::{ServeArgs, SubmitArgs, WorkArgs};
use gather_campaign::{
    read_manifest, serve, submit, work, CampaignSpec, ControllerKind, Family, SchedulerKind,
};
use gather_obs::Message;
use gather_serve::{CacheKey, Conn, ResultCache};
use proptest::prelude::*;

/// A fresh scratch directory per test (unique across tests in this
/// process and across leaked dirs of previous runs).
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("gather-service-{}-{name}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small sweep that exercises two families and two seeds but still
/// runs in well under a second.
fn small_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::named(name);
    spec.families = vec![Family::Line, Family::Square];
    spec.sizes = vec![16];
    spec.seeds = vec![0, 1];
    spec.controllers = vec![ControllerKind::Paper];
    spec.schedulers = vec![SchedulerKind::Fsync];
    spec
}

/// What an unsharded batch run would put on disk: every record line,
/// sorted by scenario ID, newline-terminated — the service's merged
/// output must be byte-identical to this.
fn batch_bytes(spec: &CampaignSpec) -> String {
    let mut lines: Vec<(String, String)> =
        spec.expand().iter().map(|sc| (sc.id(), sc.run().to_json_line())).collect();
    lines.sort();
    lines.into_iter().map(|(_, line)| line + "\n").collect()
}

fn connect_retry(socket: &Path) -> Conn {
    for _ in 0..200 {
        if let Ok(conn) = Conn::connect(socket) {
            return conn;
        }
        thread::sleep(Duration::from_millis(25));
    }
    panic!("service socket never came up at {}", socket.display());
}

#[test]
fn loopback_service_run_is_byte_identical_and_second_submit_is_all_cache() {
    let dir = scratch("loopback");
    let socket = dir.join("serve.sock");
    let spec = small_spec("svc-loop");
    let expected = batch_bytes(&spec);
    let total = spec.len();

    let server = {
        let args = ServeArgs {
            socket: socket.clone(),
            cache: dir.join("cache"),
            jobs: Some(2),
            lease_ttl_ms: 60_000,
            quiet: true,
        };
        thread::spawn(move || serve(&args))
    };
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let args = WorkArgs {
                socket: socket.clone(),
                threads: 1,
                name: format!("w{i}"),
                lease: 1,
                poll_ms: 10,
            };
            thread::spawn(move || work(&args))
        })
        .collect();

    let out1 = dir.join("first.jsonl");
    let first = submit(&SubmitArgs {
        socket: socket.clone(),
        spec: spec.clone(),
        out: out1.clone(),
        events: None,
        quiet: true,
    })
    .unwrap();
    assert_eq!(first.total, total);
    assert_eq!(first.cached, 0, "fresh cache directory");
    assert_eq!(first.executed, total);
    assert_eq!(first.panicked, 0);
    assert_eq!(std::fs::read_to_string(&out1).unwrap(), expected);
    let manifest = read_manifest(&out1).unwrap().expect("service writes a manifest");
    assert!(manifest.complete);

    // Same spec again: served entirely from the cache, byte-identical,
    // and no scenario reaches a worker.
    let out2 = dir.join("second.jsonl");
    let second = submit(&SubmitArgs {
        socket: socket.clone(),
        spec: spec.clone(),
        out: out2.clone(),
        events: None,
        quiet: true,
    })
    .unwrap();
    assert_eq!(second.cached, total);
    assert_eq!(second.executed, 0);
    assert_eq!(std::fs::read_to_string(&out2).unwrap(), expected);

    let mut executed = 0;
    for worker in workers {
        let report = worker.join().unwrap().unwrap();
        executed += report.executed;
    }
    assert_eq!(executed, total, "every scenario ran exactly once, all on workers");
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_killed_workers_lease_expires_and_the_job_still_converges() {
    let dir = scratch("expiry");
    let socket = dir.join("serve.sock");
    let mut spec = small_spec("svc-expiry");
    spec.families = vec![Family::Line];
    let expected = batch_bytes(&spec);
    let total = spec.len();

    let server = {
        let args = ServeArgs {
            socket: socket.clone(),
            cache: dir.join("cache"),
            jobs: Some(1),
            lease_ttl_ms: 250,
            quiet: true,
        };
        thread::spawn(move || serve(&args))
    };
    let out = dir.join("out.jsonl");
    let events = dir.join("events.ndjson");
    let submitter = {
        let args = SubmitArgs {
            socket: socket.clone(),
            spec: spec.clone(),
            out: out.clone(),
            events: Some(events.clone()),
            quiet: true,
        };
        thread::spawn(move || submit(&args))
    };

    // A "worker" that leases the whole job and then goes silent — the
    // stand-in for a worker killed mid-lease. It keeps its connection
    // open, so only TTL expiry can free the scenarios.
    let mut saboteur = connect_retry(&socket);
    loop {
        let request = Message::LeaseRequest { worker: "saboteur".into(), capacity: 99 };
        saboteur.send_line(&request.to_json_line()).unwrap();
        let line = saboteur.recv_line().unwrap().expect("service replied");
        let Message::LeaseGranted { indexes, drained, .. } =
            Message::from_json_line(&line).unwrap()
        else {
            panic!("expected a grant");
        };
        assert!(!drained);
        if indexes.len() == total {
            break;
        }
        assert!(indexes.is_empty(), "partial grants only happen under contention");
        thread::sleep(Duration::from_millis(10));
    }

    let worker = {
        let args = WorkArgs {
            socket: socket.clone(),
            threads: 1,
            name: "honest".into(),
            lease: 1,
            poll_ms: 25,
        };
        thread::spawn(move || work(&args))
    };

    let report = submitter.join().unwrap().unwrap();
    assert_eq!(report.total, total);
    assert_eq!(report.executed, total, "every scenario re-ran after the lease expired");
    assert_eq!(std::fs::read_to_string(&out).unwrap(), expected);

    // The mirrored event stream survives full validation: exactly one
    // started/finished pair per scenario even though every index was
    // granted twice.
    let stream = gather_obs::read_events(&events).unwrap();
    assert!(!stream.torn);
    let summary = gather_obs::validate(&stream.events).unwrap();
    assert!(summary.complete);
    assert_eq!(summary.finished, total);

    assert_eq!(worker.join().unwrap().unwrap().executed, total);
    drop(saboteur);
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Key soundness: perturbing any single component of a cache key —
    /// scenario ID, config digest, or engine version — moves the entry
    /// to a different address.
    #[test]
    fn any_single_field_perturbation_changes_the_cache_key(
        seed in any::<u64>(),
        digest in any::<u64>(),
        delta in 1u64..u64::MAX,
        which in 0usize..3,
    ) {
        let base = CacheKey {
            scenario_id: format!("line/n16/s{seed}/paper"),
            config_digest: digest,
            engine_version: "grid-engine/0.1.0".into(),
        };
        let mut other = base.clone();
        match which {
            0 => other.scenario_id = format!("line/n16/s{seed}/center"),
            1 => other.config_digest = other.config_digest.wrapping_add(delta),
            _ => other.engine_version = format!("grid-engine/0.1.{delta}"),
        }
        prop_assert!(other != base);
        prop_assert!(other.digest_hex() != base.digest_hex());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Cache fidelity: a stored record comes back byte-identical, and
    /// those bytes equal what a fresh execution of the same scenario
    /// serializes to — the property that makes cache hits
    /// indistinguishable from fresh runs in the merged output.
    #[test]
    fn a_cache_hit_replays_the_exact_bytes_of_a_fresh_run(
        seed in 0u64..1_000,
        fam in 0usize..3,
        size in 8usize..=20,
    ) {
        let mut spec = small_spec("svc-cache-prop");
        spec.families = vec![[Family::Line, Family::Square, Family::RandomBlob][fam]];
        spec.sizes = vec![size];
        spec.seeds = vec![seed];
        let sc = spec.expand()[0];
        let line = sc.run().to_json_line();
        let key = CacheKey {
            scenario_id: sc.id(),
            config_digest: sc.config_digest(),
            engine_version: grid_engine::ENGINE_VERSION.to_string(),
        };

        let dir = scratch("cache-prop");
        let cache = ResultCache::open(&dir).unwrap();
        prop_assert!(cache.lookup(&key).is_none());
        cache.store(&key, &line).unwrap();
        let hit = cache.lookup(&key);
        prop_assert_eq!(hit.as_deref(), Some(line.as_str()));
        prop_assert_eq!(cache.lookup(&key).unwrap(), sc.run().to_json_line());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The spec round trip the wire protocol rests on: a spec flattened to
/// `spec_*` fields and rebuilt on the other side expands to the same
/// scenarios in the same order.
#[test]
fn wire_spec_fields_preserve_the_expansion() {
    let spec = small_spec("svc-wire");
    let fields: BTreeMap<String, String> = gather_campaign::cli::spec_to_fields(&spec);
    let rebuilt = gather_campaign::cli::spec_from_fields(&fields).unwrap();
    assert_eq!(rebuilt, spec);
    assert_eq!(
        rebuilt.expand().iter().map(|s| s.id()).collect::<Vec<_>>(),
        spec.expand().iter().map(|s| s.id()).collect::<Vec<_>>(),
    );
}
