//! End-to-end trace subsystem tests: record → replay with zero
//! divergence, byte-identical recording across thread counts, diff
//! between independent recordings, and exact divergence localisation on
//! a deliberately perturbed trace.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

use gather_bench::{ControllerKind, RunSpec, SchedulerKind};
use gather_campaign::trace_ops::{self, trace_file_name};
use gather_campaign::{
    executor, CampaignSpec, DiffStatus, ReplayStatus, Scenario, TraceJobOutcome,
};
use gather_trace::{read_all_rounds, TraceHeader, TraceReader, TraceWriter};
use gather_workloads::Family;

/// A small heterogeneous spec covering every controller (greedy rides
/// along untraced), a weak-synchrony scheduler, the crash-fault
/// scheduler, and true ASYNC (whose v2 traces carry in-flight pending
/// moves — record, replay and diff must all handle them).
fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::named("trace-test");
    spec.families = vec![Family::Line, Family::Square];
    spec.sizes = vec![16];
    spec.seeds = vec![1, 2];
    spec.controllers = vec![ControllerKind::Paper, ControllerKind::Center, ControllerKind::Greedy];
    spec.schedulers = vec![
        SchedulerKind::Fsync,
        SchedulerKind::Ssync { p: 50 },
        SchedulerKind::Crash { f: 2 },
        SchedulerKind::Async { s: 2 },
    ];
    spec
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gather-trace-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record_all(jobs: &[Scenario], threads: usize, dir: &Path) -> Vec<TraceJobOutcome> {
    let mut outcomes = Vec::new();
    executor::execute_jobs(
        jobs,
        threads,
        |sc| trace_ops::record_scenario(sc, dir),
        TraceJobOutcome::for_panic,
        |_i, outcome| {
            assert!(outcome.error.is_none(), "trace write failed: {:?}", outcome.error);
            outcomes.push(outcome);
            std::ops::ControlFlow::Continue(())
        },
    );
    outcomes
}

/// The headline acceptance property: record the small spec, then replay
/// every trace — zero divergent rounds, including the scenarios that
/// stall or disconnect (their failing evolution replays too).
#[test]
fn record_then_replay_reports_zero_divergence() {
    let dir = tmp_dir("replay");
    let jobs = small_spec().expand();
    let outcomes = record_all(&jobs, 4, &dir);
    assert_eq!(outcomes.len(), jobs.len());

    // Engine scenarios got traces; greedy did not.
    let engine_jobs: Vec<&Scenario> =
        jobs.iter().filter(|sc| sc.controller != ControllerKind::Greedy).collect();
    let files = trace_ops::list_trace_files(&dir).unwrap();
    assert_eq!(files.len(), engine_jobs.len(), "one trace per engine scenario");

    for file in &files {
        let report = trace_ops::replay_trace(file);
        assert!(
            matches!(report.status, ReplayStatus::Match { .. }),
            "{}: {:?}",
            report.id,
            report.status
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recording is deterministic down to the byte, across engine thread
/// counts and repeated runs — the property that makes traces usable as
/// regression baselines.
#[test]
fn recording_is_byte_identical_across_thread_counts() {
    let sc = Scenario {
        family: Family::Square,
        n: 16,
        seed: 3,
        controller: ControllerKind::Paper,
        scheduler: SchedulerKind::Ssync { p: 50 },
    };
    let points = sc.points();
    let budget = sc.budget(points.len());
    let header = TraceHeader {
        scenario_id: sc.id(),
        seed: sc.seed,
        config_digest: sc.config_digest(),
        initial: points.clone(),
    };
    let record_with_threads = |threads: usize| -> Vec<u8> {
        use std::cell::RefCell;
        use std::rc::Rc;
        let writer = TraceWriter::new(Vec::new(), &header).unwrap();
        let shared = Rc::new(RefCell::new(writer));
        let sink = shared.clone();
        RunSpec::new(sc.controller, &points)
            .scheduler(sc.scheduler)
            .seed(sc.seed)
            .budget(budget)
            .threads(threads)
            .observer(Box::new(move |rec| {
                sink.borrow_mut().write_round(rec).unwrap();
            }))
            .run();
        Rc::try_unwrap(shared).ok().unwrap().into_inner().finish().unwrap()
    };
    let reference = record_with_threads(1);
    assert!(!reference.is_empty());
    for threads in [2usize, 4] {
        assert_eq!(
            record_with_threads(threads),
            reference,
            "trace bytes changed with {threads} engine threads"
        );
    }
}

/// Two independent recordings of the same spec (different executor
/// thread counts) diff as zero drift.
#[test]
fn diff_between_recordings_reports_zero_drift() {
    let mut spec = small_spec();
    spec.seeds = vec![1];
    let jobs = spec.expand();
    let dir_a = tmp_dir("diff-a");
    let dir_b = tmp_dir("diff-b");
    record_all(&jobs, 1, &dir_a);
    record_all(&jobs, 8, &dir_b);
    let reports = trace_ops::diff_trace_dirs(&dir_a, &dir_b).unwrap();
    assert!(!reports.is_empty());
    for report in &reports {
        assert!(
            matches!(report.status, DiffStatus::Identical { .. }),
            "{}: {:?}",
            report.name,
            report.status
        );
    }
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

/// Perturbing one move in round R makes replay report round R exactly,
/// with the perturbed robot named; diff against the pristine trace
/// agrees.
#[test]
fn perturbed_trace_pins_the_exact_divergent_round() {
    let dir = tmp_dir("perturb");
    let sc = Scenario {
        family: Family::Line,
        n: 16,
        seed: 1,
        controller: ControllerKind::Paper,
        scheduler: SchedulerKind::Fsync,
    };
    let outcome = trace_ops::record_scenario(&sc, &dir);
    assert!(outcome.error.is_none());
    let path = outcome.trace_path.unwrap();

    // Decode, flip one move mid-run, re-encode under the same header.
    let mut reader = TraceReader::new(BufReader::new(File::open(&path).unwrap())).unwrap();
    let header = reader.header().clone();
    let mut rounds = read_all_rounds(&mut reader).unwrap();
    assert!(rounds.len() >= 3, "need a mid-run round to perturb");
    let victim = rounds.len() / 2;
    let perturbed_round = rounds[victim].round;
    let m = rounds[victim].moves.first_mut().expect("paper rounds always move someone");
    let perturbed_robot = m.robot;
    m.dx = -m.dx;
    m.dy = -m.dy;
    let pristine = path.clone();
    let perturbed = dir.join(trace_file_name("perturbed"));
    let mut w =
        TraceWriter::new(BufWriter::new(File::create(&perturbed).unwrap()), &header).unwrap();
    for rec in &rounds {
        w.write_round(rec).unwrap();
    }
    w.finish().unwrap().into_inner().unwrap();

    let report = trace_ops::replay_trace(&perturbed);
    match report.status {
        ReplayStatus::Diverged(d) => {
            assert_eq!(d.round, perturbed_round, "wrong divergent round");
            assert_eq!(d.robot, Some(perturbed_robot), "wrong divergent robot");
        }
        other => panic!("expected divergence, got {other:?}"),
    }
    match trace_ops::diff_trace_files(&pristine, &perturbed) {
        DiffStatus::Diverged(d) => {
            assert_eq!(d.round, perturbed_round);
            assert_eq!(d.robot, Some(perturbed_robot));
        }
        other => panic!("expected diff divergence, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A bumped format version is a loud, exact error — never a misparse.
#[test]
fn version_mismatch_is_reported_not_misparsed() {
    let dir = tmp_dir("version");
    let sc = Scenario {
        family: Family::Line,
        n: 16,
        seed: 1,
        controller: ControllerKind::Center,
        scheduler: SchedulerKind::Fsync,
    };
    let outcome = trace_ops::record_scenario(&sc, &dir);
    let path = outcome.trace_path.unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] = 0x63; // bump the version low byte
    std::fs::write(&path, &bytes).unwrap();
    let report = trace_ops::replay_trace(&path);
    match report.status {
        ReplayStatus::Error(e) => {
            assert!(e.contains("version"), "error should name the version: {e}");
        }
        other => panic!("expected a version error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A truncated trace (killed recorder) is an error, and a trace whose
/// scenario definition drifted (config digest) is refused.
#[test]
fn truncated_and_drifted_traces_are_refused() {
    let dir = tmp_dir("refuse");
    let sc = Scenario {
        family: Family::Line,
        n: 16,
        seed: 2,
        controller: ControllerKind::Paper,
        scheduler: SchedulerKind::Fsync,
    };
    let outcome = trace_ops::record_scenario(&sc, &dir);
    let path = outcome.trace_path.unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Killed recorder: drop the end marker and half the last round.
    let cut = dir.join(trace_file_name("cut"));
    std::fs::write(&cut, &bytes[..bytes.len() - bytes.len() / 4]).unwrap();
    assert!(
        matches!(
            trace_ops::replay_trace(&cut).status,
            ReplayStatus::Error(_) | ReplayStatus::Diverged(_)
        ),
        "truncation must not replay clean"
    );

    // Config drift: same file, doctored digest.
    let mut reader = TraceReader::new(BufReader::new(File::open(&path).unwrap())).unwrap();
    let mut header = reader.header().clone();
    let rounds = read_all_rounds(&mut reader).unwrap();
    header.config_digest ^= 1;
    let drifted = dir.join(trace_file_name("drifted"));
    let mut w = TraceWriter::new(BufWriter::new(File::create(&drifted).unwrap()), &header).unwrap();
    for rec in &rounds {
        w.write_round(rec).unwrap();
    }
    w.finish().unwrap().into_inner().unwrap();
    match trace_ops::replay_trace(&drifted).status {
        ReplayStatus::Error(e) => assert!(e.contains("config digest"), "{e}"),
        other => panic!("expected config-digest refusal, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `campaign render` pipeline: a recorded `.gtrc` replays into the
/// ASCII movie and the SVG frame strip through `gather-viz`, with the
/// final frame matching the scenario's real outcome.
#[test]
fn recorded_trace_renders_movie_and_svg_strip() {
    let dir = tmp_dir("render");
    let sc = Scenario {
        family: Family::Line,
        n: 16,
        seed: 1,
        controller: ControllerKind::Paper,
        scheduler: SchedulerKind::Fsync,
    };
    let outcome = trace_ops::record_scenario(&sc, &dir);
    assert!(outcome.error.is_none());
    let path = outcome.trace_path.expect("engine scenarios are traced");

    let mut reader = TraceReader::new(BufReader::new(File::open(&path).unwrap())).unwrap();
    let trace = gather_viz::Trace::from_reader(&mut reader, 1).expect("digest-verified replay");
    assert_eq!(trace.frames.len() as u64, 1 + outcome.record.rounds, "one frame per round + start");
    assert_eq!(trace.frames[0].points.len(), 16);
    let last = trace.frames.last().unwrap();
    assert_eq!(last.round, outcome.record.rounds);
    assert!(outcome.record.gathered && last.points.len() <= 4, "final frame is the gathered swarm");
    let movie = trace.render();
    assert!(movie.contains("--- round 0 ---"));
    assert!(movie.contains(&format!("--- round {} ---", outcome.record.rounds)));
    let strip = trace.render_svg_strip(4);
    assert!(strip.starts_with("<svg") && strip.ends_with("</svg>\n"));
    assert!(strip.matches("round ").count() == trace.frames.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
