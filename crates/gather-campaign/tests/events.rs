//! Integration tests for the observability surface: a campaign driven
//! through the observed executor + ProgressReporter emits a complete,
//! validating event stream (panics included); `--perf` records survive
//! the sink round trip with sane phase coverage; and profiling never
//! perturbs recorded traces.

use std::ops::ControlFlow;
use std::path::PathBuf;

use gather_bench::{ControllerKind, SchedulerKind};
use gather_campaign::executor::{self, JobEvent};
use gather_campaign::{
    load_records, trace_ops, CampaignSpec, JsonlSink, ProgressReporter, Scenario, ScenarioRecord,
};
use gather_obs::{read_events, validate, Event, Status};
use gather_workloads::Family;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gather-events-test-{name}-{}", std::process::id()))
}

fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::named("events-test");
    spec.families = vec![Family::Line, Family::Square];
    spec.sizes = vec![16];
    spec.seeds = vec![1, 2];
    spec.controllers = vec![ControllerKind::Paper];
    spec.schedulers = vec![SchedulerKind::Fsync];
    spec
}

/// The bin's `run --events` wiring, end to end: every scenario gets
/// exactly one started/finished pair, panics are isolated and counted,
/// and the stream terminates with `job_finished` — so `events tail`
/// would exit zero on it.
#[test]
fn observed_campaign_emits_a_complete_validating_stream() {
    let jobs = small_spec().expand();
    let events_path = tmp("stream.ndjson");
    let out = tmp("stream-results.jsonl");
    let mut sink = JsonlSink::create(&out).unwrap();
    let mut reporter =
        ProgressReporter::start("events-test", jobs.len(), Some(&events_path), false, true)
            .unwrap();
    executor::execute_jobs_observed(
        &jobs,
        4,
        |sc: &Scenario| {
            // One scenario panics mid-run; the stream must still pair
            // and terminate cleanly.
            if sc.seed == 2 && sc.family == Family::Square {
                panic!("injected failure");
            }
            sc.run()
        },
        |sc, secs| {
            let mut rec = ScenarioRecord::for_panic(sc);
            rec.secs = secs;
            rec
        },
        |event| {
            match event {
                JobEvent::Started(i) => reporter.scenario_started(&jobs[i].id()).unwrap(),
                JobEvent::Finished(_i, rec, secs) => {
                    sink.write(&rec).unwrap();
                    reporter.scenario_finished(&rec, secs).unwrap();
                }
            }
            ControlFlow::Continue(())
        },
    );
    reporter.finish().unwrap();
    drop(sink);

    let stream = read_events(&events_path).unwrap();
    assert!(!stream.torn);
    assert_eq!(stream.skipped, 0);
    let summary = validate(&stream.events).unwrap();
    assert!(summary.complete, "a finished campaign must end with job_finished");
    assert_eq!(summary.finished, jobs.len());
    assert_eq!(summary.done, jobs.len());
    assert_eq!(summary.panicked, 1);
    assert_eq!(summary.job, "events-test");

    // Panicked scenarios report their real (nonzero-capable) elapsed
    // time in the stream, and every finished event carries secs >= 0.
    let finish_secs: Vec<f64> = stream
        .events
        .iter()
        .filter_map(|e| match e {
            Event::ScenarioFinished { secs, .. } => Some(*secs),
            _ => None,
        })
        .collect();
    assert_eq!(finish_secs.len(), jobs.len());
    assert!(finish_secs.iter().all(|s| *s >= 0.0));
    let panics = stream
        .events
        .iter()
        .filter(|e| matches!(e, Event::ScenarioFinished { status: Status::Panicked, .. }))
        .count();
    assert_eq!(panics, 1);

    std::fs::remove_file(&events_path).unwrap();
    std::fs::remove_file(&out).unwrap();
}

/// `--perf` records round-trip through the JSONL sink and carry a phase
/// breakdown that accounts for the round loop's wall time.
#[test]
fn profiled_records_round_trip_with_sane_coverage() {
    let sc = Scenario {
        family: Family::Clusters,
        n: 256,
        seed: 3,
        controller: ControllerKind::Paper,
        scheduler: SchedulerKind::Fsync,
    };
    let rec = sc.run_profiled();
    assert!(rec.secs > 0.0, "profiled runs measure wall time");
    let perf = rec.perf.as_ref().expect("profiled engine runs carry a perf block");
    assert!(perf.rounds > 0);
    assert!(perf.wall_s > 0.0);
    // The named phases must account for the large majority of the round
    // loop (the remainder is loop scaffolding between probes).
    let coverage = perf.coverage();
    assert!(coverage > 0.8, "phase coverage {coverage} too low");

    let out = tmp("perf-results.jsonl");
    let mut sink = JsonlSink::create(&out).unwrap();
    sink.write(&rec).unwrap();
    drop(sink);
    let (records, skipped) = load_records(&out).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(records.len(), 1);
    assert_eq!(records[0], rec, "perf fields must survive the sink round trip");
    std::fs::remove_file(&out).unwrap();
}

/// The acceptance property: recording a trace with profiling on yields
/// a byte-identical `.gtrc` to recording without — observation never
/// perturbs results.
#[test]
fn profiling_never_perturbs_recorded_traces() {
    let sc = Scenario {
        family: Family::RandomBlob,
        n: 64,
        seed: 5,
        controller: ControllerKind::Paper,
        scheduler: SchedulerKind::Ssync { p: 50 },
    };
    let plain_dir = tmp("trace-plain");
    let perf_dir = tmp("trace-perf");
    std::fs::create_dir_all(&plain_dir).unwrap();
    std::fs::create_dir_all(&perf_dir).unwrap();

    let plain = trace_ops::record_scenario(&sc, &plain_dir);
    let profiled = trace_ops::record_scenario_profiled(&sc, &perf_dir, true);
    assert!(plain.error.is_none() && profiled.error.is_none());
    assert!(profiled.record.perf.is_some(), "perf recording carries the phase breakdown");
    assert_eq!(plain.record.rounds, profiled.record.rounds, "profiling changed the simulation");

    let a = std::fs::read(plain.trace_path.as_ref().unwrap()).unwrap();
    let b = std::fs::read(profiled.trace_path.as_ref().unwrap()).unwrap();
    assert_eq!(a, b, "profiling must leave traces byte-identical");

    std::fs::remove_dir_all(&plain_dir).unwrap();
    std::fs::remove_dir_all(&perf_dir).unwrap();
}
