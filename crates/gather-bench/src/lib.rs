//! # gather-bench
//!
//! Shared experiment harness for the criterion benches and the `report`
//! binary that regenerates every table in EXPERIMENTS.md. Each function
//! corresponds to an experiment ID from DESIGN.md §4.

use gather_baselines::{AsyncGreedy, GoToCenter};
use gather_core::{GatherConfig, GatherController};
use grid_engine::{
    ConnectivityCheck, Engine, EngineConfig, EngineError, OrientationMode, Point, RunOutcome,
};

/// Outcome of one measured gathering run.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub n: usize,
    pub rounds: u64,
    pub merges: usize,
    pub gathered: bool,
    /// Whether the swarm was still 4-connected when the run ended.
    /// The paper's algorithm never disconnects; the GoToCenter
    /// baseline can (its continuous-motion safety argument does not
    /// transfer to the grid), which E8 reports.
    pub connected: bool,
}

/// The strategies a measured run can execute — the shared registry used
/// by the campaign engine, the report binary, and the benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ControllerKind {
    /// The paper's O(n) algorithm with the §5 constants.
    Paper,
    /// The GoToCenter baseline (grid adaptation of [DKL+11]).
    Center,
    /// The sequential fair-scheduler greedy baseline.
    Greedy,
}

impl ControllerKind {
    /// Every controller, in a stable report order.
    pub const ALL: [ControllerKind; 3] =
        [ControllerKind::Paper, ControllerKind::Center, ControllerKind::Greedy];

    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::Paper => "paper",
            ControllerKind::Center => "center",
            ControllerKind::Greedy => "greedy",
        }
    }

    pub fn parse(s: &str) -> Option<ControllerKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn engine_config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        connectivity: ConnectivityCheck::Never,
        keep_history: false,
        stall_limit: 200_000,
    }
}

/// The shared job-execution path: run `kind` on `points` until gathered
/// or the budget dies, with `engine_threads` compute workers inside the
/// engine (0 = available parallelism; campaign jobs pass 1 because they
/// parallelise across scenarios instead). Results are independent of the
/// thread count — the engine's compute step is a deterministic parallel
/// map.
pub fn run_measured(
    kind: ControllerKind,
    points: &[Point],
    seed: u64,
    budget: u64,
    engine_threads: usize,
) -> Measurement {
    match kind {
        ControllerKind::Paper => {
            run_paper_configured(points, seed, GatherConfig::paper(), budget, engine_threads)
        }
        ControllerKind::Center => run_center_threads(points, seed, budget, engine_threads),
        ControllerKind::Greedy => run_greedy(points, budget),
    }
}

fn run_paper_configured(
    points: &[Point],
    seed: u64,
    cfg: GatherConfig,
    budget: u64,
    threads: usize,
) -> Measurement {
    let controller = GatherController::with_config(cfg).expect("valid config");
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        controller,
        engine_config(threads),
    );
    finish(points.len(), engine.run_until_gathered(budget), &mut engine)
}

/// Run the paper's algorithm on `points` until gathered (or the budget
/// dies). `seed` scrambles per-robot orientations (no-compass model).
pub fn run_paper(points: &[Point], seed: u64, cfg: GatherConfig, budget: u64) -> Measurement {
    run_paper_configured(points, seed, cfg, budget, 0)
}

/// Same, pinned to a given worker-thread count (E10).
pub fn run_paper_threads(points: &[Point], seed: u64, threads: usize, budget: u64) -> Measurement {
    run_paper_configured(points, seed, GatherConfig::paper(), budget, threads)
}

/// Run the GoToCenter baseline (E8). Connectivity is *observed*, not
/// enforced: the baseline is allowed to break the model's invariant so
/// the experiment can report how often it does.
pub fn run_center(points: &[Point], seed: u64, budget: u64) -> Measurement {
    run_center_threads(points, seed, budget, 0)
}

/// [`run_center`] pinned to a given engine worker-thread count.
pub fn run_center_threads(points: &[Point], seed: u64, budget: u64, threads: usize) -> Measurement {
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        GoToCenter::paper_radius(),
        engine_config(threads),
    );
    let result = engine.run_until_gathered(budget);
    let connected = grid_engine::connectivity::is_connected(&engine.swarm);
    let mut m = finish(points.len(), result, &mut engine);
    m.connected = connected;
    m
}

/// Run the sequential greedy baseline (E8/E9 reference).
pub fn run_greedy(points: &[Point], budget: u64) -> Measurement {
    let n = points.len();
    match AsyncGreedy::new(points).run(budget) {
        Ok(out) => Measurement {
            n,
            rounds: out.rounds,
            merges: out.merged,
            gathered: true,
            connected: true,
        },
        Err(_) => Measurement { n, rounds: budget, merges: 0, gathered: false, connected: true },
    }
}

fn finish<C: grid_engine::Controller>(
    n: usize,
    result: Result<RunOutcome, EngineError>,
    engine: &mut Engine<C>,
) -> Measurement {
    match result {
        Ok(out) => Measurement {
            n,
            rounds: out.rounds,
            merges: out.metrics.total_merged,
            gathered: true,
            connected: true,
        },
        Err(_) => Measurement {
            n,
            rounds: engine.round(),
            merges: engine.metrics().total_merged,
            gathered: false,
            connected: true,
        },
    }
}

/// The budget used by scaling experiments: generous multiple of the
/// theoretical O(n) bound.
pub fn budget_for(n: usize) -> u64 {
    500 * n as u64 + 20_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_paper_algorithm() {
        let m = run_paper(&gather_workloads::line(32), 1, GatherConfig::paper(), 1000);
        assert!(m.gathered);
        assert!(m.rounds <= 32);
        assert_eq!(m.n, 32);
    }

    #[test]
    fn harness_runs_baselines() {
        let pts = gather_workloads::random_blob(64, 5);
        assert!(run_center(&pts, 1, 5000).gathered);
        assert!(run_greedy(&pts, 500).gathered);
    }

    #[test]
    fn controller_kind_registry_round_trips() {
        for kind in ControllerKind::ALL {
            assert_eq!(ControllerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ControllerKind::parse("nope"), None);
    }

    #[test]
    fn run_measured_matches_dedicated_runners() {
        let pts = gather_workloads::line(48);
        let direct = run_paper(&pts, 9, GatherConfig::paper(), 5_000);
        let shared = run_measured(ControllerKind::Paper, &pts, 9, 5_000, 1);
        assert_eq!(direct.rounds, shared.rounds);
        assert_eq!(direct.merges, shared.merges);
        for kind in ControllerKind::ALL {
            let m = run_measured(kind, &pts, 9, 25_000, 1);
            assert_eq!(m.n, 48, "{kind}");
            assert!(m.gathered, "{kind} did not gather a short line");
        }
    }
}
