//! # gather-bench
//!
//! Shared experiment harness for the criterion benches and the `report`
//! binary that regenerates every table in EXPERIMENTS.md. Each function
//! corresponds to an experiment ID from DESIGN.md §4.

use gather_baselines::{AsyncGreedy, GoToCenter};
use gather_core::{GatherConfig, GatherController};
use grid_engine::connectivity::is_connected;
use grid_engine::{
    BoxedProfileSink, BoxedRoundObserver, ConnectivityCheck, Engine, EngineConfig, EngineError,
    OrientationMode, Point, RunOutcome, Scheduler,
};

/// Outcome of one measured gathering run.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub n: usize,
    pub rounds: u64,
    pub merges: usize,
    pub gathered: bool,
    /// Whether the swarm was still 4-connected when the run ended —
    /// measured on the actual final swarm on every path, success or
    /// failure. The paper's algorithm never disconnects; the GoToCenter
    /// baseline can (its continuous-motion safety argument does not
    /// transfer to the grid), which E8 reports.
    pub connected: bool,
    /// Total robot activations across the run — the scheduler-honest
    /// work measure (`rounds · n`-ish under FSYNC, less under SSYNC and
    /// round-robin, so rounds alone would flatter the weak schedulers).
    pub activations: u64,
}

/// The strategies a measured run can execute — the shared registry used
/// by the campaign engine, the report binary, and the benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ControllerKind {
    /// The paper's O(n) algorithm with the §5 constants.
    Paper,
    /// The GoToCenter baseline (grid adaptation of [DKL+11]).
    Center,
    /// The sequential fair-scheduler greedy baseline.
    Greedy,
}

impl ControllerKind {
    /// Every controller, in a stable report order.
    pub const ALL: [ControllerKind; 3] =
        [ControllerKind::Paper, ControllerKind::Center, ControllerKind::Greedy];

    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::Paper => "paper",
            ControllerKind::Center => "center",
            ControllerKind::Greedy => "greedy",
        }
    }

    pub fn parse(s: &str) -> Option<ControllerKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Seed-free activation-policy registry: what a campaign axis stores.
/// Combined with the scenario's orientation seed it yields the engine's
/// [`Scheduler`] (so one scenario seed pins the entire run, schedulers
/// included).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchedulerKind {
    /// Fully synchronous (the paper's model; the legacy default).
    Fsync,
    /// Semi-synchronous: each robot activates with probability `p`%.
    Ssync {
        /// Activation probability in percent, `1..=100`.
        p: u8,
    },
    /// Deterministic rotating window of `k` robots (ASYNC-flavoured).
    RoundRobin { k: u32 },
    /// Crash-stop faults over FSYNC: up to `f` seeded victims stop
    /// being activated forever once their seeded crash round arrives.
    Crash { f: u32 },
    /// Full ASYNC: every look draws a seeded delay in `0..=s` rounds
    /// before its move commits, so robots compute on views up to `s`
    /// rounds stale. `s >= 1` (`s = 0` is fsync).
    Async { s: u32 },
}

impl SchedulerKind {
    /// Stable name, also the scenario-ID segment: `fsync`, `ssync-p50`,
    /// `rr4`, `crash-f3`, `async-s4`. [`std::str::FromStr`] is the one
    /// inverse — every surface that names a scheduler (CLI flags, spec
    /// files, service wire fields, smoke `--scheduler`, trace-header
    /// scenario IDs) round-trips through this pair.
    pub fn name(self) -> String {
        match self {
            SchedulerKind::Fsync => "fsync".into(),
            SchedulerKind::Ssync { p } => format!("ssync-p{p}"),
            SchedulerKind::RoundRobin { k } => format!("rr{k}"),
            SchedulerKind::Crash { f } => format!("crash-f{f}"),
            SchedulerKind::Async { s } => format!("async-s{s}"),
        }
    }

    /// The engine policy, with the per-run seed mixed in for the seeded
    /// kinds (SSYNC draws, crash victims, ASYNC delays) and the initial
    /// population pinned for crash faults — victim draws must not
    /// re-roll as merges shrink the live count.
    pub fn to_policy(self, seed: u64, n0: usize) -> Scheduler {
        match self {
            SchedulerKind::Fsync => Scheduler::Fsync,
            SchedulerKind::Ssync { p } => Scheduler::Ssync { seed, p },
            SchedulerKind::RoundRobin { k } => Scheduler::RoundRobin { k },
            SchedulerKind::Crash { f } => Scheduler::Crash { seed, f, n0: n0 as u32 },
            SchedulerKind::Async { s } => Scheduler::Async { seed, staleness: s },
        }
    }

    /// Are the kind's parameters in range (parsing only produces valid
    /// kinds; hand-built specs go through this in `validate`)?
    pub fn validate(self) -> Result<(), String> {
        match self {
            SchedulerKind::Fsync => Ok(()),
            SchedulerKind::Ssync { p } if (1..=100).contains(&p) => Ok(()),
            SchedulerKind::Ssync { p } => Err(format!("ssync p={p} outside 1..=100")),
            SchedulerKind::RoundRobin { k } if k >= 1 => Ok(()),
            SchedulerKind::RoundRobin { .. } => Err("round-robin k must be >= 1".into()),
            SchedulerKind::Crash { f } if f >= 1 => Ok(()),
            SchedulerKind::Crash { .. } => Err("crash f must be >= 1 (f = 0 is fsync)".into()),
            SchedulerKind::Async { s } if s >= 1 => Ok(()),
            SchedulerKind::Async { .. } => Err("async s must be >= 1 (s = 0 is fsync)".into()),
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    /// Parse a scheduler name as produced by [`SchedulerKind::name`] —
    /// the single scheduler parser in the workspace. Rejects
    /// out-of-range parameters (`p` outside `1..=100`, `k = 0`,
    /// `f = 0`, `s = 0`) with the reason.
    fn from_str(s: &str) -> Result<SchedulerKind, String> {
        let kind = if s == "fsync" {
            SchedulerKind::Fsync
        } else if let Some(p) = s.strip_prefix("ssync-p") {
            SchedulerKind::Ssync { p: parse_param(s, p)? }
        } else if let Some(f) = s.strip_prefix("crash-f") {
            SchedulerKind::Crash { f: parse_param(s, f)? }
        } else if let Some(k) = s.strip_prefix("rr") {
            SchedulerKind::RoundRobin { k: parse_param(s, k)? }
        } else if let Some(d) = s.strip_prefix("async-s") {
            SchedulerKind::Async { s: parse_param(s, d)? }
        } else {
            return Err(format!(
                "unknown scheduler {s:?} (expected fsync, ssync-pP, rrK, crash-fF or async-sK)"
            ));
        };
        kind.validate().map_err(|why| format!("scheduler {s:?}: {why}"))?;
        Ok(kind)
    }
}

fn parse_param<T: std::str::FromStr>(name: &str, digits: &str) -> Result<T, String> {
    digits.parse().map_err(|_| format!("scheduler {name:?} has a malformed parameter"))
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

fn engine_config(threads: usize, scheduler: Scheduler) -> EngineConfig {
    // FSYNC keeps the historical no-check configuration so measured
    // rounds stay bit-identical with pre-scheduler result files. The
    // weaker schedulers genuinely break the paper's connectivity
    // invariant on 2-D shapes (the safety argument leans on
    // simultaneous moves), so probe every 64 rounds and stop a
    // disconnected run at its violation instead of burning the whole
    // stall budget on a swarm that can no longer gather.
    let connectivity = match scheduler {
        Scheduler::Fsync => ConnectivityCheck::Never,
        _ => ConnectivityCheck::Every(64),
    };
    EngineConfig { threads, connectivity, keep_history: false, stall_limit: 200_000, scheduler }
}

/// Builder for a measured run — the one job-execution entry point the
/// campaign executor, the trace recorder, the smoke harness, and the
/// benches all go through (it replaced the old three-deep
/// `run_measured` / `run_measured_observed` / `run_measured_instrumented`
/// delegation chain).
///
/// Mandatory inputs are the constructor's; everything else defaults:
/// FSYNC scheduling, seed 0, [`budget_for`] the population, one engine
/// worker thread (campaign jobs parallelise across scenarios, not
/// within them; pass `threads(0)` for available parallelism). Results
/// are independent of the thread count — the engine's compute step is
/// a deterministic parallel map and the activation set is a pure
/// function of `(scheduler, seed, round)`.
///
/// ```no_run
/// # use gather_bench::{ControllerKind, RunSpec, SchedulerKind};
/// let pts = gather_workloads::line(64);
/// let m = RunSpec::new(ControllerKind::Paper, &pts)
///     .scheduler(SchedulerKind::Async { s: 4 })
///     .seed(11)
///     .run();
/// ```
///
/// The optional `observer` receives one [`grid_engine::RoundRecord`]
/// per engine round (the recording hook the trace subsystem uses); the
/// optional `profiler` receives per-round phase timings (`campaign run
/// --perf`). Neither perturbs the measured result. The greedy baseline
/// is its own sequential fair scheduler (that is the point of the
/// strawman), so `scheduler` does not apply to it and its runs invoke
/// the observer and profiler zero times — campaigns skip tracing it.
pub struct RunSpec<'a> {
    controller: ControllerKind,
    points: &'a [Point],
    scheduler: SchedulerKind,
    seed: u64,
    budget: Option<u64>,
    threads: usize,
    observer: Option<BoxedRoundObserver>,
    profiler: Option<BoxedProfileSink>,
}

impl<'a> RunSpec<'a> {
    /// A run of `controller` on `points` with every option defaulted.
    pub fn new(controller: ControllerKind, points: &'a [Point]) -> Self {
        RunSpec {
            controller,
            points,
            scheduler: SchedulerKind::Fsync,
            seed: 0,
            budget: None,
            threads: 1,
            observer: None,
            profiler: None,
        }
    }

    /// Activation policy (default FSYNC).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Orientation-scrambling and scheduler seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Round budget (default [`budget_for`] the population).
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Engine worker threads (default 1; 0 = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attach a per-round record observer.
    pub fn observer(mut self, observer: BoxedRoundObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attach a per-round profile sink.
    pub fn profiler(mut self, profiler: BoxedProfileSink) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Execute the run until gathered or the budget dies.
    pub fn run(self) -> Measurement {
        let RunSpec { controller, points, scheduler, seed, budget, threads, observer, profiler } =
            self;
        let budget = budget.unwrap_or_else(|| budget_for(points.len()));
        let policy = scheduler.to_policy(seed, points.len());
        match controller {
            ControllerKind::Paper => run_paper_configured(
                points,
                seed,
                GatherConfig::paper(),
                budget,
                threads,
                policy,
                observer,
                profiler,
            ),
            ControllerKind::Center => {
                run_center_configured(points, seed, budget, threads, policy, observer, profiler)
            }
            ControllerKind::Greedy => run_greedy(points, budget),
        }
    }
}

impl std::fmt::Debug for RunSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("controller", &self.controller)
            .field("scheduler", &self.scheduler)
            .field("n", &self.points.len())
            .field("seed", &self.seed)
            .field("budget", &self.budget)
            .field("threads", &self.threads)
            .field("observer", &self.observer.is_some())
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_paper_configured(
    points: &[Point],
    seed: u64,
    cfg: GatherConfig,
    budget: u64,
    threads: usize,
    scheduler: Scheduler,
    observer: Option<BoxedRoundObserver>,
    profiler: Option<BoxedProfileSink>,
) -> Measurement {
    let controller = GatherController::with_config(cfg).expect("valid config");
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        controller,
        engine_config(threads, scheduler),
    );
    if let Some(observer) = observer {
        engine.set_observer(observer);
    }
    if let Some(profiler) = profiler {
        engine.set_profiler(profiler);
    }
    finish(points.len(), engine.run_until_gathered(budget), &mut engine)
}

/// Run the paper's algorithm on `points` until gathered (or the budget
/// dies). `seed` scrambles per-robot orientations (no-compass model).
pub fn run_paper(points: &[Point], seed: u64, cfg: GatherConfig, budget: u64) -> Measurement {
    run_paper_configured(points, seed, cfg, budget, 0, Scheduler::Fsync, None, None)
}

/// Same, pinned to a given worker-thread count (E10).
pub fn run_paper_threads(points: &[Point], seed: u64, threads: usize, budget: u64) -> Measurement {
    run_paper_configured(
        points,
        seed,
        GatherConfig::paper(),
        budget,
        threads,
        Scheduler::Fsync,
        None,
        None,
    )
}

/// Run the GoToCenter baseline (E8). Connectivity is *observed*, not
/// enforced: the baseline is allowed to break the model's invariant so
/// the experiment can report how often it does.
pub fn run_center(points: &[Point], seed: u64, budget: u64) -> Measurement {
    run_center_configured(points, seed, budget, 0, Scheduler::Fsync, None, None)
}

/// [`run_center`] pinned to a given engine worker-thread count.
pub fn run_center_threads(points: &[Point], seed: u64, budget: u64, threads: usize) -> Measurement {
    run_center_configured(points, seed, budget, threads, Scheduler::Fsync, None, None)
}

fn run_center_configured(
    points: &[Point],
    seed: u64,
    budget: u64,
    threads: usize,
    scheduler: Scheduler,
    observer: Option<BoxedRoundObserver>,
    profiler: Option<BoxedProfileSink>,
) -> Measurement {
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        GoToCenter::paper_radius(),
        engine_config(threads, scheduler),
    );
    if let Some(observer) = observer {
        engine.set_observer(observer);
    }
    if let Some(profiler) = profiler {
        engine.set_profiler(profiler);
    }
    finish(points.len(), engine.run_until_gathered(budget), &mut engine)
}

/// Run the sequential greedy baseline (E8/E9 reference). A failed run
/// (budget exhausted, no progress) reports the rounds, merges and
/// activations it actually achieved — not zeros — and connectivity is
/// measured on the final swarm, like every other runner.
pub fn run_greedy(points: &[Point], budget: u64) -> Measurement {
    let n = points.len();
    let mut greedy = AsyncGreedy::new(points);
    let gathered = greedy.run(budget).is_ok();
    Measurement {
        n,
        rounds: greedy.rounds(),
        merges: greedy.merged(),
        gathered,
        connected: is_connected(greedy.swarm()),
        activations: greedy.activations(),
    }
}

/// Fold an engine run into a [`Measurement`]. Truthful on every path:
/// `connected` is computed from the swarm the run actually ended with,
/// and a failed run keeps its real rounds/merges/activations (an
/// earlier version reported `connected: true` even for
/// [`EngineError::Disconnected`]).
fn finish<C: grid_engine::Controller>(
    n: usize,
    result: Result<RunOutcome, EngineError>,
    engine: &mut Engine<C>,
) -> Measurement {
    let (rounds, gathered) = match &result {
        Ok(out) => (out.rounds, true),
        Err(_) => (engine.round(), false),
    };
    Measurement {
        n,
        rounds,
        merges: engine.metrics().total_merged,
        gathered,
        connected: is_connected(&engine.swarm),
        activations: engine.metrics().total_activations,
    }
}

/// The budget used by scaling experiments: generous multiple of the
/// theoretical O(n) bound.
pub fn budget_for(n: usize) -> u64 {
    500 * n as u64 + 20_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_paper_algorithm() {
        let m = run_paper(&gather_workloads::line(32), 1, GatherConfig::paper(), 1000);
        assert!(m.gathered);
        assert!(m.rounds <= 32);
        assert_eq!(m.n, 32);
        assert!(m.activations >= 32, "FSYNC activates everyone every round");
    }

    #[test]
    fn harness_runs_baselines() {
        let pts = gather_workloads::random_blob(64, 5);
        assert!(run_center(&pts, 1, 5000).gathered);
        assert!(run_greedy(&pts, 500).gathered);
    }

    #[test]
    fn controller_kind_registry_round_trips() {
        for kind in ControllerKind::ALL {
            assert_eq!(ControllerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ControllerKind::parse("nope"), None);
    }

    #[test]
    fn scheduler_kind_registry_round_trips() {
        for kind in [
            SchedulerKind::Fsync,
            SchedulerKind::Ssync { p: 50 },
            SchedulerKind::Ssync { p: 1 },
            SchedulerKind::Ssync { p: 100 },
            SchedulerKind::RoundRobin { k: 1 },
            SchedulerKind::RoundRobin { k: 4 },
            SchedulerKind::Crash { f: 1 },
            SchedulerKind::Crash { f: 12 },
            SchedulerKind::Async { s: 1 },
            SchedulerKind::Async { s: 4 },
        ] {
            assert_eq!(kind.name().parse(), Ok(kind), "{kind}");
            assert!(kind.validate().is_ok());
        }
        for bad in [
            "nope",
            "ssync-p0",
            "ssync-p101",
            "ssync-p",
            "rr0",
            "rr",
            "rr-1",
            "fsync2",
            "crash-f0",
            "crash-f",
            "crash-f-1",
            "crash",
            "async-s0",
            "async-s",
            "async-s-1",
            "async",
        ] {
            assert!(bad.parse::<SchedulerKind>().is_err(), "{bad:?} must not parse");
        }
        assert!(SchedulerKind::Ssync { p: 0 }.validate().is_err());
        assert!(SchedulerKind::RoundRobin { k: 0 }.validate().is_err());
        assert!(SchedulerKind::Crash { f: 0 }.validate().is_err());
        assert!(SchedulerKind::Async { s: 0 }.validate().is_err());
    }

    #[test]
    fn crash_runs_are_reproducible_and_actually_deactivate_robots() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // A crashed robot is a permanent obstacle, so gathering can
        // genuinely fail — the point of the fault model. Whatever the
        // outcome, it must be deterministic, and some round must
        // activate strictly fewer robots than are alive (comparing
        // totals against `rounds · n` would pass vacuously once any
        // merge shrinks the population).
        let pts = gather_workloads::line(32);
        let sched = SchedulerKind::Crash { f: 3 };
        let budget = budget_for(pts.len());
        let run = || {
            RunSpec::new(ControllerKind::Paper, &pts).scheduler(sched).seed(11).budget(budget).run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.activations, b.activations);
        assert_eq!(a.gathered, b.gathered);
        assert!(a.rounds > 0 && a.activations > 0);

        // A given seed's crash rounds can all land after a short run
        // gathers, so scan a few seeds: at least one must show a round
        // that activates strictly fewer robots than are alive. (This
        // is the non-vacuous form — comparing activation totals against
        // `rounds · n` passes for plain FSYNC too once merges shrink
        // the population.)
        let saw_crashed_round = (0..10u64).any(|seed| {
            let rounds: Rc<RefCell<Vec<grid_engine::RoundRecord>>> = Rc::default();
            let sink = rounds.clone();
            RunSpec::new(ControllerKind::Paper, &pts)
                .scheduler(sched)
                .seed(seed)
                .budget(budget)
                .observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())))
                .run();
            let mut population = pts.len();
            let recs = rounds.borrow();
            let crashed = recs.iter().any(|rec| {
                let crashed = rec.activated.len(population) < population;
                population = rec.population as usize;
                crashed
            });
            crashed
        });
        assert!(saw_crashed_round, "no seed in 0..10 ever deactivated a live robot");
    }

    #[test]
    fn observed_runs_stream_rounds_and_match_unobserved_results() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let pts = gather_workloads::line(24);
        let plain = RunSpec::new(ControllerKind::Paper, &pts).seed(2).budget(1000).run();
        let rounds: Rc<RefCell<Vec<grid_engine::RoundRecord>>> = Rc::default();
        let sink = rounds.clone();
        let observed = RunSpec::new(ControllerKind::Paper, &pts)
            .seed(2)
            .budget(1000)
            .observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())))
            .run();
        assert_eq!(observed.rounds, plain.rounds, "observing changed the run");
        assert_eq!(observed.merges, plain.merges);
        let rounds = rounds.borrow();
        assert_eq!(rounds.len() as u64, plain.rounds, "one record per round");
        let merged: u32 = rounds.iter().map(|r| r.merged).sum();
        assert_eq!(merged as usize, plain.merges);

        // The greedy strawman has no engine rounds: observer untouched.
        let greedy_rounds: Rc<RefCell<Vec<grid_engine::RoundRecord>>> = Rc::default();
        let sink = greedy_rounds.clone();
        RunSpec::new(ControllerKind::Greedy, &pts)
            .seed(2)
            .budget(1000)
            .observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())))
            .run();
        assert!(greedy_rounds.borrow().is_empty());
    }

    #[test]
    fn run_measured_matches_dedicated_runners() {
        let pts = gather_workloads::line(48);
        let direct = run_paper(&pts, 9, GatherConfig::paper(), 5_000);
        let shared = RunSpec::new(ControllerKind::Paper, &pts).seed(9).budget(5_000).run();
        assert_eq!(direct.rounds, shared.rounds);
        assert_eq!(direct.merges, shared.merges);
        assert_eq!(direct.activations, shared.activations);
        for kind in ControllerKind::ALL {
            let m = RunSpec::new(kind, &pts).seed(9).budget(25_000).run();
            assert_eq!(m.n, 48, "{kind}");
            assert!(m.gathered, "{kind} did not gather a short line");
            assert!(m.connected, "{kind} final swarm must be connected");
        }
    }

    #[test]
    fn failed_runs_report_truthfully() {
        // A 1-round budget cannot gather a 32-line under the engine
        // controllers: the measurement must keep the real (partial)
        // counters and measure connectivity on the actual final swarm.
        let pts = gather_workloads::line(32);
        for kind in [ControllerKind::Paper, ControllerKind::Center] {
            let m = RunSpec::new(kind, &pts).seed(3).budget(1).run();
            assert!(!m.gathered, "{kind}");
            assert_eq!(m.rounds, 1, "{kind}");
            assert!(m.connected, "{kind}: neither controller disconnects a line in one round");
            assert_eq!(m.activations, 32, "{kind}: one FSYNC round activates everyone");
        }
        // The greedy cascade eats a line in one pass, so starve it on a
        // blob that needs several: the partial pass must stay recorded.
        let blob = gather_workloads::random_blob(150, 7);
        let m = run_greedy(&blob, 1);
        assert!(!m.gathered);
        assert_eq!(m.rounds, 1, "greedy failure must keep its real pass count");
        assert!(m.merges > 0, "greedy failure must keep its real merge count");
        assert!(m.connected, "greedy never disconnects");
    }

    #[test]
    fn ssync_and_round_robin_runs_are_reproducible_and_gather() {
        // Combos that empirically survive weak synchrony: the paper's
        // algorithm on lines, and the GoToCenter baseline on the 2-D
        // families (see `paper_algorithm_breaks_off_fsync_on_2d_shapes`
        // for the honest other half).
        let combos: Vec<(ControllerKind, Vec<Point>)> = vec![
            (ControllerKind::Paper, gather_workloads::line(24)),
            (ControllerKind::Paper, gather_workloads::line(48)),
            (ControllerKind::Center, gather_workloads::square(5)),
            (ControllerKind::Center, gather_workloads::random_blob(24, 3)),
            (ControllerKind::Center, gather_workloads::hollow_rectangle(6, 6, 1)),
        ];
        for (ctrl, pts) in &combos {
            for sched in [SchedulerKind::Ssync { p: 50 }, SchedulerKind::RoundRobin { k: 4 }] {
                // Partial activation stretches rounds by ~n/k (resp.
                // 100/p), so scale the FSYNC budget accordingly.
                let budget = budget_for(pts.len()) * pts.len() as u64;
                let run = || RunSpec::new(*ctrl, pts).scheduler(sched).seed(5).budget(budget).run();
                let (a, b) = (run(), run());
                assert_eq!(a.rounds, b.rounds, "{ctrl}/{sched} not reproducible");
                assert_eq!(a.merges, b.merges, "{ctrl}/{sched} not reproducible");
                assert_eq!(a.activations, b.activations, "{ctrl}/{sched} not reproducible");
                assert!(a.gathered, "{ctrl}/{sched} did not gather");
                assert!(
                    a.activations < a.rounds * pts.len() as u64,
                    "{ctrl}/{sched} must do strictly less work per round than FSYNC"
                );
            }
        }
        // Different seeds give different SSYNC activation draws.
        let pts = gather_workloads::line(48);
        let sched = SchedulerKind::Ssync { p: 50 };
        let budget = budget_for(pts.len()) * pts.len() as u64;
        let a =
            RunSpec::new(ControllerKind::Paper, &pts).scheduler(sched).seed(5).budget(budget).run();
        let c =
            RunSpec::new(ControllerKind::Paper, &pts).scheduler(sched).seed(6).budget(budget).run();
        assert!(
            a.rounds != c.rounds || a.activations != c.activations,
            "independent seeds should not collide on both rounds and activations"
        );
    }

    #[test]
    fn async_runs_are_reproducible_and_stretch_rounds() {
        let pts = gather_workloads::line(24);
        let sched = SchedulerKind::Async { s: 3 };
        let budget = budget_for(pts.len()) * 4;
        let run = || {
            RunSpec::new(ControllerKind::Paper, &pts).scheduler(sched).seed(7).budget(budget).run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.rounds, b.rounds, "async run not reproducible");
        assert_eq!(a.merges, b.merges, "async run not reproducible");
        assert_eq!(a.activations, b.activations, "async run not reproducible");
        assert_eq!(a.gathered, b.gathered, "async run not reproducible");
        // In-flight robots skip their look, so ASYNC does strictly less
        // look work per round than FSYNC would.
        assert!(a.rounds > 0);
        assert!(a.activations < a.rounds * pts.len() as u64, "async never left a robot in flight");
    }

    #[test]
    fn paper_algorithm_breaks_off_fsync_on_2d_shapes() {
        // The honest negative result the scheduler sweep exists to
        // surface: the paper's safety argument leans on simultaneous
        // moves, and under SSYNC the square family disconnects. The
        // harness must record that truthfully (this exact path used to
        // report `connected: true`).
        let pts = gather_workloads::square(4);
        let m = RunSpec::new(ControllerKind::Paper, &pts)
            .scheduler(SchedulerKind::Ssync { p: 50 })
            .seed(1)
            .budget(budget_for(pts.len()) * pts.len() as u64)
            .run();
        assert!(!m.gathered && !m.connected, "expected a truthful disconnection record");
        assert!(m.rounds > 0 && m.activations > 0);
    }
}
