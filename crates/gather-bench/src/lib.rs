//! # gather-bench
//!
//! Shared experiment harness for the criterion benches and the `report`
//! binary that regenerates every table in EXPERIMENTS.md. Each function
//! corresponds to an experiment ID from DESIGN.md §4.

use gather_baselines::{AsyncGreedy, GoToCenter};
use gather_core::{GatherConfig, GatherController};
use grid_engine::{
    ConnectivityCheck, Engine, EngineConfig, EngineError, OrientationMode, Point, RunOutcome,
};

/// Outcome of one measured gathering run.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub n: usize,
    pub rounds: u64,
    pub merges: usize,
    pub gathered: bool,
    /// Whether the swarm was still 4-connected when the run ended.
    /// The paper's algorithm never disconnects; the GoToCenter
    /// baseline can (its continuous-motion safety argument does not
    /// transfer to the grid), which E8 reports.
    pub connected: bool,
}

fn engine_config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        connectivity: ConnectivityCheck::Never,
        keep_history: false,
        stall_limit: 200_000,
    }
}

/// Run the paper's algorithm on `points` until gathered (or the budget
/// dies). `seed` scrambles per-robot orientations (no-compass model).
pub fn run_paper(points: &[Point], seed: u64, cfg: GatherConfig, budget: u64) -> Measurement {
    let controller = GatherController::with_config(cfg).expect("valid config");
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        controller,
        engine_config(0),
    );
    finish(points.len(), engine.run_until_gathered(budget), &mut engine)
}

/// Same, pinned to a given worker-thread count (E10).
pub fn run_paper_threads(points: &[Point], seed: u64, threads: usize, budget: u64) -> Measurement {
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        GatherController::paper(),
        engine_config(threads),
    );
    finish(points.len(), engine.run_until_gathered(budget), &mut engine)
}

/// Run the GoToCenter baseline (E8). Connectivity is *observed*, not
/// enforced: the baseline is allowed to break the model's invariant so
/// the experiment can report how often it does.
pub fn run_center(points: &[Point], seed: u64, budget: u64) -> Measurement {
    let mut engine = Engine::from_positions(
        points,
        OrientationMode::Scrambled(seed),
        GoToCenter::paper_radius(),
        engine_config(0),
    );
    let result = engine.run_until_gathered(budget);
    let connected = grid_engine::connectivity::is_connected(&engine.swarm);
    let mut m = finish(points.len(), result, &mut engine);
    m.connected = connected;
    m
}

/// Run the sequential greedy baseline (E8/E9 reference).
pub fn run_greedy(points: &[Point], budget: u64) -> Measurement {
    let n = points.len();
    match AsyncGreedy::new(points).run(budget) {
        Ok(out) => {
            Measurement { n, rounds: out.rounds, merges: out.merged, gathered: true, connected: true }
        }
        Err(_) => Measurement { n, rounds: budget, merges: 0, gathered: false, connected: true },
    }
}

fn finish<C: grid_engine::Controller>(
    n: usize,
    result: Result<RunOutcome, EngineError>,
    engine: &mut Engine<C>,
) -> Measurement {
    match result {
        Ok(out) => Measurement {
            n,
            rounds: out.rounds,
            merges: out.metrics.total_merged,
            gathered: true,
            connected: true,
        },
        Err(_) => Measurement {
            n,
            rounds: engine.round(),
            merges: engine.metrics().total_merged,
            gathered: false,
            connected: true,
        },
    }
}

/// The budget used by scaling experiments: generous multiple of the
/// theoretical O(n) bound.
pub fn budget_for(n: usize) -> u64 {
    500 * n as u64 + 20_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_paper_algorithm() {
        let m = run_paper(&gather_workloads::line(32), 1, GatherConfig::paper(), 1000);
        assert!(m.gathered);
        assert!(m.rounds <= 32);
        assert_eq!(m.n, 32);
    }

    #[test]
    fn harness_runs_baselines() {
        let pts = gather_workloads::random_blob(64, 5);
        assert!(run_center(&pts, 1, 5000).gathered);
        assert!(run_greedy(&pts, 500).gathered);
    }
}
