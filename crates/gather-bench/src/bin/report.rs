//! Regenerate every experiment table from EXPERIMENTS.md.
//!
//! Usage: `report [e1|e2|...|e10|all] [--quick]`
//!
//! `--quick` shrinks the sweeps (used in CI); the full run matches the
//! numbers recorded in EXPERIMENTS.md up to simulation determinism
//! (everything is seeded, so re-runs are bit-identical).

use gather_analysis::{linear_fit, loglog_slope, quadratic_fit, render_markdown, Table};
use gather_bench::{budget_for, run_center, run_greedy, run_paper};
use gather_core::boundary::{boundary_stats, is_mergeless};
use gather_core::{GatherConfig, GatherController, GatherState};
use gather_workloads::{all_families, family, Family};
use grid_engine::{ConnectivityCheck, Engine, EngineConfig, OrientationMode, Swarm};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args.iter().filter(|a| *a != "--quick").map(|s| s.as_str()).collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |id: &str| all || which.contains(&id);

    if want("e1") {
        e1_scaling(quick);
    }
    if want("e2") {
        e2_merges();
    }
    if want("e3") {
        e3_runs();
    }
    if want("e4") {
        e4_good_pair(quick);
    }
    if want("e5") {
        e5_pipelining(quick);
    }
    if want("e6") {
        e6_mergeless();
    }
    if want("e7") {
        e7_constants(quick);
    }
    if want("e8") {
        e8_baselines(quick);
    }
    if want("e9") {
        e9_lower_bound(quick);
    }
    if want("e10") {
        e10_throughput(quick);
    }
}

/// E1 — Theorem 1: rounds(n) is Θ(n) on every family.
fn e1_scaling(quick: bool) {
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 512, 1024, 2048] };
    let mut t = Table::new(
        "E1 — Theorem 1: rounds until gathering (paper constants)",
        &["family", "series (n -> rounds)", "rounds/n slope", "log-log exp", "lin r²", "quad r²"],
    );
    for f in all_families() {
        let mut pts = Vec::new();
        let mut series = String::new();
        for &n in sizes {
            if f == Family::HollowSquare && n > 512 {
                continue; // documented limitation, see EXPERIMENTS.md
            }
            let cells = family(f, n, 3);
            let m = run_paper(&cells, 3, GatherConfig::paper(), budget_for(cells.len()));
            assert!(m.gathered, "{} n={} did not gather", f.name(), n);
            pts.push((m.n as f64, m.rounds as f64));
            series.push_str(&format!("{}→{} ", m.n, m.rounds));
        }
        let lin = linear_fit(&pts);
        let quad = quadratic_fit(&pts);
        t.push(vec![
            f.name().into(),
            series.trim().into(),
            format!("{:.3}", lin.coefficient),
            format!("{:.2}", loglog_slope(&pts)),
            format!("{:.4}", lin.r2),
            format!("{:.4}", quad.r2),
        ]);
    }
    println!("{}", render_markdown(&t));
}

/// E2 — Fig. 2/3: merge operations on constructed fixtures.
fn e2_merges() {
    use grid_engine::{Point, View, V2};
    /// One merge fixture: name, cells, probed robot, expected move.
    type Fixture = (&'static str, Vec<(i32, i32)>, (i32, i32), Option<V2>);
    let cfg = GatherConfig::paper();
    let fixtures: Vec<Fixture> = vec![
        ("k=1 pendant", vec![(0, 0), (1, 0), (2, 0)], (0, 0), Some(V2::E)),
        (
            "k=2 bump",
            vec![(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (1, 1), (2, 1)],
            (1, 1),
            Some(V2::S),
        ),
        ("apex", vec![(0, 0), (1, 0), (2, 0), (1, 1)], (1, 1), Some(V2::S)),
        (
            "stable interior",
            vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1), (0, 2), (1, 2), (2, 2)],
            (1, 1),
            None,
        ),
    ];
    let mut t = Table::new(
        "E2 — merge operations (Fig. 2/3)",
        &["fixture", "robot", "expected", "measured", "ok"],
    );
    for (name, cells, probe, expected) in fixtures {
        let pts: Vec<Point> = cells.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let swarm: Swarm<GatherState> = Swarm::new(&pts, OrientationMode::Aligned);
        let i = swarm.robot_at(Point::new(probe.0, probe.1)).unwrap();
        let view = View::new(&swarm, i, cfg.radius);
        let got = gather_core::merge_move(&view, &cfg);
        t.push(vec![
            name.into(),
            format!("{probe:?}"),
            format!("{expected:?}"),
            format!("{got:?}"),
            (got == expected).to_string(),
        ]);
    }
    println!("{}", render_markdown(&t));
}

/// E3 — Fig. 7/8: run starts and reshapement on the Fig. 4 plateau.
fn e3_runs() {
    let mut cells: Vec<grid_engine::Point> =
        (0..24).map(|x| grid_engine::Point::new(x, 0)).collect();
    for y in 1..=9 {
        cells.push(grid_engine::Point::new(0, -y));
        cells.push(grid_engine::Point::new(23, -y));
    }
    let mut engine = Engine::from_positions(
        &cells,
        OrientationMode::Aligned,
        GatherController::paper(),
        EngineConfig {
            connectivity: ConnectivityCheck::Always,
            keep_history: true,
            ..Default::default()
        },
    );
    let mut t = Table::new(
        "E3 — runner life cycle on the Fig. 4 plateau",
        &["round", "population", "run states", "note"],
    );
    for round in 0..46u64 {
        let runs: usize = engine.swarm.states().iter().map(|s| s.run_count()).sum();
        let note = match round {
            0 => "start wave (Fig. 7)",
            1..=21 => "OP-A reshapement (Fig. 8a)",
            22 => "second start wave (pipelining)",
            _ => "",
        };
        if round % 4 == 0 || round == 1 || round == 22 {
            t.push(vec![
                round.to_string(),
                engine.swarm.len().to_string(),
                runs.to_string(),
                note.into(),
            ]);
        }
        engine.step().expect("connected");
    }
    println!("{}", render_markdown(&t));
}

/// E4 — Fig. 13/14: a good pair on a plateau of width m meets and the
/// swarm gathers in O(m).
fn e4_good_pair(quick: bool) {
    let widths: &[usize] = if quick { &[16, 32, 64] } else { &[16, 32, 64, 128, 256, 512] };
    let mut t = Table::new(
        "E4 — good pairs shorten quasi lines (Fig. 13/14)",
        &["plateau width", "n", "rounds", "rounds/width"],
    );
    let mut pts = Vec::new();
    for &w in widths {
        let cells = gather_workloads::table(w, 9);
        let m = run_paper(&cells, 1, GatherConfig::paper(), budget_for(cells.len()));
        assert!(m.gathered, "plateau {w} did not gather");
        pts.push((w as f64, m.rounds as f64));
        t.push(vec![
            w.to_string(),
            m.n.to_string(),
            m.rounds.to_string(),
            format!("{:.2}", m.rounds as f64 / w as f64),
        ]);
    }
    println!("{}", render_markdown(&t));
    println!(
        "good-pair log-log exponent: {:.2} (1.0 = linear in the quasi-line length)\n",
        loglog_slope(&pts)
    );
}

/// E5 — Fig. 15: pipelining sustains a steady merge rate on long lines.
fn e5_pipelining(quick: bool) {
    let sizes: &[usize] = if quick { &[256, 512] } else { &[256, 512, 1024, 2048] };
    let mut t = Table::new(
        "E5 — pipelining: steady-state merge throughput (Fig. 15)",
        &["n (line)", "rounds", "merges", "rounds per merge", "longest mergeless streak"],
    );
    for &n in sizes {
        let cells = gather_workloads::line(n);
        let controller = GatherController::paper();
        let mut engine = Engine::from_positions(
            &cells,
            OrientationMode::Scrambled(1),
            controller,
            EngineConfig { keep_history: true, ..Default::default() },
        );
        let out = engine.run_until_gathered(budget_for(n)).expect("gathers");
        t.push(vec![
            n.to_string(),
            out.rounds.to_string(),
            out.metrics.total_merged.to_string(),
            format!("{:.2}", out.rounds as f64 / out.metrics.total_merged.max(1) as f64),
            out.metrics.longest_mergeless_streak.to_string(),
        ]);
    }
    println!("{}", render_markdown(&t));
}

/// E6 — Lemma 1: mergeless swarms decompose into quasi lines and
/// stairways (no bumps on the outer boundary).
fn e6_mergeless() {
    let cfg = GatherConfig::paper();
    let shapes: Vec<(&str, Vec<grid_engine::Point>)> = vec![
        ("square 16", gather_workloads::square(16)),
        ("square 24", gather_workloads::square(24)),
        ("thick ring 20/2", gather_workloads::hollow_rectangle(20, 20, 2)),
        ("rect 30x12", gather_workloads::rectangle(30, 12)),
        ("diamond 8 (not mergeless)", gather_workloads::diamond(8)),
        ("blob 400 (not mergeless)", gather_workloads::random_blob(400, 9)),
    ];
    let mut t = Table::new(
        "E6 — Lemma 1: boundary decomposition of mergeless swarms",
        &["shape", "mergeless", "legs", "quasi segments", "stairs", "bumps"],
    );
    for (name, cells) in shapes {
        let swarm: Swarm<GatherState> = Swarm::new(&cells, OrientationMode::Aligned);
        let stats = boundary_stats(&swarm);
        let ml = is_mergeless(&swarm, &cfg);
        t.push(vec![
            name.into(),
            ml.to_string(),
            stats.legs.to_string(),
            stats.quasi_segments.to_string(),
            stats.stairs.to_string(),
            stats.bumps.to_string(),
        ]);
        if ml {
            assert_eq!(stats.bumps, 0, "{name}: mergeless swarm with a bump");
        }
    }
    println!("{}", render_markdown(&t));
}

/// E7 — §5 constants: viewing radius and L sweeps.
fn e7_constants(quick: bool) {
    let radii: &[i32] = if quick { &[11, 14, 20] } else { &[8, 11, 14, 17, 20, 24] };
    let periods: &[u64] = if quick { &[13, 22] } else { &[8, 13, 18, 22, 30, 44] };
    let n = if quick { 128 } else { 256 };

    let mut t = Table::new(
        "E7a — viewing radius sweep (L = 22)",
        &["radius", "k_max", "gathered", "rounds (blob)", "rounds (table)"],
    );
    for &radius in radii {
        let cfg = GatherConfig { radius, period: 22 };
        if cfg.validate().is_err() {
            continue;
        }
        let blob = run_paper(&gather_workloads::random_blob(n, 5), 5, cfg, budget_for(n));
        let table = run_paper(&gather_workloads::table(n, 9), 5, cfg, budget_for(n));
        t.push(vec![
            radius.to_string(),
            cfg.k_max().to_string(),
            (blob.gathered && table.gathered).to_string(),
            blob.rounds.to_string(),
            table.rounds.to_string(),
        ]);
    }
    println!("{}", render_markdown(&t));

    let mut t = Table::new(
        "E7b — run-start period L sweep (radius = 20)",
        &["L", "gathered", "rounds (blob)", "rounds (table)"],
    );
    for &period in periods {
        let cfg = GatherConfig { radius: 20, period };
        let blob = run_paper(&gather_workloads::random_blob(n, 5), 5, cfg, budget_for(n));
        let table = run_paper(&gather_workloads::table(n, 9), 5, cfg, budget_for(n));
        t.push(vec![
            period.to_string(),
            (blob.gathered && table.gathered).to_string(),
            blob.rounds.to_string(),
            table.rounds.to_string(),
        ]);
    }
    println!("{}", render_markdown(&t));
}

/// E8 — comparison against the baselines.
fn e8_baselines(quick: bool) {
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 512, 1024] };
    for f in [Family::Line, Family::RandomBlob, Family::Square] {
        let mut t = Table::new(
            format!("E8 — paper vs baselines on {}", f.name()),
            &["n", "paper rounds", "GoToCenter rounds", "greedy passes"],
        );
        let mut ours = Vec::new();
        let mut theirs = Vec::new();
        for &n in sizes {
            let cells = family(f, n, 3);
            let nn = cells.len();
            let paper = run_paper(&cells, 3, GatherConfig::paper(), budget_for(nn));
            let center = run_center(&cells, 3, budget_for(nn));
            let greedy = run_greedy(&cells, 10_000);
            ours.push((nn as f64, paper.rounds as f64));
            theirs.push((nn as f64, center.rounds as f64));
            let center_note = if !center.connected {
                " (disconnected!)"
            } else if !center.gathered {
                " (stalled)"
            } else {
                ""
            };
            t.push(vec![
                nn.to_string(),
                format!("{}{}", paper.rounds, if paper.gathered { "" } else { " (stalled)" }),
                format!("{}{}", center.rounds, center_note),
                format!("{}{}", greedy.rounds, if greedy.gathered { "" } else { " (stalled)" }),
            ]);
        }
        println!("{}", render_markdown(&t));
        println!(
            "scaling exponents on {}: paper {:.2}, GoToCenter {:.2}\n",
            f.name(),
            loglog_slope(&ours),
            loglog_slope(&theirs)
        );
    }
}

/// E9 — the Ω(diameter) lower bound: measured rounds vs diameter on
/// lines, for every strategy.
fn e9_lower_bound(quick: bool) {
    let sizes: &[usize] = if quick { &[64, 256] } else { &[64, 256, 1024] };
    let mut t = Table::new(
        "E9 — lower bound: any strategy needs Ω(diameter) rounds",
        &["diameter (line n)", "lower bound (diam-2)/4", "paper rounds", "ratio to bound"],
    );
    for &n in sizes {
        let cells = gather_workloads::line(n);
        let m = run_paper(&cells, 1, GatherConfig::paper(), budget_for(n));
        // Robots move at king speed 1, so joining the two ends of a
        // diameter-d swarm into a 2x2 box needs at least (d-2)/4 rounds
        // (both ends move toward each other at speed <= 1 each... the
        // bound below is the conservative closed form).
        let bound = ((n as u64).saturating_sub(2)) / 4;
        assert!(m.rounds >= bound, "beat the lower bound?!");
        t.push(vec![
            n.to_string(),
            bound.to_string(),
            m.rounds.to_string(),
            format!("{:.2}", m.rounds as f64 / bound.max(1) as f64),
        ]);
    }
    println!("{}", render_markdown(&t));
}

/// E10 — FSYNC substrate: per-round cost and parallel speedup.
fn e10_throughput(quick: bool) {
    let n = if quick { 4_096 } else { 16_384 };
    let cells = gather_workloads::random_blob(n, 11);
    let rounds = if quick { 40 } else { 100 };
    let mut t = Table::new(
        "E10 — FSYNC round throughput (random blob)",
        &["threads", "rounds timed", "total time", "robot-rounds/s"],
    );
    for threads in [1usize, 2, 4, 0] {
        let mut engine = Engine::from_positions(
            &cells,
            OrientationMode::Scrambled(1),
            GatherController::paper(),
            EngineConfig { threads, connectivity: ConnectivityCheck::Never, ..Default::default() },
        );
        let start = Instant::now();
        let mut robot_rounds = 0u64;
        for _ in 0..rounds {
            robot_rounds += engine.swarm.len() as u64;
            engine.step().expect("steps");
        }
        let dt = start.elapsed();
        let label = if threads == 0 { "auto".to_string() } else { threads.to_string() };
        t.push(vec![
            label,
            rounds.to_string(),
            format!("{:.1?}", dt),
            format!("{:.2e}", robot_rounds as f64 / dt.as_secs_f64()),
        ]);
    }
    println!("{}", render_markdown(&t));
}
