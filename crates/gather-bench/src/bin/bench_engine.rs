//! Engine-throughput measurement: robots·rounds per second of the FSYNC
//! round loop (look + compute + sharded apply) at large n, emitted as
//! `BENCH_engine.json`.
//!
//! Unlike the criterion benches (which time small controller kernels)
//! this drives the *whole* engine — tiled occupancy probes through view
//! windows, the parallel compute map, and the sharded round-apply — on
//! swarms up to 10⁶ robots, including the sparse `clusters` family whose
//! bounding box a dense O(area) occupancy index cannot allocate.
//!
//! Usage:
//!   bench_engine [--n N] [--rounds R] [--threads T1,T2,..] \
//!                [--family NAME] [--seed S] [--scheduler NAME] \
//!                [--out PATH] [--gate BASELINE.json] [--tolerance F] \
//!                [--profile]
//!
//! Defaults: --n 1000000 --rounds 3 --threads 0 --family clusters
//!           --seed 1 --scheduler fsync --out BENCH_engine.json
//!
//! `--scheduler` takes any registry name (`fsync`, `ssync-p50`, `rr4`,
//! `crash-f10`, …) so the weak-scheduler round path — a k-robot
//! activation applied through the sparse apply — is benchable and
//! gateable like the FSYNC path. Throughput is still robot-rounds/s
//! (live population summed per round): under `rrK` it measures how
//! cheaply the engine turns a round over relative to the swarm size,
//! which is exactly the O(active)-vs-O(n) axis.
//!
//! `--profile` installs the engine's phase profiler for each measured
//! thread config: the per-phase breakdown is printed to stderr and
//! written as a `profile` array in the output JSON (before `results`,
//! whose chunk-parsing gate readers skip everything earlier). Timing
//! probes add a little overhead, so profiled throughputs run slightly
//! under unprofiled ones — the gate tolerance absorbs it.
//!
//! The post-run position digest is asserted identical across all
//! measured thread counts — every bench run doubles as a determinism
//! check of the parallel apply.
//!
//! `--gate BASELINE.json` turns the run into a CI regression gate: each
//! measured thread count is compared against the same-thread-count
//! entry in the baseline (a previous `--out` file, e.g. the committed
//! `BENCH_engine.json`), and the process exits non-zero when measured
//! throughput falls below `baseline / tolerance`. The tolerance
//! (default 2.5×) is deliberately generous: robot-rounds/s is roughly
//! n-independent but CI runners are noisy and slower than the baseline
//! box, so only a real cliff — an accidental O(area) scan, a lost
//! parallel path — should trip it.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use gather_bench::SchedulerKind;
use gather_core::GatherController;
use gather_workloads::Family;
use grid_engine::{ConnectivityCheck, Engine, EngineConfig, OrientationMode, Phase, ProfileTotals};

struct Args {
    n: usize,
    rounds: u64,
    threads: Vec<usize>,
    family: Family,
    seed: u64,
    scheduler: SchedulerKind,
    out: String,
    gate: Option<String>,
    tolerance: f64,
    profile: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 1_000_000,
        rounds: 3,
        threads: vec![0],
        family: Family::Clusters,
        seed: 1,
        scheduler: SchedulerKind::Fsync,
        out: "BENCH_engine.json".into(),
        gate: None,
        tolerance: 2.5,
        profile: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--rounds" => args.rounds = value()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--threads" => {
                args.threads = value()?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads {t:?}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--family" => {
                let name = value()?;
                args.family =
                    Family::parse(name).ok_or_else(|| format!("unknown family {name:?}"))?;
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheduler" => args.scheduler = value()?.parse()?,
            "--out" => args.out = value()?.to_string(),
            "--gate" => args.gate = Some(value()?.to_string()),
            "--tolerance" => {
                args.tolerance = value()?.parse().map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--profile" => args.profile = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.threads.is_empty() || args.rounds == 0 || args.n == 0 {
        return Err("need at least one thread config, one round and one robot".into());
    }
    if !args.tolerance.is_finite() || args.tolerance < 1.0 {
        return Err("--tolerance must be >= 1.0 (a slowdown factor)".into());
    }
    Ok(args)
}

/// One baseline results row: the identity keys a gate run matches on
/// (scheduler, threads, population) plus the throughput it defends.
/// Rows written before the `scheduler`/`n` columns existed carry
/// neither key and match as FSYNC at any population.
#[derive(Clone, Debug, PartialEq)]
struct BaselineRow {
    threads: usize,
    scheduler: String,
    n: Option<u64>,
    robot_rounds_per_s: f64,
}

/// Extract the result rows from a baseline file previously written by
/// this binary's `--out`. The `results` array entries are flat objects,
/// so each `{…}` chunk after the `results` key parses with the
/// workspace's flat-JSON parser.
fn baseline_rows(json: &str) -> Result<Vec<BaselineRow>, String> {
    let (_, results) = json.split_once("\"results\"").ok_or("baseline has no \"results\" array")?;
    let mut out = Vec::new();
    let mut rest = results;
    while let Some(start) = rest.find('{') {
        let end = rest[start..]
            .find('}')
            .map(|i| start + i)
            .ok_or("unterminated object in baseline results")?;
        let map = gather_analysis::parse_flat_json(&rest[start..=end])
            .map_err(|e| format!("baseline results entry: {e}"))?;
        let threads = map
            .get("threads")
            .and_then(|v| v.as_u64())
            .ok_or("baseline entry is missing \"threads\"")?;
        let throughput = map
            .get("robot_rounds_per_s")
            .and_then(|v| v.as_f64())
            .ok_or("baseline entry is missing \"robot_rounds_per_s\"")?;
        let scheduler =
            map.get("scheduler").and_then(|v| v.as_str()).unwrap_or("fsync").to_string();
        let n = map.get("n").and_then(|v| v.as_u64());
        out.push(BaselineRow {
            threads: threads as usize,
            scheduler,
            n,
            robot_rounds_per_s: throughput,
        });
        rest = &rest[end + 1..];
    }
    if out.is_empty() {
        return Err("baseline results array is empty".into());
    }
    Ok(out)
}

/// The baseline row a measured `(scheduler, threads, n)` config gates
/// against: same scheduler and thread count; when several populations
/// qualify, the closest `n` (ties to the smaller) — robot-rounds/s is
/// roughly n-independent, so the nearest row is the fairest reference.
/// Rows without an `n` column are wildcards, used only when no sized
/// row matches.
fn baseline_reference<'a>(
    baseline: &'a [BaselineRow],
    scheduler: &str,
    threads: usize,
    n: u64,
) -> Option<&'a BaselineRow> {
    let candidates =
        || baseline.iter().filter(|r| r.threads == threads && r.scheduler == scheduler);
    candidates()
        .filter(|r| r.n.is_some())
        .min_by_key(|r| {
            let rn = r.n.expect("filtered to sized rows");
            (rn.abs_diff(n), rn)
        })
        .or_else(|| candidates().next())
}

/// One thread config's accumulated phase breakdown as a flat JSON
/// object for the output's `profile` array.
fn profile_json(threads: usize, scheduler: &str, n: usize, totals: &ProfileTotals) -> String {
    let mut s = format!(
        "{{\"threads\": {threads}, \"scheduler\": \"{scheduler}\", \"n\": {n}, \
         \"rounds\": {}, \"wall_ns\": {}, \"coverage\": {:.4}",
        totals.rounds,
        totals.wall_ns,
        totals.coverage(),
    );
    for phase in Phase::ALL {
        s.push_str(&format!(", \"{}_ns\": {}", phase.name(), totals.phase_ns[phase as usize]));
    }
    s.push_str(&format!(", \"shard_gap_ns\": {}", totals.shard_imbalance_ns));
    s.push_str(&format!(", \"compact_gap_ns\": {}", totals.compact_imbalance_ns));
    if totals.allocs_counted {
        s.push_str(&format!(", \"allocs\": {}", totals.allocs));
    }
    s.push('}');
    s
}

/// Compare measured throughputs against the baseline; `Err` lists every
/// thread config that fell below `baseline / tolerance`.
fn gate_against(
    baseline: &[BaselineRow],
    measured: &[(usize, f64)],
    scheduler: &str,
    n: u64,
    tolerance: f64,
) -> Result<(), String> {
    let mut regressions = Vec::new();
    for &(threads, throughput) in measured {
        let Some(row) = baseline_reference(baseline, scheduler, threads, n) else {
            return Err(format!(
                "baseline has no scheduler={scheduler} threads={threads} entry to gate against"
            ));
        };
        let reference = row.robot_rounds_per_s;
        let floor = reference / tolerance;
        if throughput < floor {
            regressions.push(format!(
                "{scheduler} threads={threads}: {throughput:.3e} robot-rounds/s < floor \
                 {floor:.3e} (baseline {reference:.3e} / {tolerance})"
            ));
        } else {
            eprintln!(
                "gate ok: {scheduler} threads={threads} at {throughput:.3e} robot-rounds/s \
                 (floor {floor:.3e}, baseline {reference:.3e})"
            );
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!("PERFORMANCE REGRESSION:\n  {}", regressions.join("\n  ")))
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let points = gather_workloads::family(args.family, args.n, args.seed);
    let sched_name = args.scheduler.name();
    let mut results: Vec<String> = Vec::new();
    let mut profiles: Vec<String> = Vec::new();
    let mut measured: Vec<(usize, f64)> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    let mut shape: Option<(u128, usize)> = None;
    for &threads in &args.threads {
        let mut engine = Engine::from_positions(
            &points,
            OrientationMode::Scrambled(args.seed),
            GatherController::paper(),
            EngineConfig {
                threads,
                // The bench isolates the round loop itself, so keep the
                // historical no-connectivity-probe configuration on
                // every scheduler (campaign runs probe; benches don't).
                connectivity: ConnectivityCheck::Never,
                scheduler: args.scheduler.to_policy(args.seed, points.len()),
                ..Default::default()
            },
        );
        let totals = Rc::new(RefCell::new(ProfileTotals::default()));
        if args.profile {
            let sink = Rc::clone(&totals);
            engine.set_profiler(Box::new(move |p| sink.borrow_mut().add(p)));
        }
        if shape.is_none() {
            // Shape diagnostics come from the first measurement engine
            // (before its timer starts) — building a separate probe
            // swarm would be a second million-robot index for nothing.
            let bounds = engine.swarm.bounds();
            let bounding_cells = bounds.width() as u128 * bounds.height() as u128;
            let tiles = engine.swarm.index().tile_count();
            eprintln!(
                "bench_engine: {} n={} (asked {}), bounding box {}x{} = {} cells, {} tiles \
                 ({} backed cells)",
                args.family.name(),
                points.len(),
                args.n,
                bounds.width(),
                bounds.height(),
                bounding_cells,
                tiles,
                tiles * grid_engine::tile::TILE_CELLS,
            );
            shape = Some((bounding_cells, tiles));
        }
        let start = Instant::now();
        let mut robot_rounds = 0u64;
        for _ in 0..args.rounds {
            robot_rounds += engine.swarm.len() as u64;
            engine.step().expect("unchecked steps cannot fail");
        }
        let dt = start.elapsed().as_secs_f64();
        let throughput = robot_rounds as f64 / dt;
        measured.push((threads, throughput));
        let digest = engine.swarm.position_digest();
        digests.push(digest);
        eprintln!(
            "{sched_name} threads={threads}: {} rounds, {robot_rounds} robot-rounds in {dt:.2}s \
             -> {throughput:.3e} robot-rounds/s (digest {digest:#018x})",
            args.rounds,
        );
        results.push(format!(
            "{{\"threads\": {threads}, \"scheduler\": \"{sched_name}\", \"n\": {}, \
             \"rounds\": {}, \"robot_rounds\": {robot_rounds}, \
             \"elapsed_s\": {dt:.4}, \"robot_rounds_per_s\": {throughput:.1}, \
             \"digest\": \"{digest:#018x}\"}}",
            points.len(),
            args.rounds,
        ));
        if args.profile {
            let totals = totals.borrow();
            eprint!("{sched_name} threads={threads} phase breakdown:\n{}", totals.render());
            profiles.push(profile_json(threads, &sched_name, points.len(), &totals));
        }
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "PARALLEL APPLY DIVERGED: digests differ across thread counts: {digests:#x?}"
    );
    eprintln!("digest identical across thread counts {:?}", args.threads);

    let (bounding_cells, tiles) = shape.expect("at least one thread config ran");
    // The `profile` array sits BEFORE `results`: gate readers chunk-parse
    // the objects after the `results` key and must not see profile rows.
    let profile_block = if profiles.is_empty() {
        String::new()
    } else {
        format!("\"profile\": [\n    {}\n  ],\n  ", profiles.join(",\n    "))
    };
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"family\": \"{}\",\n  \"n_requested\": {},\n  \
         \"n_actual\": {},\n  \"seed\": {},\n  \"rounds\": {},\n  \"bounding_cells\": {},\n  \
         \"occupied_tiles\": {},\n  {profile_block}\"results\": [\n    {}\n  ]\n}}\n",
        args.family.name(),
        args.n,
        points.len(),
        args.seed,
        args.rounds,
        bounding_cells,
        tiles,
        results.join(",\n    "),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error writing {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);

    if let Some(gate) = &args.gate {
        let baseline = match std::fs::read_to_string(gate) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error reading baseline {gate}: {e}");
                std::process::exit(2);
            }
        };
        let verdict =
            baseline_rows(&baseline).map_err(|e| format!("{gate}: {e}")).and_then(|baseline| {
                gate_against(&baseline, &measured, &sched_name, points.len() as u64, args.tolerance)
            });
        if let Err(e) = verdict {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        eprintln!("gate passed against {gate} (tolerance {}x)", args.tolerance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "bench": "engine_throughput",
      "results": [
        {"threads": 1, "rounds": 3, "robot_rounds_per_s": 250000.0, "digest": "0x1"},
        {"threads": 8, "rounds": 3, "robot_rounds_per_s": 800000.0, "digest": "0x2"}
      ]
    }"#;

    #[test]
    fn baseline_parses_the_committed_format() {
        let rows = baseline_rows(BASELINE).unwrap();
        assert_eq!(rows.len(), 2);
        // Pre-scheduler rows match as FSYNC at any population.
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[0].scheduler, "fsync");
        assert_eq!(rows[0].n, None);
        assert_eq!(rows[0].robot_rounds_per_s, 250_000.0);
        assert_eq!(rows[1].threads, 8);
        assert_eq!(rows[1].robot_rounds_per_s, 800_000.0);
        assert!(baseline_rows("{}").is_err(), "no results array");
        assert!(baseline_rows(r#"{"results": []}"#).is_err(), "empty results");
        assert!(
            baseline_rows(r#"{"results": [{"threads": 1}]}"#).is_err(),
            "entry without a throughput"
        );
    }

    #[test]
    fn baseline_parser_skips_a_profile_array_before_results() {
        // A `--profile` baseline carries phase rows before `results`;
        // the chunk parser must only see the results entries.
        let with_profile = r#"{
          "bench": "engine_throughput",
          "profile": [
            {"threads": 1, "rounds": 3, "wall_ns": 900, "coverage": 0.97, "compute_ns": 500}
          ],
          "results": [
            {"threads": 1, "rounds": 3, "robot_rounds_per_s": 250000.0, "digest": "0x1"}
          ]
        }"#;
        let rows = baseline_rows(with_profile).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].robot_rounds_per_s, 250_000.0);
    }

    #[test]
    fn baseline_matching_uses_scheduler_and_closest_population() {
        let multi = r#"{
          "results": [
            {"threads": 1, "scheduler": "fsync", "n": 1000000, "robot_rounds_per_s": 250000.0},
            {"threads": 1, "scheduler": "fsync", "n": 10000000, "robot_rounds_per_s": 300000.0},
            {"threads": 1, "scheduler": "rr4", "n": 1000000, "robot_rounds_per_s": 2000000.0},
            {"threads": 8, "scheduler": "fsync", "n": 1000000, "robot_rounds_per_s": 800000.0}
          ]
        }"#;
        let rows = baseline_rows(multi).unwrap();
        // Same scheduler, closest n wins.
        let r = baseline_reference(&rows, "fsync", 1, 200_000).unwrap();
        assert_eq!(r.robot_rounds_per_s, 250_000.0);
        let r = baseline_reference(&rows, "fsync", 1, 8_000_000).unwrap();
        assert_eq!(r.robot_rounds_per_s, 300_000.0);
        // Scheduler is part of the row identity: an rr4 run must gate
        // against the rr4 row, never the (much slower) FSYNC one.
        let r = baseline_reference(&rows, "rr4", 1, 1_000_000).unwrap();
        assert_eq!(r.robot_rounds_per_s, 2_000_000.0);
        assert!(baseline_reference(&rows, "rr4", 8, 1_000_000).is_none());
        assert!(baseline_reference(&rows, "ssync-p50", 1, 1_000_000).is_none());
        // Legacy rows (no scheduler/n columns) are FSYNC wildcards.
        let legacy = baseline_rows(BASELINE).unwrap();
        let r = baseline_reference(&legacy, "fsync", 8, 123).unwrap();
        assert_eq!(r.robot_rounds_per_s, 800_000.0);
        assert!(baseline_reference(&legacy, "rr4", 8, 123).is_none());
    }

    #[test]
    fn profile_rows_are_flat_json_with_every_phase() {
        let mut totals = ProfileTotals { rounds: 3, wall_ns: 1_000, ..Default::default() };
        totals.phase_ns[Phase::Compute as usize] = 600;
        totals.shard_imbalance_ns = 42;
        let row = profile_json(8, "fsync", 1_000_000, &totals);
        let map = gather_analysis::parse_flat_json(&row).expect("profile row parses flat");
        assert_eq!(map.get("threads").and_then(|v| v.as_u64()), Some(8));
        assert_eq!(map.get("scheduler").and_then(|v| v.as_str()), Some("fsync"));
        assert_eq!(map.get("n").and_then(|v| v.as_u64()), Some(1_000_000));
        assert_eq!(map.get("compute_ns").and_then(|v| v.as_u64()), Some(600));
        assert_eq!(map.get("shard_gap_ns").and_then(|v| v.as_u64()), Some(42));
        for phase in Phase::ALL {
            assert!(map.contains_key(&format!("{}_ns", phase.name())), "{row}");
        }
        assert!(!map.contains_key("allocs"), "allocs only when counted");
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_on_cliffs() {
        let baseline = baseline_rows(BASELINE).unwrap();
        // 2x slower than baseline is inside the 2.5x floor.
        assert!(gate_against(&baseline, &[(1, 125_000.0)], "fsync", 200_000, 2.5).is_ok());
        // 5x slower is a cliff.
        let err = gate_against(&baseline, &[(1, 50_000.0)], "fsync", 200_000, 2.5).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(err.contains("threads=1"), "{err}");
        // One good config does not excuse a regressed one.
        let m = [(1, 240_000.0), (8, 10_000.0)];
        assert!(gate_against(&baseline, &m, "fsync", 200_000, 2.5).is_err());
        // A thread count absent from the baseline cannot be gated.
        let err = gate_against(&baseline, &[(4, 500_000.0)], "fsync", 200_000, 2.5).unwrap_err();
        assert!(err.contains("threads=4"), "{err}");
        // Neither can a scheduler absent from the baseline.
        let err = gate_against(&baseline, &[(1, 500_000.0)], "rr4", 200_000, 2.5).unwrap_err();
        assert!(err.contains("scheduler=rr4"), "{err}");
    }
}
