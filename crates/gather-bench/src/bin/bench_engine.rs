//! Engine-throughput measurement: robots·rounds per second of the FSYNC
//! round loop (look + compute + sharded apply) at large n, emitted as
//! `BENCH_engine.json`.
//!
//! Unlike the criterion benches (which time small controller kernels)
//! this drives the *whole* engine — tiled occupancy probes through view
//! windows, the parallel compute map, and the sharded round-apply — on
//! swarms up to 10⁶ robots, including the sparse `clusters` family whose
//! bounding box a dense O(area) occupancy index cannot allocate.
//!
//! Usage:
//!   bench_engine [--n N] [--rounds R] [--threads T1,T2,..] \
//!                [--family NAME] [--seed S] [--out PATH]
//!
//! Defaults: --n 1000000 --rounds 3 --threads 0 --family clusters
//!           --seed 1 --out BENCH_engine.json
//!
//! The post-run position digest is asserted identical across all
//! measured thread counts — every bench run doubles as a determinism
//! check of the parallel apply.

use std::time::Instant;

use gather_core::GatherController;
use gather_workloads::Family;
use grid_engine::{ConnectivityCheck, Engine, EngineConfig, OrientationMode};

struct Args {
    n: usize,
    rounds: u64,
    threads: Vec<usize>,
    family: Family,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 1_000_000,
        rounds: 3,
        threads: vec![0],
        family: Family::Clusters,
        seed: 1,
        out: "BENCH_engine.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--rounds" => args.rounds = value()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--threads" => {
                args.threads = value()?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads {t:?}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--family" => {
                let name = value()?;
                args.family =
                    Family::parse(name).ok_or_else(|| format!("unknown family {name:?}"))?;
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = value()?.to_string(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.threads.is_empty() || args.rounds == 0 || args.n == 0 {
        return Err("need at least one thread config, one round and one robot".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let points = gather_workloads::family(args.family, args.n, args.seed);
    let mut results: Vec<String> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    let mut shape: Option<(u128, usize)> = None;
    for &threads in &args.threads {
        let mut engine = Engine::from_positions(
            &points,
            OrientationMode::Scrambled(args.seed),
            GatherController::paper(),
            EngineConfig { threads, connectivity: ConnectivityCheck::Never, ..Default::default() },
        );
        if shape.is_none() {
            // Shape diagnostics come from the first measurement engine
            // (before its timer starts) — building a separate probe
            // swarm would be a second million-robot index for nothing.
            let bounds = engine.swarm.bounds();
            let bounding_cells = bounds.width() as u128 * bounds.height() as u128;
            let tiles = engine.swarm.index().tile_count();
            eprintln!(
                "bench_engine: {} n={} (asked {}), bounding box {}x{} = {} cells, {} tiles \
                 ({} backed cells)",
                args.family.name(),
                points.len(),
                args.n,
                bounds.width(),
                bounds.height(),
                bounding_cells,
                tiles,
                tiles * grid_engine::tile::TILE_CELLS,
            );
            shape = Some((bounding_cells, tiles));
        }
        let start = Instant::now();
        let mut robot_rounds = 0u64;
        for _ in 0..args.rounds {
            robot_rounds += engine.swarm.len() as u64;
            engine.step().expect("unchecked FSYNC steps cannot fail");
        }
        let dt = start.elapsed().as_secs_f64();
        let throughput = robot_rounds as f64 / dt;
        let digest = engine.swarm.position_digest();
        digests.push(digest);
        eprintln!(
            "threads={threads}: {} rounds, {robot_rounds} robot-rounds in {dt:.2}s \
             -> {throughput:.3e} robot-rounds/s (digest {digest:#018x})",
            args.rounds,
        );
        results.push(format!(
            "{{\"threads\": {threads}, \"rounds\": {}, \"robot_rounds\": {robot_rounds}, \
             \"elapsed_s\": {dt:.4}, \"robot_rounds_per_s\": {throughput:.1}, \
             \"digest\": \"{digest:#018x}\"}}",
            args.rounds,
        ));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "PARALLEL APPLY DIVERGED: digests differ across thread counts: {digests:#x?}"
    );
    eprintln!("digest identical across thread counts {:?}", args.threads);

    let (bounding_cells, tiles) = shape.expect("at least one thread config ran");
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"family\": \"{}\",\n  \"n_requested\": {},\n  \
         \"n_actual\": {},\n  \"seed\": {},\n  \"rounds\": {},\n  \"bounding_cells\": {},\n  \
         \"occupied_tiles\": {},\n  \"results\": [\n    {}\n  ]\n}}\n",
        args.family.name(),
        args.n,
        points.len(),
        args.seed,
        args.rounds,
        bounding_cells,
        tiles,
        results.join(",\n    "),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error writing {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);
}
