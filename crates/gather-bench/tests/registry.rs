//! The scheduler registry's parse ∘ display identity — the contract
//! every name-carrying surface (CLI flags, spec files, service wire
//! fields, smoke `--scheduler`, trace-header scenario IDs) relies on
//! now that [`SchedulerKind`]'s `FromStr` is the workspace's single
//! scheduler parser.

use gather_bench::SchedulerKind;
use proptest::prelude::*;

/// Scheduler-name alphabet, weighted toward near-miss spellings.
const ALPHABET: [char; 16] =
    ['f', 's', 'y', 'n', 'c', 'r', 'a', 'h', 'p', '-', '0', '1', '2', '4', '5', '9'];

fn kind_strategy() -> impl Strategy<Value = SchedulerKind> {
    (0u8..5, 1u32..10_000).prop_map(|(variant, param)| match variant {
        0 => SchedulerKind::Fsync,
        1 => SchedulerKind::Ssync { p: (param % 100) as u8 + 1 },
        2 => SchedulerKind::RoundRobin { k: param },
        3 => SchedulerKind::Crash { f: param },
        _ => SchedulerKind::Async { s: param },
    })
}

proptest! {
    /// parse(display(kind)) is the identity on every valid kind.
    #[test]
    fn parse_display_is_identity(kind in kind_strategy()) {
        prop_assert!(kind.validate().is_ok());
        prop_assert_eq!(kind.to_string().parse::<SchedulerKind>(), Ok(kind));
        prop_assert_eq!(kind.name().parse::<SchedulerKind>(), Ok(kind));
    }

    /// display(parse(s)) returns `s` itself whenever `s` parses at all
    /// — names are canonical, so IDs never drift through a round-trip.
    #[test]
    fn display_parse_is_identity_on_parsable_strings(
        chars in prop::collection::vec(0usize..ALPHABET.len(), 0..12)
    ) {
        let s: String = chars.into_iter().map(|i| ALPHABET[i]).collect();
        if let Ok(kind) = s.parse::<SchedulerKind>() {
            // Leading zeros are the one way a non-canonical spelling
            // could parse; the identity below proves they don't.
            prop_assert_eq!(kind.name(), s);
        }
    }
}
