//! Criterion benches, one group per measured experiment (DESIGN.md §4).
//! Shapes, not absolute numbers, are the reproduction target; the
//! heavyweight sweeps live in the `report` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gather_bench::{budget_for, run_center, run_paper, run_paper_threads};
use gather_core::{GatherConfig, GatherState};
use gather_workloads::{family, Family};
use grid_engine::{OrientationMode, Point, Swarm, View};

/// E1 — full gathering runs across sizes (the Theorem 1 series).
fn gathering_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_gathering_scaling");
    g.sample_size(10);
    for f in [Family::Line, Family::Square, Family::RandomBlob] {
        for n in [64usize, 256] {
            let cells = family(f, n, 3);
            g.bench_with_input(BenchmarkId::new(f.name(), cells.len()), &cells, |b, cells| {
                b.iter(|| {
                    let m = run_paper(cells, 3, GatherConfig::paper(), budget_for(cells.len()));
                    assert!(m.gathered);
                    m.rounds
                })
            });
        }
    }
    g.finish();
}

/// E2 — merge-pattern detection throughput (the per-robot hot path).
fn merge_detection(c: &mut Criterion) {
    let cells = gather_workloads::random_blob(1024, 7);
    let swarm: Swarm<GatherState> = Swarm::new(&cells, OrientationMode::Scrambled(7));
    let cfg = GatherConfig::paper();
    c.bench_function("e2_merge_detection_1024", |b| {
        b.iter(|| {
            let mut moves = 0usize;
            for i in 0..swarm.len() {
                let view = View::new(&swarm, i, cfg.radius);
                if gather_core::merge_move(&view, &cfg).is_some() {
                    moves += 1;
                }
            }
            moves
        })
    });
}

/// E4 — good-pair convergence on the Fig. 4 plateau.
fn good_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_good_pair");
    g.sample_size(10);
    for width in [32usize, 128] {
        let cells = gather_workloads::table(width, 9);
        g.bench_with_input(BenchmarkId::from_parameter(width), &cells, |b, cells| {
            b.iter(|| {
                let m = run_paper(cells, 1, GatherConfig::paper(), budget_for(cells.len()));
                assert!(m.gathered);
                m.rounds
            })
        });
    }
    g.finish();
}

/// E7 — constants ablation: the minimum-radius configuration.
fn constant_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_constants");
    g.sample_size(10);
    let cells = gather_workloads::random_blob(256, 5);
    for radius in [11i32, 20] {
        let cfg = GatherConfig { radius, period: 22 };
        g.bench_with_input(BenchmarkId::from_parameter(radius), &cells, |b, cells| {
            b.iter(|| run_paper(cells, 5, cfg, budget_for(cells.len())).rounds)
        });
    }
    g.finish();
}

/// E8 — paper algorithm vs the GoToCenter baseline.
fn baseline_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_baseline_comparison");
    g.sample_size(10);
    let cells = gather_workloads::random_blob(256, 3);
    g.bench_function("paper_blob256", |b| {
        b.iter(|| run_paper(&cells, 3, GatherConfig::paper(), budget_for(256)).rounds)
    });
    g.bench_function("go_to_center_blob256", |b| {
        b.iter(|| run_center(&cells, 3, budget_for(256)).rounds)
    });
    g.finish();
}

/// E10 — FSYNC round throughput and thread scaling.
fn round_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_round_throughput");
    g.sample_size(10);
    let cells: Vec<Point> = gather_workloads::random_blob(8192, 11);
    for threads in [1usize, 0] {
        g.bench_with_input(
            BenchmarkId::new("threads", if threads == 0 { 99 } else { threads }),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    // 4 rounds of the big blob per iteration.
                    run_paper_threads(&cells, 11, threads, 4)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    gathering_scaling,
    merge_detection,
    good_pair,
    constant_sweep,
    baseline_comparison,
    round_throughput
);
criterion_main!(benches);
