//! Property tests on the substrate: simultaneous-move semantics, the
//! occupancy index, and view/frame coherence under random actions.

use grid_engine::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_positions() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::btree_set((0i32..12, 0i32..12), 1..40)
        .prop_map(|set| set.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn arb_steps(n: usize) -> impl Strategy<Value = Vec<(i8, i8)>> {
    proptest::collection::vec((-1i8..=1, -1i8..=1), n..=n)
}

proptest! {
    /// Robot count is conserved: survivors + merged == before, and the
    /// occupancy index agrees with the robot list after any round.
    #[test]
    fn apply_conserves_and_indexes((pts, steps) in arb_positions().prop_flat_map(|p| {
        let n = p.len();
        (Just(p), arb_steps(n))
    })) {
        let mut swarm: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let before = swarm.len();
        let actions: Vec<Action<()>> = steps
            .iter()
            .map(|&(dx, dy)| Action { step: V2::new(dx as i32, dy as i32), state: () })
            .collect();
        let out = swarm.apply(actions);
        prop_assert_eq!(swarm.len() + out.merged, before);
        // Index coherence: every robot is where the grid says it is,
        // and positions are unique.
        let mut seen = BTreeSet::new();
        for (i, r) in swarm.robots().iter().enumerate() {
            prop_assert_eq!(swarm.robot_at(r.pos), Some(i));
            prop_assert!(seen.insert(r.pos), "duplicate survivor cell");
        }
    }

    /// Views are frame-coherent: for any robot orientation, a probe at
    /// offset v sees exactly the world cell center + orient(v).
    #[test]
    fn view_frame_coherence(pts in arb_positions(), seed in any::<u64>()) {
        let swarm: Swarm<()> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
        for i in 0..swarm.len().min(8) {
            let view = View::new(&swarm, i, 6);
            let me = swarm.robots()[i].pos;
            let o = swarm.robots()[i].orient;
            for dx in -3i32..=3 {
                for dy in -3i32..=3 {
                    let v = V2::new(dx, dy);
                    if v.l1() > 6 { continue; }
                    let world = me + o.apply(v);
                    prop_assert_eq!(view.occupied(v), swarm.occupied(world));
                }
            }
        }
    }

    /// Stationary rounds are perfect no-ops.
    #[test]
    fn stay_round_is_identity(pts in arb_positions()) {
        let mut swarm: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let before: Vec<Point> = swarm.positions().collect();
        let n = swarm.len();
        let out = swarm.apply((0..n).map(|_| Action::stay(())).collect());
        prop_assert_eq!(out.merged, 0);
        prop_assert_eq!(out.moved, 0);
        let after: Vec<Point> = swarm.positions().collect();
        prop_assert_eq!(before, after);
    }
}
