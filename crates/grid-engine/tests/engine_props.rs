//! Property tests on the substrate: simultaneous-move semantics, the
//! occupancy index (tiled vs. dense equivalence), view/frame coherence
//! under random actions, and cross-thread bit-identity of the sharded
//! round-apply.

use grid_engine::grid::OccupancyGrid;
use grid_engine::tile::TileIndex;
use grid_engine::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_positions() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::btree_set((0i32..12, 0i32..12), 1..40)
        .prop_map(|set| set.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn arb_steps(n: usize) -> impl Strategy<Value = Vec<(i8, i8)>> {
    proptest::collection::vec((-1i8..=1, -1i8..=1), n..=n)
}

proptest! {
    /// Robot count is conserved: survivors + merged == before, and the
    /// occupancy index agrees with the robot list after any round.
    #[test]
    fn apply_conserves_and_indexes((pts, steps) in arb_positions().prop_flat_map(|p| {
        let n = p.len();
        (Just(p), arb_steps(n))
    })) {
        let mut swarm: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let before = swarm.len();
        let actions: Vec<Action<()>> = steps
            .iter()
            .map(|&(dx, dy)| Action { step: V2::new(dx as i32, dy as i32), state: () })
            .collect();
        let out = swarm.apply(actions);
        prop_assert_eq!(swarm.len() + out.merged, before);
        // Index coherence: every robot is where the grid says it is,
        // and positions are unique.
        let mut seen = BTreeSet::new();
        for (i, &p) in swarm.positions().iter().enumerate() {
            prop_assert_eq!(swarm.robot_at(p), Some(i));
            prop_assert!(seen.insert(p), "duplicate survivor cell");
        }
    }

    /// Views are frame-coherent: for any robot orientation, a probe at
    /// offset v sees exactly the world cell center + orient(v).
    #[test]
    fn view_frame_coherence(pts in arb_positions(), seed in any::<u64>()) {
        let swarm: Swarm<()> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
        for i in 0..swarm.len().min(8) {
            let view = View::new(&swarm, i, 6);
            let me = swarm.positions()[i];
            let o = swarm.orients()[i];
            for dx in -3i32..=3 {
                for dy in -3i32..=3 {
                    let v = V2::new(dx, dy);
                    if v.l1() > 6 { continue; }
                    let world = me + o.apply(v);
                    prop_assert_eq!(view.occupied(v), swarm.occupied(world));
                }
            }
        }
    }

    /// The tiled occupancy index is observationally equivalent to the
    /// dense reference grid on random set/clear/get sequences — the
    /// dense grid is the pre-refactor oracle, kept for exactly this.
    /// Coordinates straddle tile borders (negative and positive) so
    /// tile keying, shard routing and tile reclamation all fire.
    #[test]
    fn tiled_index_matches_dense_reference(
        ops in proptest::collection::vec((0u8..3, -70i32..70, -70i32..70, 0u32..8), 1..200)
    ) {
        let span = Bounds::of([Point::new(-70, -70), Point::new(70, 70)]).unwrap();
        let mut dense = OccupancyGrid::covering(span, 2);
        let mut tiled = TileIndex::new();
        let mut occupied: BTreeSet<Point> = BTreeSet::new();
        for (op, x, y, id) in ops {
            let p = Point::new(x, y);
            match op {
                0 => {
                    prop_assert_eq!(tiled.set(p, id), dense.set(p, id), "set {:?}", p);
                    occupied.insert(p);
                }
                1 => {
                    prop_assert_eq!(tiled.clear(p), dense.clear(p), "clear {:?}", p);
                    occupied.remove(&p);
                }
                _ => prop_assert_eq!(tiled.get(p), dense.get(p), "get {:?}", p),
            }
            // Tile-extreme bounds agree with a brute-force rescan.
            prop_assert_eq!(tiled.bounds(), Bounds::of(occupied.iter().copied()));
        }
        // Memory stays proportional to live tiles: coordinates in
        // -70..70 span at most 4x4 tile keys.
        prop_assert!(tiled.tile_count() <= 16);
    }

    /// The sharded parallel round-apply is bit-identical to the
    /// sequential path for every thread count: same survivor positions,
    /// digest, merge and move counts — under full and partial
    /// activation.
    #[test]
    fn sharded_apply_is_bit_identical_across_threads(
        (pts, steps, active_mask, seed) in arb_positions().prop_flat_map(|p| {
            let n = p.len();
            (Just(p), arb_steps(n), proptest::collection::vec(0u8..4, n..=n), any::<u64>())
        })
    ) {
        let actions = |_: ()| -> Vec<Option<Action<()>>> {
            steps
                .iter()
                .zip(&active_mask)
                .map(|(&(dx, dy), &a)| {
                    // ~3/4 of robots activated; inactive ones exercise the
                    // stationary-wins rule inside shards.
                    (a != 0).then(|| Action { step: V2::new(dx as i32, dy as i32), state: () })
                })
                .collect()
        };
        let mut reference: Swarm<()> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
        let ref_out = reference.apply_partial(actions(()));
        let ref_positions: Vec<Point> = reference.positions().to_vec();
        for threads in [1usize, 2, 3, 8] {
            let mut sharded: Swarm<()> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
            let out = sharded.apply_partial_sharded(actions(()), threads);
            prop_assert_eq!(out, ref_out, "outcome, threads={}", threads);
            prop_assert_eq!(
                sharded.position_digest(),
                reference.position_digest(),
                "digest, threads={}", threads
            );
            let positions: Vec<Point> = sharded.positions().to_vec();
            prop_assert_eq!(&positions, &ref_positions, "positions, threads={}", threads);
            for (i, &p) in sharded.positions().iter().enumerate() {
                prop_assert_eq!(sharded.robot_at(p), Some(i), "index, threads={}", threads);
            }
        }
    }

    /// The sparse O(active) apply is bit-identical to the dense partial
    /// apply — same outcome, survivor order, digest and index — for
    /// every thread count, over several consecutive rounds so
    /// compactions and handle retirement interleave with the sparse
    /// incumbent probes.
    #[test]
    fn sparse_apply_is_bit_identical_to_dense(
        (pts, seed) in (arb_positions(), any::<u64>())
    ) {
        let round_plan = |round: u64, n: usize| -> Vec<(usize, V2)> {
            (0..n)
                .filter_map(|i| {
                    let h = splitmix64(seed ^ round.wrapping_mul(31) ^ (i as u64).wrapping_mul(0x9e37_79b9));
                    // ~half the robots activated, random king steps
                    // (zero steps included: active stayers are the
                    // incumbent-classification edge case).
                    (h & 1 == 0).then(|| {
                        let dx = ((h >> 1) % 3) as i32 - 1;
                        let dy = ((h >> 3) % 3) as i32 - 1;
                        (i, V2::new(dx, dy))
                    })
                })
                .collect()
        };
        let mut dense: Swarm<()> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
        let mut dense_rounds: Vec<(ApplyOutcome, u64)> = Vec::new();
        for round in 0..4u64 {
            let plan = round_plan(round, dense.len());
            let mut all: Vec<Option<Action<()>>> = (0..dense.len()).map(|_| None).collect();
            for &(i, step) in &plan {
                all[i] = Some(Action { step, state: () });
            }
            let out = dense.apply_partial(all);
            dense_rounds.push((out, dense.position_digest()));
        }
        for threads in [1usize, 2, 3, 8] {
            let mut sparse: Swarm<()> = Swarm::new(&pts, OrientationMode::Scrambled(seed));
            for round in 0..4u64 {
                let plan = round_plan(round, sparse.len());
                let active: Vec<usize> = plan.iter().map(|&(i, _)| i).collect();
                let actions: Vec<Action<()>> =
                    plan.iter().map(|&(_, step)| Action { step, state: () }).collect();
                let out = sparse.apply_sparse_threads(&active, actions, threads);
                prop_assert_eq!(
                    (out, sparse.position_digest()),
                    dense_rounds[round as usize],
                    "round {}, threads={}", round, threads
                );
            }
            prop_assert_eq!(sparse.positions(), dense.positions(), "threads={}", threads);
            for (i, &p) in sparse.positions().iter().enumerate() {
                prop_assert_eq!(sparse.robot_at(p), Some(i), "index, threads={}", threads);
            }
        }
    }

    /// Stationary rounds are perfect no-ops.
    #[test]
    fn stay_round_is_identity(pts in arb_positions()) {
        let mut swarm: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let before: Vec<Point> = swarm.positions().to_vec();
        let n = swarm.len();
        let out = swarm.apply((0..n).map(|_| Action::stay(())).collect());
        prop_assert_eq!(out.merged, 0);
        prop_assert_eq!(out.moved, 0);
        let after: Vec<Point> = swarm.positions().to_vec();
        prop_assert_eq!(before, after);
    }
}

/// An ASYNC engine round must be explainable by the dense oracle:
/// scattering each round's *committed* world-frame moves into a full
/// `Option` vector and pushing it through the dense partial apply
/// reproduces the engine's per-round digests and populations — for
/// every thread count, so the sparse in-flight path and the dense
/// reference stay bit-identical under staleness.
#[test]
fn async_engine_rounds_match_dense_oracle_across_threads() {
    use std::cell::RefCell;
    use std::rc::Rc;
    struct MarchEast;
    impl Controller for MarchEast {
        type State = ();
        fn radius(&self) -> i32 {
            2
        }
        fn decide(&self, view: &View<'_, ()>, _ctx: RoundCtx) -> Action<()> {
            if view.occupied(V2::E) {
                Action { step: V2::E, state: () }
            } else {
                Action::stay(())
            }
        }
    }
    let pts: Vec<Point> = (0..48).map(|x| Point::new(x, 0)).collect();
    for threads in [1usize, 2, 3, 8] {
        let records: Rc<RefCell<Vec<RoundRecord>>> = Rc::default();
        let mut engine = Engine::from_positions(
            &pts,
            OrientationMode::Scrambled(5),
            MarchEast,
            EngineConfig {
                threads,
                scheduler: Scheduler::Async { seed: 23, staleness: 4 },
                connectivity: ConnectivityCheck::Never,
                ..Default::default()
            },
        );
        let sink = records.clone();
        engine.set_observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())));
        for _ in 0..40 {
            engine.step().expect("unchecked steps cannot fail");
        }
        drop(engine);
        let mut oracle: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        for rec in records.borrow().iter() {
            let mut all: Vec<Option<Action<()>>> = (0..oracle.len()).map(|_| None).collect();
            for m in &rec.moves {
                all[m.robot as usize] =
                    Some(Action { step: V2::new(m.dx.into(), m.dy.into()), state: () });
            }
            oracle.apply_partial(all);
            assert_eq!(
                (oracle.position_digest(), oracle.len() as u32),
                (rec.digest, rec.population),
                "round {} diverged from the dense oracle, threads={threads}",
                rec.round,
            );
        }
    }
}

/// Above the parallel threshold, the *public* apply engages the sharded
/// path on its own — this pins the integrated behaviour (not just the
/// doc-hidden test hook) to the sequential reference across thread
/// counts, over several merge-heavy rounds.
#[test]
fn large_swarm_apply_threads_is_bit_identical() {
    let n = 2048usize;
    let pts: Vec<Point> = (0..n as i32).map(|x| Point::new(x, 0)).collect();
    let round_actions = |round: u64, len: usize| -> Vec<Option<Action<()>>> {
        (0..len)
            .map(|i| {
                let h = splitmix64(round ^ (i as u64).wrapping_mul(0x9e37_79b9));
                match h % 4 {
                    0 => Some(Action { step: V2::E, state: () }),
                    1 => Some(Action { step: V2::W, state: () }),
                    2 => Some(Action::stay(())),
                    _ => None,
                }
            })
            .collect()
    };
    let run = |threads: usize| {
        let mut swarm: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let mut digests = Vec::new();
        let mut merged = 0usize;
        for round in 0..6u64 {
            let out = swarm.apply_partial_threads(round_actions(round, swarm.len()), threads);
            merged += out.merged;
            digests.push(swarm.position_digest());
        }
        (digests, merged, swarm.positions().to_vec())
    };
    let reference = run(1);
    assert!(reference.1 > 0, "rounds must actually merge robots");
    for threads in [2usize, 3, 8] {
        assert_eq!(run(threads), reference, "threads={threads}");
    }
}
