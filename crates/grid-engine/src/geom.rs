//! Planar integer geometry: grid points, step vectors, and the dihedral
//! group `D4` used to model robots without a common compass.
//!
//! All coordinates are `i32`; even the sparse clusters workloads span a
//! few hundred thousand cells per axis at n = 10⁶, far from overflow
//! (area computations that could exceed `i32`/`u64` widen explicitly).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// An absolute cell of the infinite grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    pub x: i32,
    pub y: i32,
}

/// A translation vector between cells (also used for single-round steps,
/// where both components are in `-1..=1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct V2 {
    pub x: i32,
    pub y: i32,
}

impl Point {
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// L1 (Manhattan) distance, the metric of the paper's viewing range.
    pub fn l1(self, other: Point) -> i32 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev distance (number of 8-neighbour king moves).
    pub fn linf(self, other: Point) -> i32 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// The four grid cells that count for swarm *connectivity*.
    pub fn neighbors4(self) -> [Point; 4] {
        [
            Point::new(self.x + 1, self.y),
            Point::new(self.x - 1, self.y),
            Point::new(self.x, self.y + 1),
            Point::new(self.x, self.y - 1),
        ]
    }

    /// The eight grid cells a robot may *move* to in one round.
    pub fn neighbors8(self) -> [Point; 8] {
        [
            Point::new(self.x + 1, self.y),
            Point::new(self.x + 1, self.y + 1),
            Point::new(self.x, self.y + 1),
            Point::new(self.x - 1, self.y + 1),
            Point::new(self.x - 1, self.y),
            Point::new(self.x - 1, self.y - 1),
            Point::new(self.x, self.y - 1),
            Point::new(self.x + 1, self.y - 1),
        ]
    }
}

impl V2 {
    pub const ZERO: V2 = V2 { x: 0, y: 0 };
    /// Unit vectors named for readability; robots themselves have no
    /// common sense of "east" — these names live in each robot's frame.
    pub const E: V2 = V2 { x: 1, y: 0 };
    pub const W: V2 = V2 { x: -1, y: 0 };
    pub const N: V2 = V2 { x: 0, y: 1 };
    pub const S: V2 = V2 { x: 0, y: -1 };

    pub const fn new(x: i32, y: i32) -> Self {
        V2 { x, y }
    }

    pub fn l1(self) -> i32 {
        self.x.abs() + self.y.abs()
    }

    pub fn linf(self) -> i32 {
        self.x.abs().max(self.y.abs())
    }

    /// True for the zero vector and the 8 unit king steps.
    pub fn is_step(self) -> bool {
        self.linf() <= 1
    }

    /// True for the 4 axis-aligned unit vectors.
    pub fn is_axis_unit(self) -> bool {
        self.l1() == 1
    }

    /// Rotate 90° counter-clockwise.
    pub fn rot_ccw(self) -> V2 {
        V2::new(-self.y, self.x)
    }

    /// Rotate 90° clockwise.
    pub fn rot_cw(self) -> V2 {
        V2::new(self.y, -self.x)
    }

    /// The four axis-aligned unit vectors.
    pub fn axis_units() -> [V2; 4] {
        [V2::E, V2::N, V2::W, V2::S]
    }
}

impl Add<V2> for Point {
    type Output = Point;
    fn add(self, v: V2) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<V2> for Point {
    fn add_assign(&mut self, v: V2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub for Point {
    type Output = V2;
    fn sub(self, other: Point) -> V2 {
        V2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for V2 {
    type Output = V2;
    fn add(self, o: V2) -> V2 {
        V2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for V2 {
    type Output = V2;
    fn sub(self, o: V2) -> V2 {
        V2::new(self.x - o.x, self.y - o.y)
    }
}

impl Neg for V2 {
    type Output = V2;
    fn neg(self) -> V2 {
        V2::new(-self.x, -self.y)
    }
}

impl Mul<i32> for V2 {
    type Output = V2;
    fn mul(self, k: i32) -> V2 {
        V2::new(self.x * k, self.y * k)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Debug for V2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

/// An element of the dihedral group of the square, used as a per-robot
/// view transform: robots in this model agree on the grid axes' *slots*
/// but not on which direction is which (no compass) nor on handedness.
///
/// `apply` computes `rot^r ∘ flip^f` where `flip` negates `x` and `rot`
/// is a 90° counter-clockwise rotation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct D4 {
    /// Number of 90° CCW rotations applied after the optional flip, 0..4.
    pub rot: u8,
    /// Whether `x` is negated before rotating.
    pub flip: bool,
}

impl D4 {
    pub const IDENTITY: D4 = D4 { rot: 0, flip: false };

    /// All 8 group elements, identity first.
    pub fn all() -> [D4; 8] {
        let mut out = [D4::IDENTITY; 8];
        let mut i = 0;
        for &flip in &[false, true] {
            for rot in 0..4u8 {
                out[i] = D4 { rot, flip };
                i += 1;
            }
        }
        out
    }

    /// Construct from an index in `0..8` (useful for seeding).
    pub fn from_index(i: u8) -> D4 {
        D4 { rot: i & 3, flip: (i & 4) != 0 }
    }

    pub fn apply(self, v: V2) -> V2 {
        let mut v = if self.flip { V2::new(-v.x, v.y) } else { v };
        for _ in 0..self.rot {
            v = v.rot_ccw();
        }
        v
    }

    /// The transform `g` with `g.apply(self.apply(v)) == v`.
    pub fn inverse(self) -> D4 {
        // Search is fine: the group has 8 elements and this is not hot.
        for g in D4::all() {
            if g.then(self) == D4::IDENTITY {
                return g;
            }
        }
        unreachable!("every group element has an inverse")
    }

    /// Composition: `self.then(g)` applies `self` first, then `g`.
    pub fn then(self, g: D4) -> D4 {
        // Normalise by probing two independent vectors.
        let e = g.apply(self.apply(V2::E));
        let n = g.apply(self.apply(V2::N));
        for h in D4::all() {
            if h.apply(V2::E) == e && h.apply(V2::N) == n {
                return h;
            }
        }
        unreachable!("composition stays in the group")
    }
}

/// Axis-aligned bounding box of a point set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bounds {
    pub min: Point,
    pub max: Point,
}

impl Bounds {
    /// Bounds of a non-empty point iterator; `None` when empty.
    pub fn of(points: impl IntoIterator<Item = Point>) -> Option<Bounds> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Bounds { min: first, max: first };
        for p in it {
            b.min.x = b.min.x.min(p.x);
            b.min.y = b.min.y.min(p.y);
            b.max.x = b.max.x.max(p.x);
            b.max.y = b.max.y.max(p.y);
        }
        Some(b)
    }

    pub fn width(&self) -> i32 {
        self.max.x - self.min.x + 1
    }

    pub fn height(&self) -> i32 {
        self.max.y - self.min.y + 1
    }

    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Grow the box by `m` cells on every side.
    pub fn inflated(&self, m: i32) -> Bounds {
        Bounds {
            min: Point::new(self.min.x - m, self.min.y - m),
            max: Point::new(self.max.x + m, self.max.y + m),
        }
    }

    /// The paper's termination condition: the swarm fits into a 2×2 area.
    pub fn fits_2x2(&self) -> bool {
        self.width() <= 2 && self.height() <= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_and_linf() {
        let a = Point::new(0, 0);
        let b = Point::new(3, -4);
        assert_eq!(a.l1(b), 7);
        assert_eq!(a.linf(b), 4);
    }

    #[test]
    fn rotations_cycle() {
        let v = V2::new(2, 1);
        assert_eq!(v.rot_ccw().rot_ccw().rot_ccw().rot_ccw(), v);
        assert_eq!(v.rot_ccw().rot_cw(), v);
        assert_eq!(V2::E.rot_ccw(), V2::N);
        assert_eq!(V2::N.rot_ccw(), V2::W);
    }

    #[test]
    fn d4_inverse_roundtrip() {
        let v = V2::new(3, -7);
        for g in D4::all() {
            assert_eq!(g.inverse().apply(g.apply(v)), v, "g = {g:?}");
        }
    }

    #[test]
    fn d4_preserves_norms() {
        let v = V2::new(5, -2);
        for g in D4::all() {
            assert_eq!(g.apply(v).l1(), v.l1());
            assert_eq!(g.apply(v).linf(), v.linf());
        }
    }

    #[test]
    fn d4_composition_associative_on_probe() {
        let v = V2::new(1, 2);
        for a in D4::all() {
            for b in D4::all() {
                assert_eq!(a.then(b).apply(v), b.apply(a.apply(v)));
            }
        }
    }

    #[test]
    fn d4_all_distinct() {
        let probes = [V2::E, V2::N];
        let mut seen = std::collections::HashSet::new();
        for g in D4::all() {
            seen.insert(probes.map(|p| g.apply(p)));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn bounds_basics() {
        let b = Bounds::of([Point::new(0, 0), Point::new(1, 1)]).unwrap();
        assert!(b.fits_2x2());
        assert_eq!(b.width(), 2);
        let b = Bounds::of([Point::new(0, 0), Point::new(2, 0)]).unwrap();
        assert!(!b.fits_2x2());
        assert!(b.inflated(1).contains(Point::new(-1, -1)));
        assert!(Bounds::of(std::iter::empty()).is_none());
    }

    #[test]
    fn neighbor_counts() {
        let p = Point::new(0, 0);
        assert_eq!(p.neighbors4().len(), 4);
        assert_eq!(p.neighbors8().len(), 8);
        for n in p.neighbors4() {
            assert_eq!(p.l1(n), 1);
        }
        for n in p.neighbors8() {
            assert_eq!(p.linf(n), 1);
        }
    }
}
