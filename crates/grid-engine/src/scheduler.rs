//! Activation schedulers: which robots run look-compute-move in a round.
//!
//! The paper proves its O(n) bound in the fully-synchronous (FSYNC)
//! model, where every robot is activated every round. The wider
//! look-compute-move literature (the Suzuki–Yamashita scheduler
//! hierarchy) also studies semi-synchronous (SSYNC) activation — an
//! arbitrary non-empty subset per round — and asynchronous (ASYNC)
//! adversaries. This module adds those model relatives as engine
//! policies so campaigns can probe how far the linear-round behaviour
//! survives weaker synchrony:
//!
//! * [`Scheduler::Fsync`] — everyone, every round (bit-identical to the
//!   pre-policy engine).
//! * [`Scheduler::Ssync`] — a seeded pseudo-random non-empty subset;
//!   each robot is activated independently with probability `p`%.
//! * [`Scheduler::RoundRobin`] — a deterministic rotating window of `k`
//!   robots, an ASYNC-flavoured adversary (a fair sequential scheduler
//!   when `k = 1`).
//! * [`Scheduler::Crash`] — crash-stop faults: up to `f` seeded victims
//!   are permanently deactivated from their seeded crash round on,
//!   everyone else runs fully synchronously.
//! * [`Scheduler::Async`] — true look/move decoupling: every activation
//!   is a *look* whose move commits up to `staleness` rounds later, so
//!   robots act on stale snapshots (the literature's ASYNC adversary,
//!   discretised to the engine's round clock).
//!
//! Activation sets are pure functions of `(policy, round, n)`, so runs
//! stay reproducible across thread counts, which the campaign resume
//! and determinism tests rely on. The ASYNC policy additionally keeps
//! per-robot in-flight state — that state lives in the
//! [`Swarm`](crate::Swarm) (the engine's deterministic round state),
//! not here, so the policy itself stays a pure function; see
//! [`Scheduler::Async`] for the division of labour.

/// SplitMix64: the seeding mix used everywhere the workspace needs a
/// cheap, statistically solid hash of small integers — scheduler
/// draws, orientation scrambling, swarm digests, and (via the
/// `gather-trace` crate) trace config digests, which is why it is
/// exported rather than duplicated per crate.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which robots are activated in a given round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Fully synchronous: every robot, every round (the paper's model).
    #[default]
    Fsync,
    /// Semi-synchronous: each robot activates independently with
    /// probability `p`/100, pseudo-randomly from `(seed, round, index)`.
    /// The subset is forced non-empty (an adversary that activates
    /// nobody forever is excluded by the fairness assumption).
    Ssync {
        seed: u64,
        /// Activation probability in percent, `1..=100`.
        p: u8,
    },
    /// A rotating window of `k` robots (clamped to `1..=n`): robots
    /// `(round·k + 0..k) mod n` in index order. With `k = 1` this is the
    /// classic fair sequential scheduler; any `k < n` is an
    /// ASYNC-flavoured adversary that still activates every robot at
    /// most `⌈n/k⌉` rounds apart.
    RoundRobin { k: u32 },
    /// Crash faults over an otherwise fully-synchronous schedule: up to
    /// `f` seeded victims stop being activated forever once their
    /// (seeded) crash round arrives. A crashed robot keeps its position
    /// and state — it becomes a static obstacle other robots can still
    /// merge into, the classic crash-stop fault model.
    ///
    /// Victim indices and crash rounds are pure functions of
    /// `(seed, n0)`, pinned to the *initial* population `n0` rather
    /// than the live one — drawing against the shrinking live count
    /// would silently re-roll the victim set after every merge and
    /// turn crash-stop into random blinking deactivation. Crash rounds
    /// are drawn from `0..n0+8`: gathering finishes within ~n rounds
    /// (often n/2 on easy families), so a wider horizon would park
    /// most faults after the run already ended. One caveat remains: the engine addresses
    /// robots by current index, and merges compact indices, so a
    /// victim slot can come to denote a different physical robot over
    /// time — a deterministic, adversarial approximation of
    /// physical-identity crash-stop, which a stateless index-based
    /// policy cannot express exactly. The activation set is forced
    /// non-empty: one seeded index is immune, with a fallback when
    /// every live index is crashed.
    Crash {
        seed: u64,
        /// Maximum number of crashed robots (victim draws may collide,
        /// so fewer can crash).
        f: u32,
        /// Initial population the victim draws are pinned to; `0` means
        /// "use the live count" (only sensible for swarms that do not
        /// merge).
        n0: u32,
    },
    /// True asynchrony: a robot's *look* (view snapshot + compute) and
    /// its *move* are decoupled. Each look draws a seeded delay
    /// `d ∈ 0..=staleness`; the move commits `d` rounds later, during
    /// which the robot is *in flight* — it holds its position, cannot
    /// look again, and other robots observe it where it was when it
    /// looked. `staleness = 0` degenerates to FSYNC.
    ///
    /// Division of labour: [`Scheduler::activate`] returns the *look
    /// candidates* ([`Activation::All`]); the engine removes mid-flight
    /// robots (state a pure `(policy, round, n)` function cannot see —
    /// the in-flight set lives in the swarm) and draws each look's
    /// delay from `(seed, round, handle)`, so the whole schedule is
    /// still a deterministic function of the run.
    Async {
        seed: u64,
        /// Maximum rounds between a look and its move, `>= 1` for real
        /// asynchrony (`0` is FSYNC).
        staleness: u32,
    },
}

/// The activation set for one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Every robot is active (the FSYNC fast path: no subset allocation,
    /// the engine runs the exact pre-policy code path).
    All,
    /// The sorted, non-empty list of active robot indices.
    Subset(Vec<usize>),
}

impl Activation {
    /// Number of robots activated, given the swarm size.
    pub fn len(&self, n: usize) -> usize {
        match self {
            Activation::All => n,
            Activation::Subset(s) => s.len(),
        }
    }
}

impl Scheduler {
    /// The activation set for `round` over a swarm of `n` robots.
    /// Guaranteed non-empty for `n >= 1`; pure in `(self, round, n)`.
    pub fn activate(&self, round: u64, n: usize) -> Activation {
        match *self {
            Scheduler::Fsync => Activation::All,
            Scheduler::Ssync { seed, p } => {
                let p = u64::from(p.clamp(1, 100));
                if p >= 100 {
                    return Activation::All;
                }
                let round_key = splitmix64(seed ^ round.wrapping_mul(0xa076_1d64_78bd_642f));
                let mut active: Vec<usize> =
                    (0..n).filter(|&i| splitmix64(round_key ^ i as u64) % 100 < p).collect();
                if active.is_empty() && n > 0 {
                    active.push((splitmix64(round_key) % n as u64) as usize);
                }
                if active.len() == n {
                    Activation::All
                } else {
                    Activation::Subset(active)
                }
            }
            Scheduler::RoundRobin { k } => {
                let k = (k.max(1) as usize).min(n.max(1));
                if k >= n {
                    return Activation::All;
                }
                let start = ((round as u128 * k as u128) % n.max(1) as u128) as usize;
                let mut active: Vec<usize> = (0..k).map(|j| (start + j) % n).collect();
                active.sort_unstable();
                Activation::Subset(active)
            }
            Scheduler::Crash { seed, f, n0 } => {
                if f == 0 || n == 0 {
                    return Activation::All;
                }
                // All draws are pinned to the initial population m, so
                // the victim set never re-rolls as merges shrink the
                // live count. The fairness fallback: the immune index
                // never crashes, so the set stays non-empty. Victim
                // draws use `j + 1` multipliers so no draw shares the
                // immune index's raw `splitmix64(seed)` stream (with a
                // bare `j`, draw 0 would *always* equal the immune
                // index and silently reduce every `f` to `f - 1`).
                let m = if n0 == 0 { n as u64 } else { u64::from(n0) };
                let immune = (splitmix64(seed) % m) as usize;
                let mut crashed = vec![false; n];
                let mut any = false;
                for j in 1..=u64::from(f) {
                    let victim =
                        (splitmix64(seed ^ j.wrapping_mul(0xa076_1d64_78bd_642f)) % m) as usize;
                    let crash_round =
                        splitmix64(seed ^ j.wrapping_mul(0xe703_7ed1_a0b4_28db)) % (m + 8);
                    if victim != immune && victim < n && round >= crash_round {
                        any |= !crashed[victim];
                        crashed[victim] = true;
                    }
                }
                if !any {
                    return Activation::All;
                }
                let active: Vec<usize> = (0..n).filter(|&i| !crashed[i]).collect();
                if active.is_empty() {
                    // Merges can push every surviving live index into
                    // the crashed set while the immune slot is out of
                    // range; fairness still demands a non-empty round.
                    return Activation::Subset(vec![(splitmix64(seed) % n as u64) as usize]);
                }
                Activation::Subset(active)
            }
            // Every robot is a look *candidate* each round; the engine
            // filters out the in-flight ones (swarm state this pure
            // function cannot see) and schedules the moves.
            Scheduler::Async { .. } => Activation::All,
        }
    }
}

/// The seeded look→move delay for one ASYNC look: uniform over
/// `0..=staleness`, pure in `(seed, round, handle)`. Keyed by the
/// robot's stable *handle* (not its dense slot), so compactions after
/// merges never re-roll another robot's schedule — the property the
/// cross-thread bit-identity of ASYNC runs rests on.
pub(crate) fn async_delay(seed: u64, staleness: u32, round: u64, handle: u32) -> u64 {
    let round_key = splitmix64(seed ^ round.wrapping_mul(0xa076_1d64_78bd_642f));
    splitmix64(round_key ^ u64::from(handle)) % (u64::from(staleness) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_activates_everyone() {
        for round in 0..10 {
            assert_eq!(Scheduler::Fsync.activate(round, 7), Activation::All);
        }
    }

    #[test]
    fn ssync_is_reproducible_and_non_empty() {
        let s = Scheduler::Ssync { seed: 42, p: 50 };
        for round in 0..200 {
            let a = s.activate(round, 33);
            assert_eq!(a, s.activate(round, 33), "round {round} not reproducible");
            assert!(a.len(33) >= 1, "round {round} activated nobody");
            if let Activation::Subset(idx) = &a {
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated subset");
                assert!(idx.iter().all(|&i| i < 33));
            }
        }
    }

    #[test]
    fn ssync_hits_the_target_rate() {
        let s = Scheduler::Ssync { seed: 7, p: 50 };
        let n = 64usize;
        let rounds = 500u64;
        let total: usize = (0..rounds).map(|r| s.activate(r, n).len(n)).sum();
        let rate = total as f64 / (rounds as f64 * n as f64);
        assert!((rate - 0.5).abs() < 0.05, "activation rate {rate}");
    }

    #[test]
    fn ssync_low_p_still_non_empty_on_tiny_swarms() {
        let s = Scheduler::Ssync { seed: 3, p: 1 };
        for round in 0..100 {
            assert!(s.activate(round, 2).len(2) >= 1);
        }
    }

    #[test]
    fn ssync_full_probability_is_fsync() {
        let s = Scheduler::Ssync { seed: 9, p: 100 };
        assert_eq!(s.activate(5, 10), Activation::All);
    }

    #[test]
    fn round_robin_rotates_fairly() {
        let s = Scheduler::RoundRobin { k: 3 };
        let n = 8usize;
        let mut counts = vec![0usize; n];
        for round in 0..(8 * 3) as u64 {
            match s.activate(round, n) {
                Activation::Subset(idx) => {
                    assert_eq!(idx.len(), 3);
                    for i in idx {
                        counts[i] += 1;
                    }
                }
                Activation::All => panic!("k < n must be a strict subset"),
            }
        }
        // 24 rounds × 3 activations = 72 = 9 per robot exactly.
        assert!(counts.iter().all(|&c| c == 9), "{counts:?}");
    }

    #[test]
    fn round_robin_window_wraps() {
        let s = Scheduler::RoundRobin { k: 3 };
        // n = 5, round 3: start = 9 mod 5 = 4 -> {4, 0, 1} sorted.
        assert_eq!(s.activate(3, 5), Activation::Subset(vec![0, 1, 4]));
    }

    #[test]
    fn round_robin_covers_whole_swarm_when_k_large() {
        assert_eq!(Scheduler::RoundRobin { k: 10 }.activate(0, 4), Activation::All);
        assert_eq!(Scheduler::RoundRobin { k: 0 }.activate(0, 1), Activation::All);
    }

    #[test]
    fn crash_deactivates_permanently_and_respects_f() {
        let n = 16usize;
        let s = Scheduler::Crash { seed: 17, f: 3, n0: n as u32 };
        let mut ever_crashed: Vec<bool> = vec![false; n];
        for round in 0..200u64 {
            let a = s.activate(round, n);
            assert_eq!(a, s.activate(round, n), "round {round} not reproducible");
            let active: Vec<usize> = match &a {
                Activation::All => (0..n).collect(),
                Activation::Subset(idx) => {
                    assert!(idx.windows(2).all(|w| w[0] < w[1]), "unsorted subset");
                    idx.clone()
                }
            };
            assert!(!active.is_empty());
            for (i, ever) in ever_crashed.iter_mut().enumerate() {
                let crashed_now = !active.contains(&i);
                // Permanence: once a robot is out it never comes back.
                assert!(crashed_now || !*ever, "robot {i} recovered at round {round}");
                *ever |= crashed_now;
            }
            assert!(ever_crashed.iter().filter(|&&c| c).count() <= 3, "more than f crashed");
        }
        // The seeded victims do crash within the n0+8 horizon.
        assert!(ever_crashed.iter().any(|&c| c), "no victim ever crashed");
    }

    #[test]
    fn crash_f1_actually_crashes_somebody() {
        // Regression: the first victim draw used to coincide with the
        // immune index for *every* seed, making crash-f1 a silent
        // no-op. A genuine 1/n chance collision per seed is fine; a
        // systematic one is not.
        let n = 16usize;
        let late_round = 10 * n as u64; // past the n0+8 crash horizon
        let crashing_seeds = (0..20u64)
            .filter(|&seed| {
                let s = Scheduler::Crash { seed, f: 1, n0: n as u32 };
                s.activate(late_round, n).len(n) < n
            })
            .count();
        assert!(
            crashing_seeds >= 15,
            "crash-f1 crashed someone for only {crashing_seeds}/20 seeds"
        );
    }

    #[test]
    fn crash_stays_non_empty_even_with_huge_f() {
        for n0 in [0u32, 5] {
            let s = Scheduler::Crash { seed: 5, f: 1000, n0 };
            for n in [1usize, 2, 5] {
                for round in [0u64, 10, 100, 10_000] {
                    assert!(s.activate(round, n).len(n) >= 1, "n0={n0} n={n} round={round}");
                }
            }
        }
    }

    #[test]
    fn crash_set_is_stable_under_shrinking_population() {
        // The live count drops as robots merge; pinning draws to n0
        // must keep the crashed index set monotone (no round-to-round
        // re-rolls that resurrect a crashed slot while n is stable,
        // and no new draws appearing because n shrank).
        let n0 = 32u32;
        let s = Scheduler::Crash { seed: 23, f: 6, n0 };
        let late = 10 * u64::from(n0); // beyond the n0+8 horizon
        let crashed_at = |n: usize| -> Vec<usize> {
            match s.activate(late, n) {
                Activation::All => Vec::new(),
                Activation::Subset(active) => (0..n).filter(|i| !active.contains(i)).collect(),
            }
        };
        let full = crashed_at(n0 as usize);
        assert!(!full.is_empty(), "seeded victims must crash within the horizon");
        for n in (1..=n0 as usize).rev() {
            let expected: Vec<usize> = full.iter().copied().filter(|&v| v < n).collect();
            if expected.len() == n {
                // Every live index is a victim: the fairness fallback
                // re-activates one, so exact-set comparison ends here.
                continue;
            }
            assert_eq!(crashed_at(n), expected, "crash set re-rolled at n={n}");
        }
    }

    #[test]
    fn crash_f0_is_fsync() {
        assert_eq!(Scheduler::Crash { seed: 1, f: 0, n0: 9 }.activate(7, 9), Activation::All);
    }

    #[test]
    fn async_activates_all_look_candidates() {
        // The in-flight filter is the engine's job; the pure policy
        // nominates everyone.
        for round in 0..10 {
            assert_eq!(
                Scheduler::Async { seed: 3, staleness: 4 }.activate(round, 7),
                Activation::All
            );
        }
    }

    #[test]
    fn async_delay_is_bounded_seeded_and_handle_keyed() {
        for staleness in [0u32, 1, 4, 7] {
            for round in 0..50u64 {
                for handle in 0..20u32 {
                    let d = async_delay(11, staleness, round, handle);
                    assert!(d <= u64::from(staleness), "delay {d} > staleness {staleness}");
                    assert_eq!(d, async_delay(11, staleness, round, handle), "not reproducible");
                }
            }
        }
        // Different handles (and different rounds) decorrelate: with
        // staleness 4 the draws cannot all coincide.
        let spread: std::collections::BTreeSet<u64> =
            (0..32u32).map(|h| async_delay(11, 4, 3, h)).collect();
        assert!(spread.len() > 1, "delays degenerate across handles");
        let spread: std::collections::BTreeSet<u64> =
            (0..32u64).map(|r| async_delay(11, 4, r, 3)).collect();
        assert!(spread.len() > 1, "delays degenerate across rounds");
    }

    #[test]
    fn async_delay_rate_is_roughly_uniform() {
        let staleness = 3u32;
        let mut counts = [0usize; 4];
        for round in 0..200u64 {
            for handle in 0..16u32 {
                counts[async_delay(9, staleness, round, handle) as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for (d, &c) in counts.iter().enumerate() {
            let rate = c as f64 / total as f64;
            assert!((rate - 0.25).abs() < 0.05, "delay {d} rate {rate}");
        }
    }
}
