//! Activation schedulers: which robots run look-compute-move in a round.
//!
//! The paper proves its O(n) bound in the fully-synchronous (FSYNC)
//! model, where every robot is activated every round. The wider
//! look-compute-move literature (the Suzuki–Yamashita scheduler
//! hierarchy) also studies semi-synchronous (SSYNC) activation — an
//! arbitrary non-empty subset per round — and asynchronous (ASYNC)
//! adversaries. This module adds those model relatives as engine
//! policies so campaigns can probe how far the linear-round behaviour
//! survives weaker synchrony:
//!
//! * [`Scheduler::Fsync`] — everyone, every round (bit-identical to the
//!   pre-policy engine).
//! * [`Scheduler::Ssync`] — a seeded pseudo-random non-empty subset;
//!   each robot is activated independently with probability `p`%.
//! * [`Scheduler::RoundRobin`] — a deterministic rotating window of `k`
//!   robots, an ASYNC-flavoured adversary (a fair sequential scheduler
//!   when `k = 1`).
//!
//! Activation sets are pure functions of `(policy, round, n)`, so runs
//! stay reproducible across thread counts, which the campaign resume
//! and determinism tests rely on.

/// SplitMix64: the seeding mix used everywhere the workspace needs a
/// cheap, statistically solid hash of small integers.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which robots are activated in a given round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Fully synchronous: every robot, every round (the paper's model).
    #[default]
    Fsync,
    /// Semi-synchronous: each robot activates independently with
    /// probability `p`/100, pseudo-randomly from `(seed, round, index)`.
    /// The subset is forced non-empty (an adversary that activates
    /// nobody forever is excluded by the fairness assumption).
    Ssync {
        seed: u64,
        /// Activation probability in percent, `1..=100`.
        p: u8,
    },
    /// A rotating window of `k` robots (clamped to `1..=n`): robots
    /// `(round·k + 0..k) mod n` in index order. With `k = 1` this is the
    /// classic fair sequential scheduler; any `k < n` is an
    /// ASYNC-flavoured adversary that still activates every robot at
    /// most `⌈n/k⌉` rounds apart.
    RoundRobin { k: u32 },
}

/// The activation set for one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Every robot is active (the FSYNC fast path: no subset allocation,
    /// the engine runs the exact pre-policy code path).
    All,
    /// The sorted, non-empty list of active robot indices.
    Subset(Vec<usize>),
}

impl Activation {
    /// Number of robots activated, given the swarm size.
    pub fn len(&self, n: usize) -> usize {
        match self {
            Activation::All => n,
            Activation::Subset(s) => s.len(),
        }
    }
}

impl Scheduler {
    /// The activation set for `round` over a swarm of `n` robots.
    /// Guaranteed non-empty for `n >= 1`; pure in `(self, round, n)`.
    pub fn activate(&self, round: u64, n: usize) -> Activation {
        match *self {
            Scheduler::Fsync => Activation::All,
            Scheduler::Ssync { seed, p } => {
                let p = u64::from(p.clamp(1, 100));
                if p >= 100 {
                    return Activation::All;
                }
                let round_key = splitmix64(seed ^ round.wrapping_mul(0xa076_1d64_78bd_642f));
                let mut active: Vec<usize> =
                    (0..n).filter(|&i| splitmix64(round_key ^ i as u64) % 100 < p).collect();
                if active.is_empty() && n > 0 {
                    active.push((splitmix64(round_key) % n as u64) as usize);
                }
                if active.len() == n {
                    Activation::All
                } else {
                    Activation::Subset(active)
                }
            }
            Scheduler::RoundRobin { k } => {
                let k = (k.max(1) as usize).min(n.max(1));
                if k >= n {
                    return Activation::All;
                }
                let start = ((round as u128 * k as u128) % n.max(1) as u128) as usize;
                let mut active: Vec<usize> = (0..k).map(|j| (start + j) % n).collect();
                active.sort_unstable();
                Activation::Subset(active)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_activates_everyone() {
        for round in 0..10 {
            assert_eq!(Scheduler::Fsync.activate(round, 7), Activation::All);
        }
    }

    #[test]
    fn ssync_is_reproducible_and_non_empty() {
        let s = Scheduler::Ssync { seed: 42, p: 50 };
        for round in 0..200 {
            let a = s.activate(round, 33);
            assert_eq!(a, s.activate(round, 33), "round {round} not reproducible");
            assert!(a.len(33) >= 1, "round {round} activated nobody");
            if let Activation::Subset(idx) = &a {
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated subset");
                assert!(idx.iter().all(|&i| i < 33));
            }
        }
    }

    #[test]
    fn ssync_hits_the_target_rate() {
        let s = Scheduler::Ssync { seed: 7, p: 50 };
        let n = 64usize;
        let rounds = 500u64;
        let total: usize = (0..rounds).map(|r| s.activate(r, n).len(n)).sum();
        let rate = total as f64 / (rounds as f64 * n as f64);
        assert!((rate - 0.5).abs() < 0.05, "activation rate {rate}");
    }

    #[test]
    fn ssync_low_p_still_non_empty_on_tiny_swarms() {
        let s = Scheduler::Ssync { seed: 3, p: 1 };
        for round in 0..100 {
            assert!(s.activate(round, 2).len(2) >= 1);
        }
    }

    #[test]
    fn ssync_full_probability_is_fsync() {
        let s = Scheduler::Ssync { seed: 9, p: 100 };
        assert_eq!(s.activate(5, 10), Activation::All);
    }

    #[test]
    fn round_robin_rotates_fairly() {
        let s = Scheduler::RoundRobin { k: 3 };
        let n = 8usize;
        let mut counts = vec![0usize; n];
        for round in 0..(8 * 3) as u64 {
            match s.activate(round, n) {
                Activation::Subset(idx) => {
                    assert_eq!(idx.len(), 3);
                    for i in idx {
                        counts[i] += 1;
                    }
                }
                Activation::All => panic!("k < n must be a strict subset"),
            }
        }
        // 24 rounds × 3 activations = 72 = 9 per robot exactly.
        assert!(counts.iter().all(|&c| c == 9), "{counts:?}");
    }

    #[test]
    fn round_robin_window_wraps() {
        let s = Scheduler::RoundRobin { k: 3 };
        // n = 5, round 3: start = 9 mod 5 = 4 -> {4, 0, 1} sorted.
        assert_eq!(s.activate(3, 5), Activation::Subset(vec![0, 1, 4]));
    }

    #[test]
    fn round_robin_covers_whole_swarm_when_k_large() {
        assert_eq!(Scheduler::RoundRobin { k: 10 }.activate(0, 4), Activation::All);
        assert_eq!(Scheduler::RoundRobin { k: 0 }.activate(0, 1), Activation::All);
    }
}
