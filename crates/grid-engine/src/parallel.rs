//! Data-parallel execution of the FSYNC compute step.
//!
//! One round of the simulation is a textbook parallel map: every robot's
//! decision is a pure function of the immutable snapshot, so the compute
//! step partitions the robot array into chunks and evaluates them on
//! scoped threads (the rayon pattern from the domain guide, hand-rolled
//! so the workspace keeps its minimal dependency footprint). Results are
//! written back in index order, so the outcome is bit-identical to the
//! sequential execution regardless of thread count — a property the
//! determinism tests rely on.

use std::num::NonZeroUsize;

/// Below this many items the spawn overhead dominates; run sequentially.
const PARALLEL_THRESHOLD: usize = 1024;

/// Resolve a thread-count request: `0` means "use available parallelism".
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }
}

/// Partition `0..n` into exactly `min(threads, n)` contiguous chunks
/// whose lengths differ by at most one, so every worker gets an equal
/// share even when `n` is barely above [`PARALLEL_THRESHOLD`].
pub fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunks = threads.max(1).min(n.max(1));
    (0..chunks).map(|c| (c * n / chunks, (c + 1) * n / chunks)).collect()
}

/// Evaluate `f(0..n)` and collect results in index order, splitting the
/// range over `threads` scoped threads when worthwhile.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || n < PARALLEL_THRESHOLD {
        return (0..n).map(f).collect();
    }
    let bounds = chunk_bounds(n, threads);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(bounds.len());
        for &(lo, hi) in &bounds {
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            out.push(h.join().expect("compute worker panicked"));
        }
    });
    let mut flat = Vec::with_capacity(n);
    for chunk in out {
        flat.extend(chunk);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_small() {
        let seq: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(parallel_map(100, 4, |i| i * i), seq);
    }

    #[test]
    fn matches_sequential_large() {
        let n = 50_000;
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                parallel_map(n, threads, |i| (i as u64).wrapping_mul(2654435761)),
                seq,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(0, 8, |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_defaults() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    /// Regression: chunk count must track the requested thread count
    /// exactly (it used to be capped near n / 256, idling most workers
    /// for n just above PARALLEL_THRESHOLD), with balanced chunks.
    #[test]
    fn chunking_uses_every_thread_exactly() {
        for threads in [1usize, 2, 3, 8, 16] {
            for n in [
                PARALLEL_THRESHOLD,
                PARALLEL_THRESHOLD + 1,
                PARALLEL_THRESHOLD + threads - 1,
                4 * PARALLEL_THRESHOLD + 3,
            ] {
                let bounds = chunk_bounds(n, threads);
                assert_eq!(bounds.len(), threads.min(n), "n={n} threads={threads}");
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds.last().unwrap().1, n);
                let (min_len, max_len) = bounds.iter().fold((usize::MAX, 0), |acc, &(lo, hi)| {
                    assert!(lo <= hi);
                    (acc.0.min(hi - lo), acc.1.max(hi - lo))
                });
                assert!(max_len - min_len <= 1, "unbalanced: n={n} threads={threads}");
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap/overlap: n={n} threads={threads}");
                }
            }
        }
    }

    /// Determinism across thread counts, pinned at a size just above the
    /// parallel threshold where the old chunking under-used threads.
    #[test]
    fn determinism_across_thread_counts() {
        let n = PARALLEL_THRESHOLD + 7;
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E3779B9)).collect();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                parallel_map(n, threads, |i| (i as u64).wrapping_mul(0x9E3779B9)),
                seq,
                "threads = {threads}"
            );
        }
    }
}
