//! Data-parallel execution of the FSYNC compute step.
//!
//! One round of the simulation is a textbook parallel map: every robot's
//! decision is a pure function of the immutable snapshot, so the compute
//! step partitions the robot array into chunks and evaluates them on
//! scoped threads (the rayon pattern from the domain guide, hand-rolled
//! so the workspace keeps its minimal dependency footprint). Results are
//! written back in index order, so the outcome is bit-identical to the
//! sequential execution regardless of thread count — a property the
//! determinism tests rely on.

use std::num::NonZeroUsize;

/// Below this many items the spawn overhead dominates; run sequentially.
/// Shared with the swarm's round-apply, which uses the same cutover to
/// decide when sharded parallel merge resolution is worth the grouping
/// pass.
pub const PARALLEL_THRESHOLD: usize = 1024;

/// Resolve a thread-count request: `0` means "use available parallelism".
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }
}

/// Partition `0..n` into exactly `min(threads, n)` contiguous chunks
/// whose lengths differ by at most one, so every worker gets an equal
/// share even when `n` is barely above [`PARALLEL_THRESHOLD`].
pub fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunks = threads.max(1).min(n.max(1));
    (0..chunks).map(|c| (c * n / chunks, (c + 1) * n / chunks)).collect()
}

/// Evaluate `f(0..n)` and collect results in index order, splitting the
/// range over `threads` scoped threads when worthwhile.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || n < PARALLEL_THRESHOLD {
        return (0..n).map(f).collect();
    }
    let bounds = chunk_bounds(n, threads);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        // Spawn workers for every chunk but the first; the first chunk
        // runs on the calling thread, so a dispatch never creates more
        // threads than it has concurrent work for (and a single-chunk
        // dispatch spawns none at all).
        let mut handles = Vec::with_capacity(bounds.len().saturating_sub(1));
        for &(lo, hi) in &bounds[1..] {
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        let (lo, hi) = bounds[0];
        out.push((lo..hi).map(&f).collect::<Vec<T>>());
        for h in handles {
            out.push(h.join().expect("compute worker panicked"));
        }
    });
    let mut flat = Vec::with_capacity(n);
    for chunk in out {
        flat.extend(chunk);
    }
    flat
}

/// [`parallel_map`] for a *small number of coarse work items* (per-shard
/// jobs rather than per-robot ones): parallelises whenever more than one
/// thread is requested instead of gating on [`PARALLEL_THRESHOLD`],
/// because each item is assumed to carry a thread's worth of work.
/// Results are collected in index order, so the output is independent of
/// the thread count. Worker count is `min(threads, n) - 1`: chunking is
/// sized to the items actually dispatched (not the thread budget), and
/// the first chunk runs on the calling thread.
pub fn parallel_map_coarse<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let bounds = chunk_bounds(n, threads);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(bounds.len().saturating_sub(1));
        for &(lo, hi) in &bounds[1..] {
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        let (lo, hi) = bounds[0];
        out.push((lo..hi).map(&f).collect::<Vec<T>>());
        for h in handles {
            out.push(h.join().expect("shard worker panicked"));
        }
    });
    let mut flat = Vec::with_capacity(n);
    for chunk in out {
        flat.extend(chunk);
    }
    flat
}

/// [`parallel_map_coarse`] that additionally clocks each work item when
/// `clocked` is set, returning `(result, elapsed_ns)` pairs (`0` ns when
/// not clocked — no clock is read at all). The round profiler uses this
/// to measure per-shard imbalance in the round-apply's parallel merge
/// resolution without the swarm layer owning timing code; timing wraps
/// each item from outside, so results are unaffected.
pub fn parallel_map_coarse_clocked<T, F>(
    n: usize,
    threads: usize,
    clocked: bool,
    f: F,
) -> Vec<(T, u64)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_coarse(n, threads, move |i| {
        // audit: allow(wall-clock) worker timing is profiler-gated and
        // observational only — the mapped values are clock-independent
        let start = clocked.then(std::time::Instant::now);
        let out = f(i);
        (out, start.map_or(0, |t| t.elapsed().as_nanos() as u64))
    })
}

/// Assign each index in `0..n` to one of `shards` buckets via `shard_of`
/// and return the per-shard index lists. Chunks of the index range are
/// scanned on scoped threads and their per-shard lists concatenated in
/// chunk order, so every shard's list is ascending and the result is
/// identical to a sequential scan regardless of thread count.
///
/// This is the grouping half of the sharded-map primitive the parallel
/// round-apply is built on: downstream per-shard work (merge resolution,
/// occupancy rebuild) touches disjoint key sets by construction, because
/// an index appears in exactly one shard's list.
pub fn shard_indices<F>(n: usize, shards: usize, threads: usize, shard_of: F) -> Vec<Vec<u32>>
where
    F: Fn(usize) -> usize + Sync,
{
    let threads = resolve_threads(threads);
    let scan = |lo: usize, hi: usize| {
        let mut local: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for i in lo..hi {
            local[shard_of(i)].push(i as u32);
        }
        local
    };
    if threads <= 1 || n < PARALLEL_THRESHOLD {
        return scan(0, n);
    }
    let bounds = chunk_bounds(n, threads);
    let mut partials: Vec<Vec<Vec<u32>>> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(bounds.len());
        for &(lo, hi) in &bounds {
            let scan = &scan;
            handles.push(scope.spawn(move || scan(lo, hi)));
        }
        for h in handles {
            partials.push(h.join().expect("shard-scan worker panicked"));
        }
    });
    let mut merged: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for (s, out) in merged.iter_mut().enumerate() {
        out.reserve(partials.iter().map(|p| p[s].len()).sum());
        for partial in &mut partials {
            out.append(&mut partial[s]);
        }
    }
    merged
}

/// Run `f(shard_index, &mut shard)` for every shard, splitting the shard
/// slice into contiguous per-worker ranges on scoped threads. Each shard
/// is visited exactly once with exclusive access, so workers can mutate
/// disjoint map shards without locks; because the assignment of shards
/// to workers only affects *who* runs a shard, never its input, the
/// outcome is independent of the thread count.
pub fn for_each_shard_mut<T, F>(shards: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || shards.len() <= 1 {
        for (i, shard) in shards.iter_mut().enumerate() {
            f(i, shard);
        }
        return;
    }
    let bounds = chunk_bounds(shards.len(), threads);
    std::thread::scope(|scope| {
        let mut rest = shards;
        let mut offset = 0usize;
        let mut first: Option<(usize, &mut [T])> = None;
        for &(lo, hi) in &bounds {
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let base = offset;
            offset += chunk.len();
            // The first chunk is deferred to the calling thread so the
            // dispatch spawns one fewer worker than it has chunks.
            if first.is_none() {
                first = Some((base, chunk));
                continue;
            }
            let f = &f;
            scope.spawn(move || {
                for (j, shard) in chunk.iter_mut().enumerate() {
                    f(base + j, shard);
                }
            });
        }
        if let Some((base, chunk)) = first {
            for (j, shard) in chunk.iter_mut().enumerate() {
                f(base + j, shard);
            }
        }
    });
}

/// [`for_each_shard_mut`] restricted to `selected` shard indices
/// (strictly ascending): only the selected shards are visited, and the
/// chunking is sized to the *selection*, so a sparse round whose robots
/// touch two shards dispatches two closures instead of sixty-four — the
/// degenerate case where chunk math sized for the full shard array
/// spawned workers with nothing to do. Each selected shard is carved
/// out of the slice exactly once, so workers get exclusive access
/// without locks, and the visit order per worker is ascending — the
/// outcome is independent of the thread count for the same reason as
/// the full variant.
pub fn for_each_selected_shard_mut<T, F>(shards: &mut [T], selected: &[usize], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    debug_assert!(
        selected.windows(2).all(|w| w[0] < w[1]),
        "shard selection must be strictly ascending"
    );
    let threads = resolve_threads(threads);
    if threads <= 1 || selected.len() <= 1 {
        for &s in selected {
            f(s, &mut shards[s]);
        }
        return;
    }
    // Carve one exclusive reference per selected shard; ascending order
    // means each split consumes a disjoint prefix of the remainder.
    let mut refs: Vec<(usize, &mut T)> = Vec::with_capacity(selected.len());
    let mut rest = shards;
    let mut base = 0usize;
    for &s in selected {
        let (_, tail) = rest.split_at_mut(s - base);
        let (item, tail) = tail.split_first_mut().expect("selected shard index out of range");
        refs.push((s, item));
        rest = tail;
        base = s + 1;
    }
    let bounds = chunk_bounds(refs.len(), threads);
    std::thread::scope(|scope| {
        let mut rest = refs.as_mut_slice();
        let mut first: Option<&mut [(usize, &mut T)]> = None;
        for &(lo, hi) in &bounds {
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            if first.is_none() {
                first = Some(chunk);
                continue;
            }
            let f = &f;
            scope.spawn(move || {
                for (s, shard) in chunk.iter_mut() {
                    f(*s, &mut **shard);
                }
            });
        }
        if let Some(chunk) = first {
            for (s, shard) in chunk.iter_mut() {
                f(*s, &mut **shard);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_small() {
        let seq: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(parallel_map(100, 4, |i| i * i), seq);
    }

    #[test]
    fn matches_sequential_large() {
        let n = 50_000;
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                parallel_map(n, threads, |i| (i as u64).wrapping_mul(2654435761)),
                seq,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map(0, 8, |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_defaults() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    /// Regression: chunk count must track the requested thread count
    /// exactly (it used to be capped near n / 256, idling most workers
    /// for n just above PARALLEL_THRESHOLD), with balanced chunks.
    #[test]
    fn chunking_uses_every_thread_exactly() {
        for threads in [1usize, 2, 3, 8, 16] {
            for n in [
                PARALLEL_THRESHOLD,
                PARALLEL_THRESHOLD + 1,
                PARALLEL_THRESHOLD + threads - 1,
                4 * PARALLEL_THRESHOLD + 3,
            ] {
                let bounds = chunk_bounds(n, threads);
                assert_eq!(bounds.len(), threads.min(n), "n={n} threads={threads}");
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds.last().unwrap().1, n);
                let (min_len, max_len) = bounds.iter().fold((usize::MAX, 0), |acc, &(lo, hi)| {
                    assert!(lo <= hi);
                    (acc.0.min(hi - lo), acc.1.max(hi - lo))
                });
                assert!(max_len - min_len <= 1, "unbalanced: n={n} threads={threads}");
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap/overlap: n={n} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn shard_indices_partition_and_order() {
        let shard_of = |i: usize| i % 7;
        for n in [0usize, 5, PARALLEL_THRESHOLD + 13] {
            let seq = shard_indices(n, 7, 1, shard_of);
            for threads in [2usize, 3, 8] {
                assert_eq!(shard_indices(n, 7, threads, shard_of), seq, "n={n} threads={threads}");
            }
            // Every index appears exactly once, in its shard, ascending.
            let mut seen = vec![false; n];
            for (s, list) in seq.iter().enumerate() {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "shard {s} not ascending");
                for &i in list {
                    assert_eq!(shard_of(i as usize), s);
                    assert!(!std::mem::replace(&mut seen[i as usize], true));
                }
            }
            assert!(seen.iter().all(|&v| v), "n={n}: some index missing");
        }
    }

    #[test]
    fn for_each_shard_mut_visits_every_shard_once() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut shards: Vec<(usize, u32)> = (0..13).map(|i| (i, 0)).collect();
            for_each_shard_mut(&mut shards, threads, |i, shard| {
                assert_eq!(shard.0, i, "shard index mismatch");
                shard.1 += 1;
            });
            assert!(shards.iter().all(|&(_, visits)| visits == 1), "threads={threads}");
        }
    }

    #[test]
    fn clocked_coarse_map_matches_unclocked_results() {
        let seq: Vec<usize> = (0..64).map(|i| i * 3).collect();
        for threads in [1usize, 2, 8] {
            for clocked in [false, true] {
                let out = parallel_map_coarse_clocked(64, threads, clocked, |i| i * 3);
                let values: Vec<usize> = out.iter().map(|&(v, _)| v).collect();
                assert_eq!(values, seq, "threads={threads} clocked={clocked}");
                if !clocked {
                    assert!(out.iter().all(|&(_, ns)| ns == 0), "unclocked items read a clock");
                }
            }
        }
    }

    #[test]
    fn parallel_map_coarse_ignores_the_item_threshold() {
        // 64 items is far below PARALLEL_THRESHOLD; the coarse variant
        // must still produce index-ordered results on every thread count.
        let seq: Vec<usize> = (0..64).map(|i| i * 3).collect();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(parallel_map_coarse(64, threads, |i| i * 3), seq, "threads={threads}");
        }
        let empty: Vec<u8> = parallel_map_coarse(0, 8, |_| 0u8);
        assert!(empty.is_empty());
    }

    #[test]
    fn for_each_selected_shard_mut_visits_only_the_selection() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut shards: Vec<(usize, u32)> = (0..13).map(|i| (i, 0)).collect();
            let selected = [1usize, 4, 5, 11];
            for_each_selected_shard_mut(&mut shards, &selected, threads, |i, shard| {
                assert_eq!(shard.0, i, "shard index mismatch");
                shard.1 += 1;
            });
            for (i, &(_, visits)) in shards.iter().enumerate() {
                let expected = u32::from(selected.contains(&i));
                assert_eq!(visits, expected, "threads={threads} shard={i}");
            }
        }
        // Empty and full selections are fine too.
        let mut shards: Vec<(usize, u32)> = (0..5).map(|i| (i, 0)).collect();
        for_each_selected_shard_mut(&mut shards, &[], 8, |_, _| panic!("empty selection ran"));
        let all: Vec<usize> = (0..5).collect();
        for_each_selected_shard_mut(&mut shards, &all, 8, |_, shard| shard.1 += 1);
        assert!(shards.iter().all(|&(_, v)| v == 1));
    }

    /// Regression for the degenerate dispatch: a round with fewer work
    /// items than worker threads must not spawn idle scoped threads.
    /// The caller runs the first chunk itself, so a k-item coarse map
    /// uses at most k threads total (caller included), a 1-item map
    /// spawns nothing, and a sub-threshold fine-grained map never
    /// leaves the calling thread.
    #[test]
    fn small_dispatch_does_not_spawn_idle_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;

        let track = || Mutex::<HashSet<ThreadId>>::default();
        let caller = std::thread::current().id();

        let ids = track();
        let out = parallel_map_coarse(2, 8, |i| {
            ids.lock().expect("tracker poisoned").insert(std::thread::current().id());
            i * 3
        });
        assert_eq!(out, vec![0, 3]);
        let ids = ids.into_inner().expect("tracker poisoned");
        assert!(ids.len() <= 2, "{} distinct threads for 2 coarse items", ids.len());
        assert!(ids.contains(&caller), "caller thread must run the first chunk");

        let ids = track();
        parallel_map_coarse(1, 8, |_| {
            ids.lock().expect("tracker poisoned").insert(std::thread::current().id());
        });
        assert_eq!(
            ids.into_inner().expect("tracker poisoned").into_iter().collect::<Vec<_>>(),
            vec![caller],
            "a single coarse item must run inline"
        );

        let ids = track();
        parallel_map(3, 8, |i| {
            ids.lock().expect("tracker poisoned").insert(std::thread::current().id());
            i
        });
        assert_eq!(
            ids.into_inner().expect("tracker poisoned").into_iter().collect::<Vec<_>>(),
            vec![caller],
            "a sub-threshold map must run inline"
        );

        let ids = track();
        let mut shards: Vec<u32> = vec![0; 64];
        for_each_selected_shard_mut(&mut shards, &[7, 40], 8, |_, shard| {
            ids.lock().expect("tracker poisoned").insert(std::thread::current().id());
            *shard += 1;
        });
        let ids = ids.into_inner().expect("tracker poisoned");
        assert!(ids.len() <= 2, "{} distinct threads for 2 selected shards", ids.len());
        assert!(ids.contains(&caller), "caller thread must run the first selected chunk");
    }

    /// Determinism across thread counts, pinned at a size just above the
    /// parallel threshold where the old chunking under-used threads.
    #[test]
    fn determinism_across_thread_counts() {
        let n = PARALLEL_THRESHOLD + 7;
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E3779B9)).collect();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                parallel_map(n, threads, |i| (i as u64).wrapping_mul(0x9E3779B9)),
                seq,
                "threads = {threads}"
            );
        }
    }
}
