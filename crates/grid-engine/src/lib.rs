//! # grid-engine
//!
//! Discrete-grid robot-swarm substrate for the SPAA 2016 paper
//! *"Asymptotically Optimal Gathering on a Grid"* (Cord-Landwehr,
//! Fischer, Jung, Meyer auf der Heide).
//!
//! The crate implements the paper's robot and time model, independent of
//! any particular gathering strategy:
//!
//! * **Grid world** — robots live on ℤ², move to one of their eight
//!   neighbouring cells per round, and *merge* when co-located
//!   ([`Swarm::apply`]). Occupancy is a tiled index ([`tile`]): 64×64
//!   dense tiles in sharded hash maps, so memory scales with occupied
//!   tiles (not the bounding rectangle) and the round-apply itself
//!   shards across worker threads bit-identically.
//! * **Connectivity** — two robots are connected when they are
//!   horizontal or vertical neighbours; the swarm must stay connected
//!   ([`connectivity`]).
//! * **Locality** — a robot sees occupancy and robot states only within
//!   a constant L1 radius, in its own frame: no compass, no IDs, no
//!   global communication ([`View`]).
//! * **Schedulers** — robots execute look-compute-move under a
//!   pluggable activation policy: FSYNC lockstep (the paper's model),
//!   seeded pseudo-random SSYNC subsets, or a round-robin k-of-n
//!   adversary; the compute step is evaluated as a deterministic
//!   parallel map either way ([`Engine`], [`Scheduler`], [`parallel`]).
//!
//! Strategies implement [`Controller`]; the paper's algorithm lives in
//! the `gather-core` crate, comparators in `gather-baselines`.

pub mod connectivity;
pub mod engine;
pub mod fxhash;
pub mod geom;
pub mod grid;
pub mod metrics;
pub mod observe;
pub mod parallel;
pub mod profile;
pub mod scheduler;
pub mod swarm;
pub mod tile;
pub mod view;

pub use engine::{
    ConnectivityCheck, Controller, Engine, EngineConfig, EngineError, RoundCtx, RunOutcome,
};
pub use geom::{Bounds, Point, D4, V2};
pub use metrics::{Metrics, RoundStats};
pub use observe::{BoxedRoundObserver, PendingMove, RobotMove, RoundRecord};
pub use profile::{
    allocation_count, BoxedProfileSink, Phase, ProfileTotals, RoundProfile, PHASE_COUNT,
};
pub use scheduler::{splitmix64, Activation, Scheduler};
pub use swarm::{Action, ApplyOutcome, OrientationMode, RobotState, Swarm};
pub use tile::{TileIndex, TileKey, TileWindow};
pub use view::View;

/// Engine build tag, baked into content-addressed result-cache keys so
/// cached scenario records never survive an engine change they might
/// disagree with.
pub const ENGINE_VERSION: &str = concat!("grid-engine/", env!("CARGO_PKG_VERSION"));
