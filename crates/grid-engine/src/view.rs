//! Egocentric local views — the *look* step of look-compute-move.
//!
//! A [`View`] exposes exactly what the paper's robot model grants: cell
//! occupancy and other robots' states within a constant L1 radius, in
//! the observing robot's own frame (no compass, no global coordinates).
//! Views are lazy: they borrow the swarm snapshot and answer probes on
//! demand, so extracting a view is free and the compute step only pays
//! for the cells it actually inspects.
//!
//! Radius enforcement: every probe asserts (in debug builds) that the
//! queried cell lies within the viewing range, so an algorithm that
//! accidentally relies on super-constant vision fails loudly in tests.
//!
//! Probe cost: a view pins the ≤3×3 block of occupancy tiles covering
//! its viewing range at construction ([`crate::tile::TileWindow`]), so
//! the O(radius²) probes of a compute step cost an array read plus two
//! compares each — tile-map hash lookups are paid once per view, not
//! once per probe.

use crate::geom::{Point, D4, V2};
use crate::swarm::{RobotState, Swarm};
use crate::tile::TileWindow;

pub struct View<'a, S: RobotState> {
    swarm: &'a Swarm<S>,
    win: TileWindow<'a>,
    id: usize,
    center: Point,
    /// Robot frame -> world frame.
    orient: D4,
    /// World frame -> robot frame.
    inv: D4,
    radius: i32,
}

// Manual so states without Debug still get a printable view summary.
impl<S: RobotState> std::fmt::Debug for View<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("View")
            .field("id", &self.id)
            .field("center", &self.center)
            .field("orient", &self.orient)
            .field("radius", &self.radius)
            .finish_non_exhaustive()
    }
}

impl<'a, S: RobotState> View<'a, S> {
    pub fn new(swarm: &'a Swarm<S>, id: usize, radius: i32) -> Self {
        let center = swarm.positions()[id];
        let orient = swarm.orients()[id];
        View {
            swarm,
            win: swarm.index().window(center, radius),
            id,
            center,
            orient,
            inv: orient.inverse(),
            radius,
        }
    }

    /// The L1 viewing radius this view enforces.
    pub fn radius(&self) -> i32 {
        self.radius
    }

    /// Index of the observing robot (simulator bookkeeping, not visible
    /// to the algorithm — robots are anonymous).
    pub fn id(&self) -> usize {
        self.id
    }

    #[inline]
    fn world(&self, v: V2) -> Point {
        debug_assert!(v.l1() <= self.radius, "probe {v:?} outside viewing radius {}", self.radius);
        self.center + self.orient.apply(v)
    }

    /// Is the cell at offset `v` (robot frame) occupied?
    #[inline]
    pub fn occupied(&self, v: V2) -> bool {
        self.win.occupied(self.world(v))
    }

    #[inline]
    pub fn empty(&self, v: V2) -> bool {
        !self.occupied(v)
    }

    /// The observing robot's own state (already in its frame).
    pub fn self_state(&self) -> &S {
        &self.swarm.states()[self.id]
    }

    /// The state of the robot at offset `v`, re-expressed in the
    /// observing robot's frame. `None` if the cell is empty.
    pub fn state(&self, v: V2) -> Option<S> {
        let p = self.world(v);
        // Tile cells store stable handles; translate to the dense slot.
        let j = self.swarm.slot(self.win.get(p)?);
        // other frame -> world -> my frame.
        let m = self.swarm.orients()[j].then(self.inv);
        Some(self.swarm.states()[j].transform(m))
    }

    /// Offsets (robot frame) of all robots within L1 distance `r` of the
    /// observer, excluding the observer itself. `r` must not exceed the
    /// viewing radius. Order is deterministic (scanline in robot frame).
    pub fn robots_within(&self, r: i32) -> Vec<V2> {
        assert!(r <= self.radius);
        let mut out = Vec::new();
        for dy in -r..=r {
            let w = r - dy.abs();
            for dx in -w..=w {
                let v = V2::new(dx, dy);
                if v != V2::ZERO && self.occupied(v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::OrientationMode;

    #[test]
    fn aligned_view_sees_world_offsets() {
        let s: Swarm<()> = Swarm::new(
            &[Point::new(0, 0), Point::new(1, 0), Point::new(0, 2)],
            OrientationMode::Aligned,
        );
        let v = View::new(&s, 0, 5);
        assert!(v.occupied(V2::new(1, 0)));
        assert!(v.occupied(V2::new(0, 2)));
        assert!(v.empty(V2::new(-1, 0)));
        assert_eq!(v.robots_within(3), vec![V2::new(1, 0), V2::new(0, 2)]);
    }

    #[test]
    fn rotated_view_rotates_offsets() {
        let mut s: Swarm<()> =
            Swarm::new(&[Point::new(0, 0), Point::new(0, 1)], OrientationMode::Aligned);
        // Robot 0's frame: east points to world north.
        s.orients_mut()[0] = D4 { rot: 1, flip: false };
        let v = View::new(&s, 0, 5);
        // World (0,1) should appear at... world = center + orient.apply(v)
        // => v = inv.apply(world - center). orient rot1: E->N, so inv maps
        // N->E: the neighbour appears to the robot's east.
        assert!(v.occupied(V2::E));
        assert!(v.empty(V2::N));
    }

    #[test]
    fn state_is_reexpressed_between_frames() {
        #[derive(Clone, Default, PartialEq, Debug)]
        struct Arrow(V2);
        impl RobotState for Arrow {
            fn transform(&self, m: D4) -> Self {
                Arrow(m.apply(self.0))
            }
        }
        let mut s: Swarm<Arrow> =
            Swarm::new(&[Point::new(0, 0), Point::new(1, 0)], OrientationMode::Aligned);
        // Robot 1 stores "east" in a frame rotated so its east is world north.
        s.orients_mut()[1] = D4 { rot: 1, flip: false };
        s.states_mut()[1] = Arrow(V2::E); // world north
                                          // Robot 0 is world-aligned, so it must see the arrow as north.
        let v = View::new(&s, 0, 5);
        assert_eq!(v.state(V2::E), Some(Arrow(V2::N)));
        assert_eq!(v.state(V2::W), None);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn probe_outside_radius_panics_in_debug() {
        let s: Swarm<()> = Swarm::new(&[Point::new(0, 0)], OrientationMode::Aligned);
        let v = View::new(&s, 0, 3);
        let _ = v.occupied(V2::new(4, 0));
    }
}
